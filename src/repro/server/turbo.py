"""Turbo Boost over-clocking model.

Section IV-B: enabling Turbo Boost on the Prineville Hadoop cluster
improved performance by ~13% while increasing power by ~20%.  Dynamo's
safety net is what makes enabling Turbo possible at all — worst-case peak
power with Turbo exceeds the planned budget, but the capping hierarchy
catches the rare excursions.

:class:`TurboBoost` is a small state holder so experiments can flip Turbo
per server (or per cluster) and the power/performance models pick it up.
"""

from __future__ import annotations

from repro.server.platform import ServerPlatform
from repro.simulation.soa import ArraySlot, array_backed


class TurboBoost:
    """Turbo Boost enable/disable state plus derived gains."""

    _soa: ArraySlot | None = None
    _enabled = array_backed("turbo_enabled", kind="bool")

    def __init__(self, platform: ServerPlatform, enabled: bool = False) -> None:
        self._platform = platform
        self._enabled = bool(enabled)

    @property
    def enabled(self) -> bool:
        """Whether Turbo Boost is engaged."""
        return self._enabled

    def enable(self) -> None:
        """Turn Turbo Boost on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn Turbo Boost off."""
        self._enabled = False

    @property
    def performance_multiplier(self) -> float:
        """Throughput multiplier relative to nominal clocks."""
        if self._enabled:
            return 1.0 + self._platform.turbo_perf_gain
        return 1.0

    @property
    def worst_case_power_w(self) -> float:
        """Peak power the platform can reach in this Turbo state."""
        if self._enabled:
            return self._platform.turbo_peak_power_w
        return self._platform.peak_power_w
