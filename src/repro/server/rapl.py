"""Simulated Intel RAPL (Running Average Power Limit) module.

RAPL enforces a total-system power budget on a single server.  The paper's
agents set or unset the limit either by writing a machine status register
directly or through the IPMI node-manager API, depending on platform; the
measured behaviour (Figure 9) is that a cap or uncap command takes about
two seconds to take effect and stabilize.  That settling time is a
first-class design input: it forces controllers to sample no faster than
every ~3 s.

We model enforcement as a first-order lag: the *enforced* power tracks the
target ``min(demand, limit)`` with time constant ``settling_time / 3`` so
the output reaches ~95% of a step within the settling time.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.config import RaplConfig
from repro.errors import CappingError
from repro.simulation.soa import ArraySlot, array_backed


class RaplModule:
    """Per-server power limit with first-order settling dynamics."""

    #: Structure-of-arrays slot when bound by the vectorized backend.
    _soa: ArraySlot | None = None

    #: The enforced power tracks the target in the packed array when
    #: bound; the limit is hand-rolled below because ``None`` encodes as
    #: ``+inf`` (min(demand, inf) == demand) and writes notify listeners.
    _enforced_power_w = array_backed("rapl_enforced")

    def __init__(
        self,
        config: RaplConfig | None = None,
        *,
        min_cap_w: float = 0.0,
        initial_power_w: float = 0.0,
    ) -> None:
        self.config = config or RaplConfig()
        self._min_cap_w = max(min_cap_w, self.config.min_limit_w)
        self._limit_listeners: tuple[Callable[[RaplModule], None], ...] = ()
        self._limit_w = None
        self._enforced_power_w = float(initial_power_w)
        # First-order time constant: ~95% settled at 3 * tau.
        self._tau_s = self.config.settling_time_s / 3.0

    @property
    def _limit_w(self) -> float | None:
        slot = self._soa
        if slot is None:
            return self._soa_shadow_limit
        value = float(slot.arrays.rapl_limit[slot.index])
        return None if value == math.inf else value

    @_limit_w.setter
    def _limit_w(self, value: float | None) -> None:
        slot = self._soa
        if slot is None:
            self._soa_shadow_limit = value
        else:
            slot.arrays.rapl_limit[slot.index] = (
                math.inf if value is None else value
            )
        for listener in self._limit_listeners:
            listener(self)

    def add_limit_listener(
        self, listener: Callable[["RaplModule"], None]
    ) -> None:
        """Call ``listener(self)`` after every limit set/clear/restore.

        Used by :class:`~repro.fleet.Fleet` to keep its capped-server
        index current without scanning, and safe to call more than once
        with distinct listeners.
        """
        self._limit_listeners = (*self._limit_listeners, listener)

    # ------------------------------------------------------------------
    # Limit management
    # ------------------------------------------------------------------

    @property
    def limit_w(self) -> float | None:
        """The active power limit, or None when uncapped."""
        return self._limit_w

    @property
    def capped(self) -> bool:
        """Whether a power limit is currently set."""
        return self._limit_w is not None

    def set_limit(self, limit_w: float) -> None:
        """Set the power limit (the agent's *cap* operation).

        Raises:
            CappingError: if the requested limit is below what the
                platform can enforce.
        """
        if limit_w < self._min_cap_w:
            raise CappingError(
                f"requested limit {limit_w:.1f} W below platform minimum "
                f"{self._min_cap_w:.1f} W"
            )
        self._limit_w = float(limit_w)

    def clear_limit(self) -> None:
        """Remove the power limit (the agent's *uncap* operation)."""
        self._limit_w = None

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def target_power_w(self, demand_w: float) -> float:
        """Steady-state power for a given demand under the current limit."""
        if self._limit_w is None:
            return demand_w
        return min(demand_w, self._limit_w)

    def step(self, demand_w: float, dt_s: float) -> float:
        """Advance enforcement by ``dt_s`` seconds; return enforced power.

        The enforced power exponentially approaches the target.  With the
        default 2 s settling time, a step change reaches ~95% within 2 s,
        matching Figure 9's measured cap/uncap transients.
        """
        target = self.target_power_w(demand_w)
        if dt_s <= 0:
            return self._enforced_power_w
        alpha = 1.0 - math.exp(-dt_s / self._tau_s)
        self._enforced_power_w += (target - self._enforced_power_w) * alpha
        return self._enforced_power_w

    @property
    def enforced_power_w(self) -> float:
        """Most recently computed enforced power."""
        return self._enforced_power_w

    def settled(self, demand_w: float, tolerance_w: float = 2.0) -> bool:
        """Whether enforcement is within ``tolerance_w`` of its target."""
        return abs(self._enforced_power_w - self.target_power_w(demand_w)) <= tolerance_w

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state (the active limit and lag state)."""
        return {
            "limit_w": self._limit_w,
            "enforced_power_w": self._enforced_power_w,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the active limit and first-order lag state in place."""
        limit = state["limit_w"]
        self._limit_w = None if limit is None else float(limit)
        self._enforced_power_w = float(state["enforced_power_w"])
