"""Simulated Intel RAPL (Running Average Power Limit) module.

RAPL enforces a total-system power budget on a single server.  The paper's
agents set or unset the limit either by writing a machine status register
directly or through the IPMI node-manager API, depending on platform; the
measured behaviour (Figure 9) is that a cap or uncap command takes about
two seconds to take effect and stabilize.  That settling time is a
first-class design input: it forces controllers to sample no faster than
every ~3 s.

We model enforcement as a first-order lag: the *enforced* power tracks the
target ``min(demand, limit)`` with time constant ``settling_time / 3`` so
the output reaches ~95% of a step within the settling time.
"""

from __future__ import annotations

import math

from repro.config import RaplConfig
from repro.errors import CappingError


class RaplModule:
    """Per-server power limit with first-order settling dynamics."""

    def __init__(
        self,
        config: RaplConfig | None = None,
        *,
        min_cap_w: float = 0.0,
        initial_power_w: float = 0.0,
    ) -> None:
        self.config = config or RaplConfig()
        self._min_cap_w = max(min_cap_w, self.config.min_limit_w)
        self._limit_w: float | None = None
        self._enforced_power_w = float(initial_power_w)
        # First-order time constant: ~95% settled at 3 * tau.
        self._tau_s = self.config.settling_time_s / 3.0

    # ------------------------------------------------------------------
    # Limit management
    # ------------------------------------------------------------------

    @property
    def limit_w(self) -> float | None:
        """The active power limit, or None when uncapped."""
        return self._limit_w

    @property
    def capped(self) -> bool:
        """Whether a power limit is currently set."""
        return self._limit_w is not None

    def set_limit(self, limit_w: float) -> None:
        """Set the power limit (the agent's *cap* operation).

        Raises:
            CappingError: if the requested limit is below what the
                platform can enforce.
        """
        if limit_w < self._min_cap_w:
            raise CappingError(
                f"requested limit {limit_w:.1f} W below platform minimum "
                f"{self._min_cap_w:.1f} W"
            )
        self._limit_w = float(limit_w)

    def clear_limit(self) -> None:
        """Remove the power limit (the agent's *uncap* operation)."""
        self._limit_w = None

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def target_power_w(self, demand_w: float) -> float:
        """Steady-state power for a given demand under the current limit."""
        if self._limit_w is None:
            return demand_w
        return min(demand_w, self._limit_w)

    def step(self, demand_w: float, dt_s: float) -> float:
        """Advance enforcement by ``dt_s`` seconds; return enforced power.

        The enforced power exponentially approaches the target.  With the
        default 2 s settling time, a step change reaches ~95% within 2 s,
        matching Figure 9's measured cap/uncap transients.
        """
        target = self.target_power_w(demand_w)
        if dt_s <= 0:
            return self._enforced_power_w
        alpha = 1.0 - math.exp(-dt_s / self._tau_s)
        self._enforced_power_w += (target - self._enforced_power_w) * alpha
        return self._enforced_power_w

    @property
    def enforced_power_w(self) -> float:
        """Most recently computed enforced power."""
        return self._enforced_power_w

    def settled(self, demand_w: float, tolerance_w: float = 2.0) -> bool:
        """Whether enforcement is within ``tolerance_w`` of its target."""
        return abs(self._enforced_power_w - self.target_power_w(demand_w)) <= tolerance_w

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state (the active limit and lag state)."""
        return {
            "limit_w": self._limit_w,
            "enforced_power_w": self._enforced_power_w,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the active limit and first-order lag state in place."""
        limit = state["limit_w"]
        self._limit_w = None if limit is None else float(limit)
        self._enforced_power_w = float(state["enforced_power_w"])
