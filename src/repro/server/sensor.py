"""On-board power sensors.

Nearly all 2011-or-newer Facebook servers carry an on-board power sensor
the agent queries for accurate readings plus a component breakdown (CPU
socket power, AC-DC loss, ...).  We model the sensor as the true enforced
power plus small multiplicative noise, with a simple component split.
Servers without sensors (the 2011 Westmere generation in Figure 1) return
no reading and force the agent onto its estimation model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AgentError


@dataclass(frozen=True)
class PowerBreakdown:
    """Component breakdown an on-board sensor reports alongside total."""

    total_w: float
    cpu_w: float
    memory_w: float
    other_w: float
    ac_dc_loss_w: float

    @property
    def components_sum_w(self) -> float:
        """Sum of all components (should equal total within rounding)."""
        return self.cpu_w + self.memory_w + self.other_w + self.ac_dc_loss_w


class PowerSensor:
    """A noisy but unbiased on-board power sensor."""

    #: Typical component shares of server power at load.
    CPU_SHARE = 0.55
    MEMORY_SHARE = 0.20
    AC_DC_LOSS_SHARE = 0.07

    def __init__(
        self,
        noise_fraction: float = 0.005,
        rng: np.random.Generator | None = None,
    ) -> None:
        if noise_fraction < 0:
            raise AgentError("sensor noise fraction cannot be negative")
        self._noise_fraction = noise_fraction
        self._rng = rng or np.random.default_rng(0)

    def read(self, true_power_w: float) -> float:
        """One noisy sample of the instantaneous power."""
        if true_power_w < 0:
            raise AgentError("true power cannot be negative")
        if self._noise_fraction == 0.0:
            return true_power_w
        noise = self._rng.normal(0.0, self._noise_fraction)
        return max(0.0, true_power_w * (1.0 + noise))

    def snapshot_state(self) -> dict:
        """Serializable generator state (the only mutable part)."""
        return {"rng": self._rng.bit_generator.state}

    def restore_state(self, state: dict) -> None:
        """Restore the noise generator in place.

        Matters even when the generator is a shared named stream: surge
        worlds build sensors with a private fallback generator that no
        :class:`~repro.simulation.rng.RngStreams` capture covers.
        """
        self._rng.bit_generator.state = state["rng"]

    def read_breakdown(self, true_power_w: float) -> PowerBreakdown:
        """A noisy sample with the component breakdown."""
        return self.breakdown_from_total(self.read(true_power_w))

    @classmethod
    def breakdown_from_total(cls, total: float) -> PowerBreakdown:
        """The deterministic component split for an already-sensed total.

        The batched control plane senses totals in bulk and only
        materializes :class:`PowerBreakdown` objects at the aggregation
        boundary; this is the same split :meth:`read_breakdown` applies.
        """
        cpu = total * cls.CPU_SHARE
        memory = total * cls.MEMORY_SHARE
        loss = total * cls.AC_DC_LOSS_SHARE
        other = total - cpu - memory - loss
        return PowerBreakdown(
            total_w=total,
            cpu_w=cpu,
            memory_w=memory,
            other_w=other,
            ac_dc_loss_w=loss,
        )
