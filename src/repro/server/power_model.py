"""Power-vs-utilization model for one server platform (Figure 1).

Power between idle and peak follows::

    P(u) = idle + (peak - idle) * u ** curve_exponent

with an optional Turbo Boost multiplier on the dynamic component at high
utilization.  The model is invertible: given a power cap, it reports the
maximum utilization (and hence throughput) the server can sustain, which
drives the performance-slowdown behaviour of Figure 13.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.server.platform import ServerPlatform


class PowerModel:
    """Maps CPU utilization to power draw and back for one platform."""

    #: Utilization above which Turbo Boost actually engages (below this
    #: the cores do not sustain turbo frequencies long enough to matter).
    TURBO_ENGAGE_UTIL = 0.40

    def __init__(self, platform: ServerPlatform) -> None:
        self.platform = platform

    # ------------------------------------------------------------------
    # Forward: utilization -> power
    # ------------------------------------------------------------------

    def power_w(self, utilization: float, *, turbo: bool = False) -> float:
        """Instantaneous power at ``utilization`` in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        p = self.platform
        dynamic = p.dynamic_range_w * utilization**p.curve_exponent
        if turbo and utilization > self.TURBO_ENGAGE_UTIL:
            # Turbo's extra power scales with how far above the engage
            # point the server is running, reaching the full
            # turbo_power_gain at 100% utilization.
            engage_span = 1.0 - self.TURBO_ENGAGE_UTIL
            engagement = (utilization - self.TURBO_ENGAGE_UTIL) / engage_span
            dynamic *= 1.0 + p.turbo_power_gain * engagement
        return p.idle_power_w + dynamic

    def peak_power_w(self, *, turbo: bool = False) -> float:
        """Worst-case power draw (utilization = 1.0)."""
        return self.power_w(1.0, turbo=turbo)

    # ------------------------------------------------------------------
    # Inverse: power -> achievable utilization
    # ------------------------------------------------------------------

    def utilization_at_power(self, power_w: float, *, turbo: bool = False) -> float:
        """Maximum sustainable utilization under a ``power_w`` budget.

        Clamped to [0, 1]: a budget below idle power yields 0 (the server
        cannot run below idle; RAPL simply bottoms out), a budget above
        peak yields 1.
        """
        p = self.platform
        if power_w <= p.idle_power_w:
            return 0.0
        if power_w >= self.peak_power_w(turbo=turbo):
            return 1.0
        # Invert by bisection: power_w() is strictly increasing in
        # utilization, and turbo's piecewise engagement makes a closed
        # form awkward.
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self.power_w(mid, turbo=turbo) < power_w:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    # ------------------------------------------------------------------
    # Performance under capping (Figure 13)
    # ------------------------------------------------------------------

    #: Dynamic power scales roughly as f * V^2 with V tracking f:
    #: P_dyn ~ f^DVFS_EXPONENT.  2.4 matches published DVFS curves.
    DVFS_EXPONENT = 2.4
    #: Lowest frequency DVFS reaches relative to nominal; below the
    #: power that corresponds to this point, RAPL falls back to duty
    #: cycling, which costs performance linearly in power.
    MIN_FREQUENCY_FRACTION = 0.5

    def performance_factor(
        self, demanded_utilization: float, cap_w: float | None, *, turbo: bool = False
    ) -> float:
        """Delivered fraction of demanded work under a power cap.

        1.0 means the cap does not bind.  When it binds, RAPL reduces
        frequency: dynamic power falls as ``f ** DVFS_EXPONENT``, so a
        given power cut costs much less than proportional performance —
        until frequency bottoms out and duty cycling takes over, which
        costs performance one-for-one with power.  Server-side latency
        slowdown is roughly ``1 / performance_factor``.  This two-regime
        model reproduces Figure 13's shape: slow decline inside ~20%
        power reduction, a knee, then steep decline beyond.
        """
        if demanded_utilization <= 0.0:
            return 1.0
        if cap_w is None:
            return 1.0
        demand_power = self.power_w(demanded_utilization, turbo=turbo)
        if cap_w >= demand_power:
            return 1.0
        p = self.platform
        demand_dynamic = demand_power - p.idle_power_w
        cap_dynamic = max(0.0, cap_w - p.idle_power_w)
        if demand_dynamic <= 0.0:
            return 1.0
        ratio = cap_dynamic / demand_dynamic
        min_ratio = self.MIN_FREQUENCY_FRACTION**self.DVFS_EXPONENT
        if ratio >= min_ratio:
            # DVFS regime: frequency scales as the dynamic-power ratio
            # to the inverse exponent.
            factor = ratio ** (1.0 / self.DVFS_EXPONENT)
        else:
            # Duty-cycling regime below minimum frequency.
            factor = self.MIN_FREQUENCY_FRACTION * (ratio / min_ratio)
        return max(factor, 0.01)


def sample_curve(
    model: PowerModel, points: int = 21, *, turbo: bool = False
) -> list[tuple[float, float]]:
    """Sample (utilization%, power W) pairs for plotting Figure 1."""
    samples: list[tuple[float, float]] = []
    for i in range(points):
        utilization = i / (points - 1)
        samples.append((utilization * 100.0, model.power_w(utilization, turbo=turbo)))
    return samples
