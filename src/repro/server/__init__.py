"""Server substrate: platforms, power models, RAPL, sensors, Turbo Boost.

Reproduces the server-level machinery the paper's agents rely on:
power-vs-utilization curves for the 2011 Westmere and 2015 Haswell web
servers (Figure 1), the RAPL power-limiting module with its ~2 s settling
dynamics (Figure 9), on-board power sensors (present on 2011+ servers),
and the CPU-utilization power estimation model used when sensors are
absent.
"""

from repro.server.estimator import PowerEstimator, fit_linear_power_model
from repro.server.platform import (
    HASWELL_2015,
    PLATFORMS,
    WESTMERE_2011,
    ServerPlatform,
)
from repro.server.power_model import PowerModel
from repro.server.rapl import RaplModule
from repro.server.sensor import PowerSensor
from repro.server.server import Server
from repro.server.turbo import TurboBoost

__all__ = [
    "HASWELL_2015",
    "PLATFORMS",
    "PowerEstimator",
    "PowerModel",
    "PowerSensor",
    "RaplModule",
    "Server",
    "ServerPlatform",
    "TurboBoost",
    "WESTMERE_2011",
    "fit_linear_power_model",
]
