"""The server: workload + power model + RAPL + sensor, stepped over time.

A :class:`Server` is the unit everything else composes around.  Each
simulation step it:

1. asks its workload for the demanded CPU utilization,
2. converts demand to a power draw through the platform's power model
   (including Turbo Boost if engaged),
3. lets the RAPL module clamp that draw toward ``min(demand, limit)``
   with its ~2 s settling lag,
4. accounts delivered vs demanded work so experiments can measure the
   performance cost of capping (Figure 13).

The server exposes ``power_w()`` as a zero-argument callable so it can be
attached directly to a :class:`~repro.power.device.PowerDevice` load slot.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.config import AgentConfig
from repro.server.estimator import PowerEstimator, calibrate_from_model
from repro.server.platform import ServerPlatform
from repro.server.power_model import PowerModel
from repro.server.rapl import RaplModule
from repro.server.sensor import PowerSensor
from repro.server.turbo import TurboBoost
from repro.simulation.soa import ArraySlot, array_backed


class Workload(Protocol):
    """What a server needs from its workload."""

    service: str

    def utilization(self, now_s: float) -> float:
        """Demanded CPU utilization in [0, 1] at simulation time ``now_s``."""
        ...


class ConstantWorkload:
    """Trivial workload pinned at a fixed utilization (tests, calibration)."""

    def __init__(self, utilization: float, service: str = "synthetic") -> None:
        self._utilization = float(utilization)
        self.service = service

    def utilization(self, now_s: float) -> float:
        """The fixed demand, independent of time."""
        return self._utilization

    def set_utilization(self, utilization: float) -> None:
        """Change the fixed demand level."""
        self._utilization = float(utilization)

    def snapshot_state(self) -> dict:
        """Serializable state (the fixed level can change via setter)."""
        return {"utilization": self._utilization}

    def restore_state(self, state: dict) -> None:
        """Restore the fixed demand level."""
        self._utilization = float(state["utilization"])


class Server:
    """One server in the fleet."""

    #: Structure-of-arrays slot when bound by the vectorized backend.
    #: Bound or not, reads and writes go through these properties, so
    #: agents, chaos faults, and snapshots see one source of truth.
    _soa: ArraySlot | None = None
    _current_power_w = array_backed("power")
    _current_utilization = array_backed("util")
    _demanded_work = array_backed("demanded")
    _delivered_work = array_backed("delivered")
    _energy_j = array_backed("energy")
    _online = array_backed("online", kind="bool")
    _last_step_s = array_backed("last_step", kind="nan_none")

    def __init__(
        self,
        server_id: str,
        platform: ServerPlatform,
        workload: Workload,
        *,
        agent_config: AgentConfig | None = None,
        rng: np.random.Generator | None = None,
        turbo_enabled: bool = False,
    ) -> None:
        self.server_id = server_id
        self.platform = platform
        self.workload = workload
        self.power_model = PowerModel(platform)
        self.turbo = TurboBoost(platform, enabled=turbo_enabled)
        config = agent_config or AgentConfig()
        self.rapl = RaplModule(
            config.rapl,
            min_cap_w=platform.effective_min_cap_w(),
            initial_power_w=platform.idle_power_w,
        )
        self._sensor: PowerSensor | None = None
        if platform.has_power_sensor:
            self._sensor = PowerSensor(config.sensor_noise_fraction, rng)
        #: Estimator used when no sensor exists (calibrated offline).
        self.estimator: PowerEstimator = calibrate_from_model(
            self.power_model.power_w
        )
        self._current_power_w = platform.idle_power_w
        self._current_utilization = 0.0
        self._demanded_work = 0.0
        self._delivered_work = 0.0
        self._energy_j = 0.0
        self._online = True
        self._last_step_s: float | None = None

    #: Called with ``(server, new_sensor)`` whenever :attr:`sensor` is
    #: reassigned (chaos sensor faults swap it live); the batched
    #: control plane uses this to move the row between lanes.
    _sensor_listener: Callable[["Server", PowerSensor | None], None] | None = None

    @property
    def sensor(self) -> PowerSensor | None:
        """The on-board power sensor currently installed, if any."""
        return self._sensor

    @sensor.setter
    def sensor(self, value: PowerSensor | None) -> None:
        self._sensor = value
        hook = self._sensor_listener
        if hook is not None:
            hook(self, value)

    # ------------------------------------------------------------------
    # Simulation stepping
    # ------------------------------------------------------------------

    def step(self, now_s: float, dt_s: float) -> float:
        """Advance the server by ``dt_s`` seconds ending at ``now_s``.

        Returns the enforced power draw at the end of the step.
        """
        if not self._online:
            self._current_power_w = 0.0
            self._current_utilization = 0.0
            return 0.0
        demand_util = min(1.0, max(0.0, self.workload.utilization(now_s)))
        turbo_on = self.turbo.enabled
        demand_power = self.power_model.power_w(demand_util, turbo=turbo_on)
        enforced = self.rapl.step(demand_power, dt_s)
        self._current_power_w = enforced
        self._current_utilization = demand_util
        factor = self.power_model.performance_factor(
            demand_util, self.rapl.limit_w, turbo=turbo_on
        )
        self._demanded_work += demand_util * dt_s
        self._delivered_work += (
            demand_util * factor * self.turbo.performance_multiplier * dt_s
        )
        self._energy_j += enforced * dt_s
        self._last_step_s = now_s
        return enforced

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    def power_w(self) -> float:
        """Instantaneous enforced power draw (load-source callable)."""
        return self._current_power_w

    @property
    def utilization(self) -> float:
        """Most recent demanded CPU utilization."""
        return self._current_utilization

    @property
    def service(self) -> str:
        """Service this server belongs to."""
        return self.workload.service

    @property
    def online(self) -> bool:
        """Whether the server is powered and running."""
        return self._online

    def set_online(self, online: bool) -> None:
        """Power the server on or off (outages, decommissions)."""
        self._online = bool(online)
        if not online:
            self._current_power_w = 0.0
            self._current_utilization = 0.0

    # ------------------------------------------------------------------
    # Performance accounting
    # ------------------------------------------------------------------

    @property
    def demanded_work(self) -> float:
        """Integral of demanded utilization over time (core-seconds)."""
        return self._demanded_work

    @property
    def delivered_work(self) -> float:
        """Integral of delivered work over time, including Turbo gains."""
        return self._delivered_work

    def performance_ratio(self) -> float:
        """Delivered / demanded work since construction (1.0 = no loss)."""
        if self._demanded_work == 0.0:
            return 1.0
        return self._delivered_work / self._demanded_work

    @property
    def energy_j(self) -> float:
        """Energy consumed since construction, in joules."""
        return self._energy_j

    def energy_efficiency(self) -> float:
        """Delivered work per megajoule (0 when no energy consumed)."""
        if self._energy_j == 0.0:
            return 0.0
        return self._delivered_work / (self._energy_j / 1e6)

    def reset_work_counters(self) -> None:
        """Zero the work and energy integrals."""
        self._demanded_work = 0.0
        self._delivered_work = 0.0
        self._energy_j = 0.0

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state, including sub-modules.

        The sensor entry covers only a directly attached
        :class:`PowerSensor`; a sensor swapped out by a chaos fault is
        captured (and re-swapped) by the fault's own snapshot state.
        """
        workload = self.workload
        return {
            "current_power_w": self._current_power_w,
            "current_utilization": self._current_utilization,
            "demanded_work": self._demanded_work,
            "delivered_work": self._delivered_work,
            "energy_j": self._energy_j,
            "online": self._online,
            "last_step_s": self._last_step_s,
            "turbo_enabled": self.turbo.enabled,
            "rapl": self.rapl.snapshot_state(),
            "estimator": self.estimator.snapshot_state(),
            "sensor": (
                self.sensor.snapshot_state()
                if isinstance(self.sensor, PowerSensor)
                else None
            ),
            "workload": (
                workload.snapshot_state()
                if hasattr(workload, "snapshot_state")
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore mutable state in place on a freshly built server."""
        self._current_power_w = float(state["current_power_w"])
        self._current_utilization = float(state["current_utilization"])
        self._demanded_work = float(state["demanded_work"])
        self._delivered_work = float(state["delivered_work"])
        self._energy_j = float(state["energy_j"])
        self._online = bool(state["online"])
        last = state["last_step_s"]
        self._last_step_s = None if last is None else float(last)
        if state["turbo_enabled"]:
            self.turbo.enable()
        else:
            self.turbo.disable()
        self.rapl.restore_state(state["rapl"])
        self.estimator = PowerEstimator.from_snapshot(state["estimator"])
        if state["sensor"] is not None and isinstance(
            self.sensor, PowerSensor
        ):
            self.sensor.restore_state(state["sensor"])
        if state["workload"] is not None and hasattr(
            self.workload, "restore_state"
        ):
            self.workload.restore_state(state["workload"])

    def __repr__(self) -> str:
        cap = (
            f"cap={self.rapl.limit_w:.0f}W" if self.rapl.capped else "uncapped"
        )
        return (
            f"Server({self.server_id!r}, {self.platform.name}, "
            f"{self.service}, {self._current_power_w:.0f}W, {cap})"
        )
