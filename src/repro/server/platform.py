"""Server hardware platform descriptions.

The paper stresses that heterogeneity is a reality: Westmere, Sandybridge,
Ivybridge, Haswell, and Broadwell servers coexist, each with its own way to
read and cap power (direct MSR writes vs the IPMI node-manager API).
Dynamo keeps its logic platform-independent by hiding these differences
behind an abstraction — here, the :class:`ServerPlatform` record consumed
by platform-agnostic code in the rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServerPlatform:
    """Static hardware characteristics of one server generation.

    Attributes:
        name: platform identifier (e.g. ``haswell-2015``).
        idle_power_w: power draw at 0% CPU utilization.
        peak_power_w: power draw at 100% utilization, Turbo off.
        curve_exponent: shape of the power curve between idle and peak
            (1.0 = linear; >1 = convex as Figure 1's Haswell data shows).
        turbo_power_gain: fractional extra power with Turbo Boost on
            (the paper's Hadoop cluster measured about +20%).
        turbo_perf_gain: fractional performance gain with Turbo on
            (about +13% for Hadoop map-reduce tasks).
        has_power_sensor: whether an on-board sensor provides readings
            (nearly all 2011-or-newer Facebook servers).
        rapl_backend: how the agent talks to RAPL — ``"msr"`` for direct
            machine-status-register writes, ``"ipmi"`` for the node
            manager API.
        min_cap_w: lowest power cap RAPL can enforce on this platform.
    """

    name: str
    idle_power_w: float
    peak_power_w: float
    curve_exponent: float = 1.0
    turbo_power_gain: float = 0.20
    turbo_perf_gain: float = 0.13
    has_power_sensor: bool = True
    rapl_backend: str = "msr"
    min_cap_w: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_power_w < 0:
            raise ConfigurationError("idle power cannot be negative")
        if self.peak_power_w <= self.idle_power_w:
            raise ConfigurationError("peak power must exceed idle power")
        if self.curve_exponent <= 0:
            raise ConfigurationError("curve exponent must be positive")
        if self.rapl_backend not in ("msr", "ipmi"):
            raise ConfigurationError(
                f"unknown RAPL backend {self.rapl_backend!r}"
            )

    @property
    def dynamic_range_w(self) -> float:
        """Peak minus idle power: the range capping can act on."""
        return self.peak_power_w - self.idle_power_w

    @property
    def turbo_peak_power_w(self) -> float:
        """Peak power with Turbo Boost engaged.

        Turbo's extra power comes from the cores, so the gain applies to
        the dynamic component; idle power is unchanged.
        """
        return self.idle_power_w + self.dynamic_range_w * (
            1.0 + self.turbo_power_gain
        )

    def effective_min_cap_w(self) -> float:
        """Lowest enforceable cap: RAPL cannot cap below idle power."""
        return max(self.min_cap_w, self.idle_power_w)


# Figure 1: the 2011 Westmere web server (24 x X5650 @2.67GHz, 12 GB RAM)
# idles near 60 W and peaks near 175 W; the 2015 Haswell web server
# (48 x E5-2678v3, 32 GB RAM) idles near 90 W and peaks near 340 W, with a
# visibly convex curve.  The 2011 platform predates on-board sensors (its
# power was measured with a Yokogawa meter), so it models power instead.
WESTMERE_2011 = ServerPlatform(
    name="westmere-2011",
    idle_power_w=60.0,
    peak_power_w=175.0,
    curve_exponent=1.10,
    has_power_sensor=False,
    rapl_backend="msr",
    min_cap_w=70.0,
)

HASWELL_2015 = ServerPlatform(
    name="haswell-2015",
    idle_power_w=90.0,
    peak_power_w=340.0,
    curve_exponent=1.25,
    has_power_sensor=True,
    rapl_backend="ipmi",
    min_cap_w=100.0,
)

SANDYBRIDGE_2012 = ServerPlatform(
    name="sandybridge-2012",
    idle_power_w=70.0,
    peak_power_w=220.0,
    curve_exponent=1.15,
    has_power_sensor=True,
    rapl_backend="msr",
    min_cap_w=80.0,
)

IVYBRIDGE_2013 = ServerPlatform(
    name="ivybridge-2013",
    idle_power_w=75.0,
    peak_power_w=250.0,
    curve_exponent=1.18,
    has_power_sensor=True,
    rapl_backend="msr",
    min_cap_w=85.0,
)

BROADWELL_2016 = ServerPlatform(
    name="broadwell-2016",
    idle_power_w=85.0,
    peak_power_w=320.0,
    curve_exponent=1.22,
    has_power_sensor=True,
    rapl_backend="ipmi",
    min_cap_w=95.0,
)

PLATFORMS: dict[str, ServerPlatform] = {
    p.name: p
    for p in (
        WESTMERE_2011,
        SANDYBRIDGE_2012,
        IVYBRIDGE_2013,
        HASWELL_2015,
        BROADWELL_2016,
    )
}
