"""Vectorized fleet physics: structure-of-arrays server stepping.

The scalar reference path steps each :class:`~repro.server.server.Server`
object in Python; at fleet scale the interpreter overhead dominates.
This module packs per-server mutable state into numpy arrays (the
binding machinery lives in :mod:`repro.simulation.soa`) and advances the
whole fleet per tick with array ops.

The backends are **bit-identical by contract**, which constrains the
implementation in ways worth spelling out:

* Transcendentals differ by 1 ulp between numpy ufuncs and the C library
  ``math`` module on a few percent of inputs, so any ``exp``/``cos``/
  ``pow`` the scalar path computes per server is computed here with the
  same ``math`` call per *unique argument* (diurnal shapes, OU decay
  factors, RAPL alphas are shared by construction) and broadcast — or,
  for the per-server power curve, with a python ``**`` per element.
* Reductions use ``np.cumsum(...)[-1]`` (strictly sequential, matching
  ``sum()``'s left-to-right association), never ``np.sum`` (pairwise).
* RNG draw order is preserved per stream.  Each server's workload
  normals are prefetched in blocks (``gen.normal(size=k)`` produces the
  same sequence as ``k`` scalar calls); any *other* draw on that stream
  — burst arrivals, hadoop phase lengths, snapshot-time state capture —
  must see the generator at its logical position, so every bound stream
  is wrapped in a :class:`_StreamGuard` that rewinds the speculative
  block (restore saved state, re-draw the consumed prefix) before
  delegating.  Ticks where a server crosses a burst arrival or hadoop
  phase boundary fall back to the scalar ``utilization()`` call for
  just that server, so variable-count draws happen in scalar order.

State is shared, not copied: the scalar objects stay alive as views
onto the arrays (agents, chaos faults, and snapshots read and write
through the same properties on either backend).
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from repro.server.power_model import PowerModel
from repro.server.server import Server
from repro.simulation.soa import ArraySlot, bind_fields
from repro.units import SECONDS_PER_DAY
from repro.workloads.base import StochasticWorkload
from repro.workloads.cache import CacheWorkload
from repro.workloads.database import DatabaseWorkload
from repro.workloads.hadoop import HadoopWorkload
from repro.workloads.newsfeed import NewsfeedWorkload
from repro.workloads.storage import StorageWorkload
from repro.workloads.web import WebWorkload

_ENGAGE_SPAN = 1.0 - PowerModel.TURBO_ENGAGE_UTIL

_SERVER_FIELDS = (
    "_current_power_w",
    "_current_utilization",
    "_demanded_work",
    "_delivered_work",
    "_energy_j",
    "_online",
    "_last_step_s",
)

#: Workload classes whose diurnal base trend is held in ``_shape``.
_DIURNAL_TYPES = (WebWorkload, CacheWorkload, DatabaseWorkload, NewsfeedWorkload)


class _StreamGuard:
    """Generator proxy that flushes a prefetch buffer before any use.

    Installed in place of a server's workload generator once the stepper
    has speculatively drawn a block of normals from it.  Any attribute
    access (``normal``, ``exponential``, ``bit_generator``, ...) first
    rewinds the owning server's buffer so the underlying generator sits
    at its logical draw position, then delegates.
    """

    __slots__ = ("_gen", "_flush")

    def __init__(self, gen: np.random.Generator, flush: Callable[[], None]) -> None:
        self._gen = gen
        self._flush = flush

    def __getattr__(self, name: str) -> Any:
        self._flush()
        return getattr(self._gen, name)


class FleetArrays:
    """The packed per-server state arrays (one row per server).

    Attribute names here are the contract with the ``array_backed``
    declarations on ``Server``, ``RaplModule``, ``TurboBoost``, the
    noise processes, and ``HadoopWorkload``.
    """

    def __init__(self, n: int) -> None:
        self.power = np.zeros(n)
        self.util = np.zeros(n)
        self.demanded = np.zeros(n)
        self.delivered = np.zeros(n)
        self.energy = np.zeros(n)
        self.online = np.ones(n, dtype=bool)
        self.last_step = np.full(n, math.nan)
        self.rapl_limit = np.full(n, math.inf)
        self.rapl_enforced = np.zeros(n)
        self.turbo_enabled = np.zeros(n, dtype=bool)
        self.ou_value = np.zeros(n)
        self.ou_last = np.full(n, math.nan)
        self.burst_next = np.full(n, math.nan)
        self.burst_until = np.full(n, -math.inf)
        self.burst_mag = np.zeros(n)
        self.hadoop_compute = np.zeros(n, dtype=bool)
        self.hadoop_end = np.zeros(n)


class VectorizedFleetStepper:
    """Advances every server in a fleet per tick with array operations."""

    def __init__(self, fleet: Any, *, prefetch_draws: int = 64) -> None:
        servers = list(fleet.servers.values())
        n = len(servers)
        self._fleet = fleet
        self._n = n
        self._block = int(prefetch_draws)
        a = FleetArrays(n)
        self._arrays = a

        self._servers = servers
        self._models = [s.power_model for s in servers]
        self._workloads = [s.workload for s in servers]
        self._server_index = {id(s): i for i, s in enumerate(servers)}

        # Static per-server parameters.
        self._idle_w = np.array([s.platform.idle_power_w for s in servers])
        self._dyn_range = np.array([s.platform.dynamic_range_w for s in servers])
        self._turbo_power_gain = np.array(
            [s.platform.turbo_power_gain for s in servers]
        )
        # Matches TurboBoost.performance_multiplier's python-float add.
        self._turbo_mult = np.array(
            [1.0 + s.platform.turbo_perf_gain for s in servers]
        )
        self._burst_rate = np.zeros(n)
        self._hadoop_hi = np.zeros(n)
        self._hadoop_lo = np.zeros(n)

        # Lane classification.
        self._always_fallback = np.zeros(n, dtype=bool)
        self._ou_mask = np.zeros(n, dtype=bool)
        self._hadoop_mask = np.zeros(n, dtype=bool)
        self._modified: set[int] = set()

        #: Diagnostics: physics ticks run, and server-steps taken on the
        #: scalar fallback lane across them (``repro profile`` reports
        #: the per-tick average so de-vectorization regressions show up).
        self.step_count = 0
        self.fallback_server_steps = 0

        # Prefetch buffers: one block of pre-drawn normals per stream.
        self._buf = np.zeros((n, self._block))
        self._lo = np.zeros(n, dtype=np.intp)
        self._hi = np.zeros(n, dtype=np.intp)
        self._raw_gens: list[np.random.Generator | None] = [None] * n
        self._saved_states: list[Any] = [None] * n

        # Group indices and coefficient caches.
        diurnal: dict[Any, list[int]] = {}
        const: dict[float, list[int]] = {}
        exps: dict[float, list[int]] = {}
        ou: dict[tuple[float, float], list[int]] = {}
        rapl: dict[float, list[int]] = {}
        self._ou_coeff_cache: dict[tuple[float, float, float], tuple[float, float]] = {}
        self._rapl_alpha_cache: dict[tuple[float, float], float] = {}

        for i, srv in enumerate(servers):
            slot = ArraySlot(a, i)
            bind_fields(srv, slot, _SERVER_FIELDS)
            bind_fields(srv.rapl, slot, ("_enforced_power_w", "_limit_w"))
            bind_fields(srv.turbo, slot, ("_enabled",))
            exps.setdefault(srv.platform.curve_exponent, []).append(i)
            rapl.setdefault(srv.rapl._tau_s, []).append(i)
            self._bind_workload(i, srv.workload, slot, diurnal, const, ou)

        def _groups(mapping: dict) -> list[tuple[Any, np.ndarray]]:
            return [
                (key, np.array(idx, dtype=np.intp))
                for key, idx in mapping.items()
            ]

        self._diurnal_groups = _groups(diurnal)
        self._const_groups = _groups(const)
        self._exp_groups = _groups(exps)
        self._ou_groups = _groups(ou)
        self._rapl_groups = _groups(rapl)
        self._hadoop_idx = np.nonzero(self._hadoop_mask)[0]
        self._burst_pos = self._burst_rate > 0.0

        # Sharded execution: pristine lane state, so an ownership mask
        # can be applied (and lifted) without rebuilding the stepper.
        self._owned: np.ndarray | None = None
        self._full_lane_state = (
            self._always_fallback,
            self._ou_mask,
            self._hadoop_mask,
            self._burst_pos,
            self._diurnal_groups,
            self._const_groups,
            self._exp_groups,
            self._ou_groups,
            self._rapl_groups,
        )

        # Scratch buffers reused every tick.
        self._scratch_u = np.zeros(n)
        self._scratch_dyn = np.zeros(n)
        self._scratch_factor = np.ones(n)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def _bind_workload(
        self,
        i: int,
        workload: Any,
        slot: ArraySlot,
        diurnal: dict,
        const: dict,
        ou: dict,
    ) -> None:
        if not isinstance(workload, StochasticWorkload):
            # ConstantWorkload and anything unknown: correct via the
            # scalar path every tick (no stochastic state to pack).
            self._always_fallback[i] = True
            return

        noise = workload._noise
        bursts = workload._bursts
        bind_fields(noise, slot, ("_value", "_last_time"))
        bind_fields(bursts, slot, ("_next_start", "_active_until", "_active_magnitude"))
        self._burst_rate[i] = bursts._rate

        # Wrap every distinct generator this workload draws from with a
        # guard that rewinds the prefetch buffer before foreign draws.
        raw = noise._rng
        guard = _StreamGuard(raw, lambda i=i: self._flush_stream(i))
        self._raw_gens[i] = raw
        noise._rng = guard
        if bursts._rng is raw:
            bursts._rng = guard
        else:  # pragma: no cover - streams are shared in practice
            bursts._rng = _StreamGuard(bursts._rng, lambda i=i: self._flush_stream(i))

        workload._modifier_hook = lambda i=i, w=workload: self._on_modifiers(i, w)
        if workload._modifiers:
            self._modified.add(i)

        kind = type(workload)
        if kind in _DIURNAL_TYPES:
            diurnal.setdefault(workload._shape, []).append(i)
        elif kind is StorageWorkload:
            const.setdefault(workload._base_level, []).append(i)
        elif kind is HadoopWorkload:
            bind_fields(workload, slot, ("_phase_is_compute", "_phase_end_s"))
            self._hadoop_hi[i] = workload._compute_level
            self._hadoop_lo[i] = workload._io_level
            self._hadoop_mask[i] = True
            if workload._rng is raw:
                workload._rng = guard
        elif self._is_flat(kind):
            const.setdefault(workload._level, []).append(i)
        else:
            # Unknown base trend: scalar path, but state stays packed so
            # snapshots and telemetry see one source of truth.
            self._always_fallback[i] = True
            return
        self._ou_mask[i] = True
        ou.setdefault((noise._tau_s, noise._sigma), []).append(i)

    @staticmethod
    def _is_flat(kind: type) -> bool:
        try:
            from repro.analysis.worlds import FlatWorkload
        except ImportError:  # pragma: no cover - analysis extras absent
            return False
        return kind is FlatWorkload

    def set_owned_mask(self, owned: Any) -> None:
        """Restrict stepping to the ``owned`` rows (sharded execution).

        A shard worker owns a subset of servers: the lane masks and
        group index arrays are rebuilt restricted to that subset, so
        per-tick work is proportional to the shard and the streams of
        non-owned servers are never touched.  Non-owned rows keep
        whatever state the shared power exchange writes into the
        arrays.  Pass ``None`` to restore full ownership.  An all-False
        mask is valid: the parent process of a sharded world steps
        nothing but still advances ``step_count`` in lock-step.
        """
        (af, ou_m, hd_m, bp, diur, const, exps, oug, rapl) = self._full_lane_state
        if owned is None:
            self._owned = None
            self._always_fallback = af
            self._ou_mask = ou_m
            self._hadoop_mask = hd_m
            self._burst_pos = bp
            self._diurnal_groups = diur
            self._const_groups = const
            self._exp_groups = exps
            self._ou_groups = oug
            self._rapl_groups = rapl
            self._hadoop_idx = np.nonzero(hd_m)[0]
            return
        mask = np.array(owned, dtype=bool)
        if mask.shape != (self._n,):
            raise ValueError(
                f"owned mask has shape {mask.shape}, fleet has {self._n} rows"
            )

        def _filter(groups: list) -> list:
            out = []
            for key, idx in groups:
                sel = idx[mask[idx]]
                if sel.size:
                    out.append((key, sel))
            return out

        self._owned = mask
        self._always_fallback = af & mask
        self._ou_mask = ou_m & mask
        self._hadoop_mask = hd_m & mask
        self._burst_pos = bp & mask
        self._diurnal_groups = _filter(diur)
        self._const_groups = _filter(const)
        self._exp_groups = _filter(exps)
        self._ou_groups = _filter(oug)
        self._rapl_groups = _filter(rapl)
        self._hadoop_idx = np.nonzero(self._hadoop_mask)[0]

    def _on_modifiers(self, i: int, workload: StochasticWorkload) -> None:
        if workload._modifiers:
            self._modified.add(i)
        else:
            self._modified.discard(i)

    # ------------------------------------------------------------------
    # Prefetched draws
    # ------------------------------------------------------------------

    def _flush_stream(self, i: int) -> None:
        """Rewind server ``i``'s speculative block to the logical position."""
        if self._hi[i] == 0:
            return
        gen = self._raw_gens[i]
        assert gen is not None
        gen.bit_generator.state = self._saved_states[i]
        consumed = int(self._lo[i])
        if consumed:
            gen.normal(size=consumed)
        self._lo[i] = 0
        self._hi[i] = 0
        self._saved_states[i] = None

    def _refill(self, i: int) -> None:
        gen = self._raw_gens[i]
        assert gen is not None
        self._saved_states[i] = gen.bit_generator.state
        self._buf[i, :] = gen.normal(size=self._block)
        self._lo[i] = 0
        self._hi[i] = self._block

    def _draw(self, rows: np.ndarray) -> np.ndarray:
        """One buffered standard normal per row, preserving stream order."""
        need = rows[self._lo[rows] >= self._hi[rows]]
        for i in need:
            self._refill(int(i))
        z = self._buf[rows, self._lo[rows]]
        self._lo[rows] += 1
        return z

    def sync(self) -> None:
        """Flush every prefetch buffer.

        After this, every generator's raw state equals its logical draw
        position — required before RNG state is snapshotted externally.
        """
        for i in np.nonzero(self._hi > 0)[0]:
            self._flush_stream(int(i))

    # ------------------------------------------------------------------
    # Coefficients (scalar math per unique argument, matching the
    # per-server scalar computations bit for bit)
    # ------------------------------------------------------------------

    def _ou_coeffs(self, tau_s: float, sigma: float, dt: float) -> tuple[float, float]:
        key = (tau_s, sigma, dt)
        hit = self._ou_coeff_cache.get(key)
        if hit is None:
            decay = math.exp(-dt / tau_s)
            diffusion = sigma * math.sqrt(max(0.0, 1.0 - decay * decay))
            hit = (decay, diffusion)
            self._ou_coeff_cache[key] = hit
        return hit

    def _rapl_alpha(self, tau_s: float, dt_s: float) -> float:
        key = (tau_s, dt_s)
        alpha = self._rapl_alpha_cache.get(key)
        if alpha is None:
            alpha = 1.0 - math.exp(-dt_s / tau_s)
            self._rapl_alpha_cache[key] = alpha
        return alpha

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------

    def step(self, now_s: float, dt_s: float) -> None:
        """Advance every server by ``dt_s`` seconds ending at ``now_s``."""
        n = self._n
        if len(self._fleet.servers) != n:
            raise RuntimeError(
                "fleet membership changed after the vectorized stepper was "
                "bound; rebuild the driver"
            )
        if n == 0:
            return
        a = self._arrays
        owned = self._owned
        online = a.online if owned is None else a.online & owned
        u = self._scratch_u

        # Lane selection: servers whose stream would see a variable
        # number of draws this tick (burst arrival, hadoop phase cross)
        # or whose workload we cannot vectorize run the scalar path.
        fallback = self._always_fallback.copy()
        if self._hadoop_idx.size:
            fallback |= self._hadoop_mask & (now_s >= a.hadoop_end)
        fallback |= self._burst_pos & (
            np.isnan(a.burst_next) | (now_s >= a.burst_next)
        )
        fallback &= online
        vec = online & ~fallback
        self.step_count += 1
        self.fallback_server_steps += int(np.count_nonzero(fallback))

        # Base trend, one scalar math call per group broadcast.
        for shape, idx in self._diurnal_groups:
            phase = 2.0 * math.pi * (now_s - shape.peak_time_s) / SECONDS_PER_DAY
            blend = (1.0 + math.cos(phase)) / 2.0
            u[idx] = shape.trough + (shape.peak - shape.trough) * blend
        for level, idx in self._const_groups:
            u[idx] = level
        hidx = self._hadoop_idx
        if hidx.size:
            u[hidx] = np.where(
                a.hadoop_compute[hidx], self._hadoop_hi[hidx], self._hadoop_lo[hidx]
            )

        # OU noise: exactly one buffered draw per advancing server.
        ou_elig = self._ou_mask & vec
        sidx = np.nonzero(ou_elig)[0]
        if sidx.size:
            first = ou_elig & np.isnan(a.ou_last)
            if first.any():
                a.ou_last[first] = now_s
            adv = ou_elig & (now_s > a.ou_last)
            if adv.any():
                for (tau_s, sigma), gidx in self._ou_groups:
                    sel = gidx[adv[gidx]]
                    if sel.size == 0:
                        continue
                    dts = now_s - a.ou_last[sel]
                    if sel.size == 1 or (dts == dts[0]).all():
                        subsets = [(float(dts[0]), sel)]
                    else:
                        subsets = [
                            (float(dt), sel[dts == dt]) for dt in np.unique(dts)
                        ]
                    for dt, rows in subsets:
                        decay, diffusion = self._ou_coeffs(tau_s, sigma, dt)
                        z = self._draw(rows)
                        a.ou_value[rows] = a.ou_value[rows] * decay + diffusion * z
                    a.ou_last[sel] = now_s
            u[sidx] += a.ou_value[sidx]
            # Bursts: the vec lane never crosses an arrival, so the
            # contribution is pure state readout.
            u[sidx] += np.where(
                self._burst_pos[sidx] & (now_s < a.burst_until[sidx]),
                a.burst_mag[sidx],
                0.0,
            )

        # Modifiers are pure (no draws): scalar post-pass, pre-clamp.
        if self._modified:
            for i in sorted(self._modified):
                if vec[i]:
                    val = float(u[i])
                    for modifier in self._workloads[i]._modifiers:
                        val = modifier.apply(now_s, val)
                    u[i] = val

        vec_idx = np.nonzero(vec)[0]
        u[vec_idx] = np.minimum(1.0, np.maximum(0.0, u[vec_idx]))

        # Scalar lane: the guard rewinds each stream before its draws.
        for i in np.nonzero(fallback)[0]:
            u[i] = min(1.0, max(0.0, self._workloads[i].utilization(now_s)))

        # Only rows this process owns are zeroed when offline; under an
        # ownership mask, plain ``~online`` would also cover every
        # non-owned row and wipe state the exchange just delivered.
        off_sel = ~a.online if owned is None else owned & ~a.online
        off_idx = np.nonzero(off_sel)[0]
        if off_idx.size:
            u[off_idx] = 0.0

        # Power model: python ** per element (numpy's pow differs by
        # 1 ulp on a few percent of inputs), group-batched by exponent.
        dyn = self._scratch_dyn
        if owned is not None:
            # Non-owned rows are absent from the (filtered) exponent
            # groups and never rewritten; left alone, the whole-array
            # multiply below would compound their stale scratch values
            # every step until they overflow.
            dyn[~owned] = 0.0
        for exp_e, gidx in self._exp_groups:
            dyn[gidx] = [v**exp_e for v in u[gidx].tolist()]
        dyn *= self._dyn_range
        tsel = a.turbo_enabled & online & (u > PowerModel.TURBO_ENGAGE_UTIL)
        if tsel.any():
            tidx = np.nonzero(tsel)[0]
            engagement = (u[tidx] - PowerModel.TURBO_ENGAGE_UTIL) / _ENGAGE_SPAN
            dyn[tidx] *= 1.0 + self._turbo_power_gain[tidx] * engagement
        demand = dyn
        demand += self._idle_w

        # RAPL first-order settle toward min(demand, limit).
        on_idx = np.nonzero(online)[0]
        if dt_s > 0:
            target = np.minimum(demand, a.rapl_limit)
            for tau_s, gidx in self._rapl_groups:
                sel = gidx[online[gidx]]
                if sel.size == 0:
                    continue
                alpha = self._rapl_alpha(tau_s, dt_s)
                a.rapl_enforced[sel] += (target[sel] - a.rapl_enforced[sel]) * alpha

        # Performance factor: non-unity only where a finite cap binds.
        factor = self._scratch_factor
        factor.fill(1.0)
        capped = (
            online
            & np.isfinite(a.rapl_limit)
            & (u > 0.0)
            & (a.rapl_limit < demand)
        )
        if capped.any():
            lim = a.rapl_limit
            for i in np.nonzero(capped)[0]:
                factor[i] = self._models[i].performance_factor(
                    float(u[i]), float(lim[i]), turbo=bool(a.turbo_enabled[i])
                )

        # Accounting, preserving the scalar path's association order.
        a.demanded[on_idx] += u[on_idx] * dt_s
        turbo_mult = np.where(a.turbo_enabled[on_idx], self._turbo_mult[on_idx], 1.0)
        a.delivered[on_idx] += ((u[on_idx] * factor[on_idx]) * turbo_mult) * dt_s
        a.energy[on_idx] += a.rapl_enforced[on_idx] * dt_s
        a.power[on_idx] = a.rapl_enforced[on_idx]
        a.util[on_idx] = u[on_idx]
        a.last_step[on_idx] = now_s
        if off_idx.size:
            a.power[off_idx] = 0.0
            a.util[off_idx] = 0.0

    # ------------------------------------------------------------------
    # Batched aggregation
    # ------------------------------------------------------------------

    def total_power(self) -> float:
        """Fleet-wide power, identical to summing ``power_w()`` in order.

        ``cumsum`` accumulates strictly left to right, matching the
        association of the scalar generator ``sum``.
        """
        if self._n == 0:
            return 0.0
        return float(np.cumsum(self._arrays.power)[-1])

    def install_device_caches(self, topology: Any) -> None:
        """Turn each device's direct-load sum into an indexed reduction.

        A device whose attached loads are all plain ``Server.power_w``
        bound methods gets a closure summing the packed power array at
        precomputed indices; anything else keeps the scalar sum.  The
        device calls back on attach/detach so caches never go stale.
        """
        for device in topology.iter_devices():
            device._load_membership_hook = self._refresh_device_cache
            self._refresh_device_cache(device)

    def _refresh_device_cache(self, device: Any) -> None:
        indices: list[int] = []
        for source in device._loads.values():
            owner = getattr(source, "__self__", None)
            index = self._server_index.get(id(owner))
            if index is None or getattr(source, "__func__", None) is not Server.power_w:
                device._load_power_cache = None
                return
            indices.append(index)
        if not indices:
            device._load_power_cache = lambda: 0.0
            return
        idx = np.array(indices, dtype=np.intp)
        power = self._arrays.power
        device._load_power_cache = (
            lambda idx=idx, power=power: float(np.cumsum(power[idx])[-1])
        )


__all__ = [
    "FleetArrays",
    "VectorizedFleetStepper",
]
