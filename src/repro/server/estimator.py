"""Power estimation for servers without on-board sensors.

For the small group of sensor-less servers, the paper builds a power model
"similar to [Isci & Martonosi]" by measuring server power against CPU
utilization with a Yokogawa meter, then estimates power on-the-fly from
system statistics.  Leaf controllers reuse the same machinery to fill in
readings for servers whose power pull failed, using neighbours running
similar workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AgentError


@dataclass(frozen=True)
class LinearPowerFit:
    """A fitted ``power = intercept + slope * utilization`` model."""

    intercept_w: float
    slope_w: float
    residual_rms_w: float

    def predict(self, utilization: float) -> float:
        """Estimated power at ``utilization`` in [0, 1]."""
        return max(0.0, self.intercept_w + self.slope_w * utilization)


def fit_linear_power_model(
    samples: list[tuple[float, float]]
) -> LinearPowerFit:
    """Least-squares fit of (utilization, power W) calibration samples.

    Mirrors the offline Yokogawa calibration run: sweep request rate,
    record (CPU utilization, measured power) pairs, fit.

    Raises:
        AgentError: with fewer than two distinct utilization points.
    """
    if len(samples) < 2:
        raise AgentError("need at least two calibration samples")
    utils = np.array([u for u, _ in samples], dtype=float)
    powers = np.array([p for _, p in samples], dtype=float)
    if np.ptp(utils) == 0.0:
        raise AgentError("calibration samples must span multiple utilizations")
    design = np.vstack([np.ones_like(utils), utils]).T
    coeffs, _, _, _ = np.linalg.lstsq(design, powers, rcond=None)
    predictions = design @ coeffs
    rms = float(np.sqrt(np.mean((powers - predictions) ** 2)))
    return LinearPowerFit(
        intercept_w=float(coeffs[0]),
        slope_w=float(coeffs[1]),
        residual_rms_w=rms,
    )


class PowerEstimator:
    """On-the-fly power estimation from system statistics.

    Wraps a fitted linear model plus optional memory/network terms; the
    utilization term dominates for the workloads studied.
    """

    def __init__(
        self,
        fit: LinearPowerFit,
        *,
        memory_coeff_w: float = 0.0,
        network_coeff_w: float = 0.0,
    ) -> None:
        self._fit = fit
        self._memory_coeff_w = memory_coeff_w
        self._network_coeff_w = network_coeff_w

    @property
    def fit(self) -> LinearPowerFit:
        """The underlying utilization fit."""
        return self._fit

    def estimate_w(
        self,
        cpu_utilization: float,
        *,
        memory_traffic: float = 0.0,
        network_traffic: float = 0.0,
    ) -> float:
        """Estimated instantaneous power in watts."""
        if not 0.0 <= cpu_utilization <= 1.0:
            raise AgentError(
                f"cpu utilization must be in [0, 1], got {cpu_utilization}"
            )
        estimate = self._fit.predict(cpu_utilization)
        estimate += self._memory_coeff_w * memory_traffic
        estimate += self._network_coeff_w * network_traffic
        return max(0.0, estimate)

    def snapshot_state(self) -> dict:
        """Serializable fit parameters.

        Needed because :meth:`recalibrate` replaces the whole instance:
        a snapshot must capture the *current* calibration, not the one
        the world builder produced.
        """
        return {
            "intercept_w": self._fit.intercept_w,
            "slope_w": self._fit.slope_w,
            "residual_rms_w": self._fit.residual_rms_w,
            "memory_coeff_w": self._memory_coeff_w,
            "network_coeff_w": self._network_coeff_w,
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "PowerEstimator":
        """Rebuild an estimator from :meth:`snapshot_state` output."""
        return cls(
            LinearPowerFit(
                intercept_w=float(state["intercept_w"]),
                slope_w=float(state["slope_w"]),
                residual_rms_w=float(state["residual_rms_w"]),
            ),
            memory_coeff_w=float(state["memory_coeff_w"]),
            network_coeff_w=float(state["network_coeff_w"]),
        )

    def recalibrate(self, scale: float) -> "PowerEstimator":
        """Return a copy with outputs scaled by ``scale``.

        Used by the 'validate against breaker readings' loop: when the
        aggregated estimate drifts from the (coarse) breaker reading, the
        controller dynamically tunes the estimators (Section VI).
        """
        if scale <= 0:
            raise AgentError("recalibration scale must be positive")
        scaled = LinearPowerFit(
            intercept_w=self._fit.intercept_w * scale,
            slope_w=self._fit.slope_w * scale,
            residual_rms_w=self._fit.residual_rms_w * scale,
        )
        return PowerEstimator(
            scaled,
            memory_coeff_w=self._memory_coeff_w * scale,
            network_coeff_w=self._network_coeff_w * scale,
        )


def calibrate_from_model(
    power_fn, utilization_points: int = 11
) -> PowerEstimator:
    """Build an estimator by sweeping a power function (a bench rig).

    ``power_fn`` maps utilization in [0, 1] to watts — in production the
    Yokogawa meter; here usually ``PowerModel.power_w``.
    """
    samples = [
        (i / (utilization_points - 1), power_fn(i / (utilization_points - 1)))
        for i in range(utilization_points)
    ]
    return PowerEstimator(fit_linear_power_model(samples))
