"""Exception hierarchy for the Dynamo reproduction.

Every library-raised exception derives from :class:`ReproError` so callers
can catch the whole family with a single ``except`` clause while tests can
assert on precise subtypes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class TopologyError(ReproError):
    """The power-delivery topology is malformed (cycles, orphans, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine was driven incorrectly."""


class BreakerTrippedError(ReproError):
    """A circuit breaker tripped, taking its subtree offline.

    Attributes:
        device_name: the power device whose breaker tripped.
        time: simulation time of the trip, in seconds.
    """

    def __init__(self, device_name: str, time: float) -> None:
        super().__init__(f"breaker tripped on {device_name!r} at t={time:.1f}s")
        self.device_name = device_name
        self.time = time


class RpcError(ReproError):
    """An RPC to an agent or controller failed."""


class RpcTimeoutError(RpcError):
    """An RPC did not complete within its deadline."""


class AgentError(RpcError):
    """A Dynamo agent operation failed.

    Subclasses :class:`RpcError` because controllers observe agent
    failures through the RPC fabric: a crashed agent looks like a failed
    call, and the controller's failure-estimation path must engage.
    """


class CappingError(ReproError):
    """A power-capping command could not be applied."""


class AggregationInvalidError(ReproError):
    """Too many power readings failed; aggregation must not be trusted.

    Mirrors the paper's rule that when more than 20% of a leaf controller's
    servers fail to report power, the controller treats the aggregate as
    invalid and alerts a human instead of acting.
    """

    def __init__(self, failed: int, total: int) -> None:
        super().__init__(
            f"power aggregation invalid: {failed}/{total} readings failed"
        )
        self.failed = failed
        self.total = total


class ControllerError(ReproError):
    """A power controller encountered an unrecoverable condition."""


class ServeError(ReproError):
    """A serve-layer request was invalid or could not be satisfied."""


class UnknownSessionError(ServeError):
    """A serve request named a session id the manager does not hold.

    Attributes:
        session_id: the id the request asked for.
    """

    def __init__(self, session_id: str) -> None:
        super().__init__(f"unknown session {session_id!r}")
        self.session_id = session_id


class SnapshotError(ReproError):
    """A world snapshot could not be captured, saved, loaded, or restored."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot file's content hash does not match its envelope."""


class SnapshotVersionError(SnapshotError):
    """A snapshot was written with an incompatible schema version.

    Attributes:
        found: the schema version in the file.
        supported: the version this library reads and writes.
    """

    def __init__(self, found: int, supported: int) -> None:
        super().__init__(
            f"snapshot schema version {found} is incompatible with the "
            f"supported version {supported}; re-capture the snapshot"
        )
        self.found = found
        self.supported = supported


class ShardingError(ReproError):
    """The sharded execution backend hit a protocol or worker failure."""
