"""Monitoring substrate: time series, samplers, and variation analysis.

The paper's characterization (Section II-B) rests on fine-grained power
samples: 3 s readings for every server in a 30 K-server suite over six
months.  This package provides the storage (:class:`TimeSeries`), the
collection (:class:`PowerSampler`), and the analysis — the windowed
max-minus-min *power variation* metric of Figure 4 and the CDF machinery
behind Figures 5 and 6 — plus the alerting sink controllers raise
human-intervention alarms into, and the per-tick control-cycle trace
ring (:class:`TraceBuffer` of :class:`TickTrace` records) every
controller's sense → aggregate → decide → actuate pipeline feeds.
"""

from repro.telemetry.alerts import Alert, AlertSink
from repro.telemetry.cdf import empirical_cdf, percentile
from repro.telemetry.events import EventLog, TelemetryEvent
from repro.telemetry.sampler import PowerSampler
from repro.telemetry.timeseries import TimeSeries
from repro.telemetry.tracing import (
    TickTrace,
    TraceBuffer,
    TraceMetrics,
)
from repro.telemetry.variation import (
    max_variation_in_window,
    variation_series,
    variation_summary,
)

__all__ = [
    "Alert",
    "AlertSink",
    "EventLog",
    "PowerSampler",
    "TelemetryEvent",
    "TickTrace",
    "TimeSeries",
    "TraceBuffer",
    "TraceMetrics",
    "empirical_cdf",
    "max_variation_in_window",
    "percentile",
    "variation_series",
    "variation_summary",
]
