"""Empirical CDF and percentile helpers for the characterization study."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def empirical_cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, cumulative probabilities) for plotting.

    The i-th probability is (i + 1) / n, so the largest value maps to 1.0.

    Raises:
        ConfigurationError: for an empty input.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("cannot build a CDF from no samples")
    ordered = np.sort(arr)
    probs = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probs


def percentile(values, q: float) -> float:
    """The q-th percentile (0-100) of ``values``.

    Raises:
        ConfigurationError: for an empty input or q outside [0, 100].
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


def p50(values) -> float:
    """Median (the paper's p50)."""
    return percentile(values, 50.0)


def p99(values) -> float:
    """99th percentile (the paper's p99)."""
    return percentile(values, 99.0)
