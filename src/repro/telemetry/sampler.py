"""Periodic power samplers for devices and servers.

A :class:`PowerSampler` records the instantaneous power of a set of named
sources into per-source :class:`~repro.telemetry.timeseries.TimeSeries`,
driven by a :class:`~repro.simulation.process.PeriodicProcess`.  This is
the "fine-grained real-time monitoring" half of Dynamo (Table I's
3-second granularity readings) and feeds the characterization study.
"""

from __future__ import annotations

from typing import Callable

from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess
from repro.telemetry.timeseries import TimeSeries

PowerSource = Callable[[], float]


class PowerSampler:
    """Samples named power sources on a fixed interval."""

    def __init__(
        self,
        engine: SimulationEngine,
        interval_s: float = 3.0,
        *,
        name: str = "sampler",
    ) -> None:
        self._sources: dict[str, PowerSource] = {}
        self.series: dict[str, TimeSeries] = {}
        self._process = PeriodicProcess(
            engine, interval_s, self._tick, label=f"{name}.tick", priority=5
        )

    def add_source(self, source_id: str, source: PowerSource) -> None:
        """Register a power source; sampling starts at the next tick."""
        self._sources[source_id] = source
        self.series.setdefault(source_id, TimeSeries(source_id))

    def remove_source(self, source_id: str) -> None:
        """Stop sampling a source; its recorded series is kept."""
        self._sources.pop(source_id, None)

    def start(self, phase: float = 0.0) -> None:
        """Begin periodic sampling."""
        self._process.start(phase)

    def stop(self) -> None:
        """Stop sampling."""
        self._process.stop()

    def _tick(self, now_s: float) -> None:
        for source_id, source in self._sources.items():
            self.series[source_id].append(now_s, source())

    @property
    def sample_count(self) -> int:
        """Total samples recorded across all sources."""
        return sum(len(s) for s in self.series.values())
