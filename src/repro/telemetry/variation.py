"""The power-variation metric of Figure 4 and its summaries.

For a time window ``W``, the *power variation* is the difference between
the maximum and minimum power observed inside the window, normalized to a
reference power (the paper normalizes to "the average power during peak
hours").  Sliding the window across a trace yields a distribution of
variations; Figures 5 and 6 report its CDF and the p50/p99 values.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry.cdf import percentile
from repro.telemetry.timeseries import TimeSeries


def max_variation_in_window(values: np.ndarray) -> float:
    """Max minus min of one window of samples (Figure 4's v)."""
    if values.size == 0:
        raise ConfigurationError("window contains no samples")
    return float(np.max(values) - np.min(values))


def variation_series(
    series: TimeSeries,
    window_s: float,
    *,
    stride_s: float | None = None,
) -> np.ndarray:
    """Sliding-window max-min variations across a whole trace.

    Samples are assumed near-uniformly spaced (the 3 s pull cycle).  The
    window slides by ``stride_s`` (default: one sample) and each position
    contributes one variation value.  Uses monotonic deques for O(n)
    overall cost, which matters for six-month-equivalent traces.

    Returns absolute (watt) variations; normalize with
    :func:`variation_summary` or by dividing by a reference power.
    """
    if window_s <= 0:
        raise ConfigurationError("window must be positive")
    times = series.times
    values = series.values
    n = times.size
    if n < 2:
        return np.empty(0)
    # Estimate sample spacing from the median gap (robust to jitter).
    gaps = np.diff(times)
    spacing = float(np.median(gaps))
    if spacing <= 0:
        raise ConfigurationError("series must have increasing timestamps")
    width = max(2, int(round(window_s / spacing)) + 1)
    if width > n:
        return np.empty(0)
    stride = 1
    if stride_s is not None:
        stride = max(1, int(round(stride_s / spacing)))
    max_deque: collections.deque[int] = collections.deque()
    min_deque: collections.deque[int] = collections.deque()
    out: list[float] = []
    for i in range(n):
        while max_deque and values[max_deque[-1]] <= values[i]:
            max_deque.pop()
        max_deque.append(i)
        while min_deque and values[min_deque[-1]] >= values[i]:
            min_deque.pop()
        min_deque.append(i)
        start = i - width + 1
        if start < 0:
            continue
        while max_deque[0] < start:
            max_deque.popleft()
        while min_deque[0] < start:
            min_deque.popleft()
        if (i - (width - 1)) % stride == 0:
            out.append(float(values[max_deque[0]] - values[min_deque[0]]))
    return np.asarray(out)


def variation_summary(
    series: TimeSeries,
    window_s: float,
    *,
    reference_power_w: float | None = None,
    stride_s: float | None = None,
) -> dict[str, float]:
    """p50/p99 (and mean) of normalized variation for one window size.

    ``reference_power_w`` defaults to the trace's mean power, standing in
    for the paper's "average power during peak hours".

    Returns a dict with keys ``p50``, ``p99``, ``mean`` — all expressed
    as *percent* of the reference power, matching the paper's axes.
    """
    variations = variation_series(series, window_s, stride_s=stride_s)
    if variations.size == 0:
        raise ConfigurationError(
            f"trace too short for a {window_s}s window"
        )
    reference = reference_power_w if reference_power_w is not None else series.mean()
    if reference <= 0:
        raise ConfigurationError("reference power must be positive")
    normalized = variations / reference * 100.0
    return {
        "p50": percentile(normalized, 50.0),
        "p99": percentile(normalized, 99.0),
        "mean": float(np.mean(normalized)),
    }


#: The window sizes Figure 5 sweeps, in seconds.
FIGURE5_WINDOWS_S = (3.0, 30.0, 60.0, 150.0, 300.0, 600.0)
