"""Structured event log for discrete occurrences.

Time series capture continuous signals; this log captures *occurrences* —
chaos injections and recoveries, watchdog restarts, failovers — with a
stable textual form so a run can be fingerprinted and two runs compared
for byte-identical behaviour (the chaos subsystem's replay guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TelemetryEvent:
    """One timestamped occurrence."""

    time_s: float
    source: str
    kind: str
    detail: str = ""

    def render(self) -> str:
        """Stable one-line form used for run fingerprints."""
        return f"{self.time_s:.6f} {self.source} {self.kind} {self.detail}"


class EventLog:
    """Append-only log of :class:`TelemetryEvent` records."""

    def __init__(self) -> None:
        self._events: list[TelemetryEvent] = []

    def record(
        self, time_s: float, source: str, kind: str, detail: str = ""
    ) -> TelemetryEvent:
        """Append and return a new event."""
        event = TelemetryEvent(
            time_s=float(time_s), source=source, kind=kind, detail=detail
        )
        self._events.append(event)
        return event

    @property
    def events(self) -> list[TelemetryEvent]:
        """All events, in record order."""
        return list(self._events)

    def by_kind(self, kind: str) -> list[TelemetryEvent]:
        """Events matching one kind."""
        return [e for e in self._events if e.kind == kind]

    def by_kind_prefix(self, prefix: str) -> list[TelemetryEvent]:
        """Events whose kind starts with ``prefix`` (e.g. ``"inject."``)."""
        return [e for e in self._events if e.kind.startswith(prefix)]

    def from_source(self, source: str) -> list[TelemetryEvent]:
        """Events recorded by one source."""
        return [e for e in self._events if e.source == source]

    def count(self) -> int:
        """Total events recorded."""
        return len(self._events)

    def fingerprint(self) -> str:
        """Newline-joined stable rendering of every event.

        Two runs with identical behaviour produce byte-identical
        fingerprints; any divergence in injection timing, targets, or
        ordering shows up as a diff.
        """
        return "\n".join(e.render() for e in self._events)

    def snapshot_state(self) -> dict:
        """Serializable event list (order preserved)."""
        return {
            "events": [
                {
                    "time_s": e.time_s,
                    "source": e.source,
                    "kind": e.kind,
                    "detail": e.detail,
                }
                for e in self._events
            ]
        }

    def restore_state(self, state: dict) -> None:
        """Replace contents with the snapshot's events."""
        self._events = [
            TelemetryEvent(
                time_s=float(e["time_s"]),
                source=e["source"],
                kind=e["kind"],
                detail=e["detail"],
            )
            for e in state["events"]
        ]

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"EventLog(n={len(self._events)})"
