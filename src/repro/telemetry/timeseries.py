"""Append-only time series storage for power telemetry."""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import ConfigurationError


class TimeSeries:
    """Timestamped float samples, appended in time order.

    Backed by plain Python lists (append-heavy workload) with
    numpy-returning accessors for analysis.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time_s: float, value: float) -> None:
        """Add a sample; time must be >= the last sample's time."""
        if self._times and time_s < self._times[-1]:
            raise ConfigurationError(
                f"samples must be appended in time order "
                f"({time_s} < {self._times[-1]})"
            )
        self._times.append(float(time_s))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps as an array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values)

    def latest(self) -> tuple[float, float]:
        """The most recent (time, value) sample.

        Raises:
            ConfigurationError: if the series is empty.
        """
        if not self._times:
            raise ConfigurationError(f"time series {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def window(self, start_s: float, end_s: float) -> "TimeSeries":
        """Samples with ``start_s <= t <= end_s`` as a new series."""
        lo = bisect.bisect_left(self._times, start_s)
        hi = bisect.bisect_right(self._times, end_s)
        out = TimeSeries(self.name)
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def value_at(self, time_s: float) -> float:
        """The value of the latest sample at or before ``time_s``.

        Raises:
            ConfigurationError: if no sample exists that early.
        """
        idx = bisect.bisect_right(self._times, time_s) - 1
        if idx < 0:
            raise ConfigurationError(
                f"no sample at or before t={time_s} in {self.name!r}"
            )
        return self._values[idx]

    def mean(self) -> float:
        """Arithmetic mean of all values (0.0 when empty)."""
        if not self._values:
            return 0.0
        return float(np.mean(self._values))

    def max(self) -> float:
        """Maximum value.

        Raises:
            ConfigurationError: if the series is empty.
        """
        if not self._values:
            raise ConfigurationError(f"time series {self.name!r} is empty")
        return float(np.max(self._values))

    def min(self) -> float:
        """Minimum value.

        Raises:
            ConfigurationError: if the series is empty.
        """
        if not self._values:
            raise ConfigurationError(f"time series {self.name!r} is empty")
        return float(np.min(self._values))

    def downsample(self, interval_s: float) -> "TimeSeries":
        """Keep the last sample in each ``interval_s`` bucket.

        Models coarse-grained sources like breaker readings that only
        update every minute.
        """
        if interval_s <= 0:
            raise ConfigurationError("downsample interval must be positive")
        out = TimeSeries(self.name)
        last_bucket: int | None = None
        pending: tuple[float, float] | None = None
        for t, v in zip(self._times, self._values):
            bucket = int(t // interval_s)
            if bucket != last_bucket and pending is not None:
                out._times.append(pending[0])
                out._values.append(pending[1])
            last_bucket = bucket
            pending = (t, v)
        if pending is not None:
            out._times.append(pending[0])
            out._values.append(pending[1])
        return out

    def snapshot_state(self) -> dict:
        """Serializable sample arrays."""
        return {"times": list(self._times), "values": list(self._values)}

    def restore_state(self, state: dict) -> None:
        """Replace contents with the snapshot's samples."""
        self._times = [float(t) for t in state["times"]]
        self._values = [float(v) for v in state["values"]]

    def to_csv(self, path) -> None:
        """Write ``time_s,value`` rows (with header) to ``path``."""
        with open(path, "w") as f:
            f.write("time_s,value\n")
            for t, v in zip(self._times, self._values):
                f.write(f"{t!r},{v!r}\n")

    @classmethod
    def from_csv(cls, path, name: str = "") -> "TimeSeries":
        """Read a series previously written by :meth:`to_csv`."""
        series = cls(name)
        with open(path) as f:
            header = f.readline()
            if header.strip() != "time_s,value":
                raise ConfigurationError(
                    f"{path} does not look like a TimeSeries CSV"
                )
            for line in f:
                t_str, v_str = line.strip().split(",")
                series.append(float(t_str), float(v_str))
        return series

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self)})"
