"""Alerting sink for conditions requiring human intervention.

Dynamo alerts rather than acts when it cannot trust its inputs — e.g.
when more than 20% of a leaf controller's power pulls fail — and warns on
monitoring conditions like sustained overdraw.  The sink is a simple
in-memory log with severity levels; tests and experiments assert on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """Alert severity levels."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One raised alert."""

    time_s: float
    severity: Severity
    source: str
    message: str


class AlertSink:
    """Collects alerts raised anywhere in a deployment."""

    def __init__(self) -> None:
        self._alerts: list[Alert] = []

    def raise_alert(
        self,
        time_s: float,
        severity: Severity,
        source: str,
        message: str,
    ) -> Alert:
        """Record and return a new alert."""
        alert = Alert(time_s=time_s, severity=severity, source=source, message=message)
        self._alerts.append(alert)
        return alert

    @property
    def alerts(self) -> list[Alert]:
        """All alerts, in raise order."""
        return list(self._alerts)

    def by_severity(self, severity: Severity) -> list[Alert]:
        """Alerts matching one severity."""
        return [a for a in self._alerts if a.severity is severity]

    def from_source(self, source: str) -> list[Alert]:
        """Alerts raised by one source."""
        return [a for a in self._alerts if a.source == source]

    def count(self) -> int:
        """Total alerts raised."""
        return len(self._alerts)

    def snapshot_state(self) -> dict:
        """Serializable alert list (order preserved)."""
        return {
            "alerts": [
                {
                    "time_s": a.time_s,
                    "severity": a.severity.value,
                    "source": a.source,
                    "message": a.message,
                }
                for a in self._alerts
            ]
        }

    def restore_state(self, state: dict) -> None:
        """Replace contents with the snapshot's alerts."""
        self._alerts = [
            Alert(
                time_s=float(a["time_s"]),
                severity=Severity(a["severity"]),
                source=a["source"],
                message=a["message"],
            )
            for a in state["alerts"]
        ]

    def clear(self) -> None:
        """Drop all recorded alerts."""
        self._alerts.clear()
