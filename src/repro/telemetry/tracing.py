"""Per-tick control-cycle observability: TickTrace records and buffers.

Every controller tick — leaf or upper — runs the same four-stage
pipeline (sense → aggregate → decide → actuate, see
:mod:`repro.core.controller`).  A :class:`TickTrace` is the structured
record of one such cycle: what was pulled and what had to be estimated,
the aggregate and the band thresholds it was judged against, the
decision, the watts requested versus actually allocated, how actuation
fared, and how long each stage took.

Traces land in a bounded :class:`TraceBuffer` (a ring: old ticks fall
off, memory stays flat over arbitrarily long runs) with a queryable
:class:`TraceMetrics` view consumed by the chaos scorecard and the
``repro trace`` CLI command.

Stage durations are wall-clock measurements and therefore *not* part of
:meth:`TickTrace.render`, which must stay byte-stable across replays of
the same seeded run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TickTrace:
    """One controller control cycle, end to end."""

    time_s: float
    controller: str
    kind: str
    valid: bool
    action: str
    pulls_attempted: int
    pulls_failed: int
    pulls_estimated: int
    aggregate_w: float | None
    effective_limit_w: float | None
    cap_at_w: float | None
    target_w: float | None
    uncap_at_w: float | None
    cut_requested_w: float
    cut_allocated_w: float
    actuation_successes: int
    actuation_failures: int
    capped_after: int
    sense_duration_s: float
    aggregate_duration_s: float
    decide_duration_s: float
    actuate_duration_s: float
    detail: str = ""
    #: Failed pulls served from the last-known-good reading cache.
    pulls_stale: int = 0
    #: The controller's operating posture when the tick ran.
    mode: str = "normal"
    #: Fraction of pulls resolved by measurement or the stale cache
    #: (1.0 on fully healthy cycles).
    coverage_fraction: float = 1.0
    #: Dark servers reconstructed by the disaggregation estimator.
    disaggregated: int = 0
    #: Signed error of the (inflated) aggregate versus the simulated
    #: ground truth, on disaggregated cycles; >= 0 means the margin
    #: held and the controller could not under-cap.
    estimation_error_w: float = 0.0

    @property
    def duration_s(self) -> float:
        """Total wall-clock time spent in the four stages."""
        return (
            self.sense_duration_s
            + self.aggregate_duration_s
            + self.decide_duration_s
            + self.actuate_duration_s
        )

    def to_dict(self) -> dict:
        """Serializable field dict (snapshot format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, state: dict) -> "TickTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        return cls(**state)

    def render(self) -> str:
        """Stable one-line form (durations excluded: they are wall-clock)."""
        aggregate = "-" if self.aggregate_w is None else f"{self.aggregate_w:.1f}"
        limit = (
            "-"
            if self.effective_limit_w is None
            else f"{self.effective_limit_w:.1f}"
        )
        flags = "ok" if self.valid else "invalid"
        # Resilience annotations appear only when they carry signal, so
        # legacy (and golden-fingerprint) renders stay byte-identical.
        stale = f" stale={self.pulls_stale}" if self.pulls_stale else ""
        mode = f" mode={self.mode}" if self.mode != "normal" else ""
        disagg = (
            f" cov={self.coverage_fraction:.2f}"
            f" esterr={self.estimation_error_w:.1f}W"
            if self.disaggregated
            else ""
        )
        return (
            f"{self.time_s:.3f} {self.controller} [{self.kind}] {self.action}"
            f" {flags} pulls={self.pulls_attempted - self.pulls_failed}"
            f"/{self.pulls_attempted} est={self.pulls_estimated}"
            f" agg={aggregate}W limit={limit}W"
            f" cut={self.cut_requested_w:.1f}/{self.cut_allocated_w:.1f}W"
            f" act={self.actuation_successes}+{self.actuation_failures}f"
            f" capped={self.capped_after}{stale}{mode}{disagg}"
        )


@dataclass
class TraceBuilder:
    """Mutable draft a tick threads through its stages, then freezes."""

    time_s: float
    controller: str
    kind: str
    valid: bool = True
    action: str = "hold"
    pulls_attempted: int = 0
    pulls_failed: int = 0
    pulls_estimated: int = 0
    aggregate_w: float | None = None
    effective_limit_w: float | None = None
    cap_at_w: float | None = None
    target_w: float | None = None
    uncap_at_w: float | None = None
    cut_requested_w: float = 0.0
    cut_allocated_w: float = 0.0
    actuation_successes: int = 0
    actuation_failures: int = 0
    capped_after: int = 0
    sense_duration_s: float = 0.0
    aggregate_duration_s: float = 0.0
    decide_duration_s: float = 0.0
    actuate_duration_s: float = 0.0
    detail: str = ""
    pulls_stale: int = 0
    mode: str = "normal"
    coverage_fraction: float = 1.0
    disaggregated: int = 0
    estimation_error_w: float = 0.0

    def finish(self) -> TickTrace:
        """Freeze the draft into an immutable :class:`TickTrace`."""
        return TickTrace(
            time_s=self.time_s,
            controller=self.controller,
            kind=self.kind,
            valid=self.valid,
            action=self.action,
            pulls_attempted=self.pulls_attempted,
            pulls_failed=self.pulls_failed,
            pulls_estimated=self.pulls_estimated,
            aggregate_w=self.aggregate_w,
            effective_limit_w=self.effective_limit_w,
            cap_at_w=self.cap_at_w,
            target_w=self.target_w,
            uncap_at_w=self.uncap_at_w,
            cut_requested_w=self.cut_requested_w,
            cut_allocated_w=self.cut_allocated_w,
            actuation_successes=self.actuation_successes,
            actuation_failures=self.actuation_failures,
            capped_after=self.capped_after,
            sense_duration_s=self.sense_duration_s,
            aggregate_duration_s=self.aggregate_duration_s,
            decide_duration_s=self.decide_duration_s,
            actuate_duration_s=self.actuate_duration_s,
            detail=self.detail,
            pulls_stale=self.pulls_stale,
            mode=self.mode,
            coverage_fraction=self.coverage_fraction,
            disaggregated=self.disaggregated,
            estimation_error_w=self.estimation_error_w,
        )


@dataclass(frozen=True)
class TraceMetrics:
    """Aggregated view over a set of traces (the queryable metrics)."""

    ticks: int = 0
    invalid_ticks: int = 0
    caps: int = 0
    uncaps: int = 0
    holds: int = 0
    pulls_attempted: int = 0
    pulls_failed: int = 0
    pulls_estimated: int = 0
    pulls_stale: int = 0
    pulls_disaggregated: int = 0
    min_coverage_fraction: float = 1.0
    max_estimation_error_w: float = 0.0
    cut_requested_w: float = 0.0
    cut_allocated_w: float = 0.0
    actuation_successes: int = 0
    actuation_failures: int = 0
    mean_tick_duration_s: float = 0.0
    max_tick_duration_s: float = 0.0

    @property
    def allocation_fraction(self) -> float:
        """Fraction of requested watts actually allocated (1.0 when none)."""
        if self.cut_requested_w <= 0.0:
            return 1.0
        return self.cut_allocated_w / self.cut_requested_w

    def rows(self) -> list[tuple[str, str]]:
        """(metric, value) pairs for tabular rendering."""
        return [
            ("ticks traced", str(self.ticks)),
            ("invalid ticks", str(self.invalid_ticks)),
            ("cap / uncap / hold", f"{self.caps} / {self.uncaps} / {self.holds}"),
            (
                "pulls ok/failed/estimated",
                f"{self.pulls_attempted - self.pulls_failed}"
                f"/{self.pulls_failed}/{self.pulls_estimated}",
            ),
            ("stale reads served", str(self.pulls_stale)),
            ("pulls disaggregated", str(self.pulls_disaggregated)),
            ("min sensing coverage", f"{self.min_coverage_fraction:.2f}"),
            (
                "max estimation error",
                "-"
                if self.pulls_disaggregated == 0
                else f"{self.max_estimation_error_w:.1f} W",
            ),
            (
                "watts requested vs allocated",
                f"{self.cut_requested_w:.1f} / {self.cut_allocated_w:.1f}",
            ),
            (
                "actuations ok/failed",
                f"{self.actuation_successes}/{self.actuation_failures}",
            ),
            (
                "tick duration mean/max",
                f"{1e6 * self.mean_tick_duration_s:.1f} / "
                f"{1e6 * self.max_tick_duration_s:.1f} us",
            ),
        ]


class TraceBuffer:
    """Bounded ring of :class:`TickTrace` records with query helpers."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ConfigurationError("trace buffer capacity must be positive")
        self._traces: deque[TickTrace] = deque(maxlen=capacity)
        self._recorded = 0

    @property
    def capacity(self) -> int:
        """Maximum ticks retained."""
        maxlen = self._traces.maxlen
        assert maxlen is not None
        return maxlen

    @property
    def recorded(self) -> int:
        """Total ticks ever recorded (including ones the ring dropped)."""
        return self._recorded

    def record(self, trace: TickTrace) -> None:
        """Append one tick trace (oldest falls off at capacity)."""
        self._traces.append(trace)
        self._recorded += 1

    def latest(
        self, n: int | None = None, *, controller: str | None = None
    ) -> list[TickTrace]:
        """The most recent ``n`` traces (all retained when ``n`` is None)."""
        traces = [
            t
            for t in self._traces
            if controller is None or t.controller == controller
        ]
        if n is not None:
            traces = traces[-n:]
        return traces

    def for_controller(
        self, controller: str, n: int | None = None
    ) -> list[TickTrace]:
        """Retained traces for one controller, oldest first."""
        return self.latest(n, controller=controller)

    def last_trace(self, controller: str) -> TickTrace | None:
        """The most recent trace for one controller, or None."""
        traces = self.for_controller(controller, 1)
        return traces[0] if traces else None

    def controllers(self) -> list[str]:
        """Controllers with at least one retained trace, sorted."""
        return sorted({t.controller for t in self._traces})

    def metrics(self, controller: str | None = None) -> TraceMetrics:
        """Aggregate the retained traces into a :class:`TraceMetrics`."""
        traces = self.latest(controller=controller)
        if not traces:
            return TraceMetrics()
        durations = [t.duration_s for t in traces]
        return TraceMetrics(
            ticks=len(traces),
            invalid_ticks=sum(1 for t in traces if not t.valid),
            caps=sum(1 for t in traces if t.action == "cap"),
            uncaps=sum(1 for t in traces if t.action == "uncap"),
            holds=sum(1 for t in traces if t.action == "hold"),
            pulls_attempted=sum(t.pulls_attempted for t in traces),
            pulls_failed=sum(t.pulls_failed for t in traces),
            pulls_estimated=sum(t.pulls_estimated for t in traces),
            pulls_stale=sum(t.pulls_stale for t in traces),
            pulls_disaggregated=sum(t.disaggregated for t in traces),
            min_coverage_fraction=min(
                t.coverage_fraction for t in traces
            ),
            max_estimation_error_w=max(
                (abs(t.estimation_error_w) for t in traces if t.disaggregated),
                default=0.0,
            ),
            cut_requested_w=sum(t.cut_requested_w for t in traces),
            cut_allocated_w=sum(t.cut_allocated_w for t in traces),
            actuation_successes=sum(t.actuation_successes for t in traces),
            actuation_failures=sum(t.actuation_failures for t in traces),
            mean_tick_duration_s=sum(durations) / len(durations),
            max_tick_duration_s=max(durations),
        )

    def snapshot_state(self, *, include_traces: bool = True) -> dict:
        """Serializable ring contents and lifetime counter.

        Stage durations are wall-clock measurements, so they are zeroed
        in the snapshot: a snapshot's bytes must not depend on host
        timing.  Renders (and therefore trace fingerprints) are
        unaffected — durations are excluded from :meth:`TickTrace.render`.
        With ``include_traces=False`` only the counter is captured and
        restore clears the ring (the documented truncation option).
        """
        traces: list[dict] = []
        if include_traces:
            for trace in self._traces:
                state = trace.to_dict()
                state["sense_duration_s"] = 0.0
                state["aggregate_duration_s"] = 0.0
                state["decide_duration_s"] = 0.0
                state["actuate_duration_s"] = 0.0
                traces.append(state)
        return {
            "capacity": self.capacity,
            "recorded": self._recorded,
            "traces": traces,
            "truncated": not include_traces,
        }

    def restore_state(self, state: dict) -> None:
        """Restore ring contents (bounded by this buffer's capacity)."""
        self._traces.clear()
        for trace_state in state["traces"]:
            self._traces.append(TickTrace.from_dict(trace_state))
        self._recorded = int(state["recorded"])

    def clear(self) -> None:
        """Drop all retained traces (the lifetime counter survives)."""
        self._traces.clear()

    def __len__(self) -> int:
        return len(self._traces)

    def __repr__(self) -> str:
        return (
            f"TraceBuffer(n={len(self._traces)}, capacity={self.capacity}, "
            f"recorded={self._recorded})"
        )
