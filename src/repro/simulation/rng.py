"""Named, independently seeded random-number streams.

Simulations need many independent sources of randomness (per-service load
noise, sensor noise, RPC failures, ...).  Drawing them all from one
generator couples unrelated subsystems: adding a sensor-noise draw would
perturb the workload sequence.  :class:`RngStreams` derives a stable child
generator per name from a single experiment seed so each subsystem has its
own reproducible stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """Factory of named, deterministic ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root experiment seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence,
        regardless of creation order of other streams.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """Derive an independent child stream family (e.g. per server)."""
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return RngStreams(int.from_bytes(digest[8:16], "little"))

    def snapshot_state(self) -> dict:
        """Serializable state of every stream created so far.

        ``bit_generator.state`` is a plain dict of ints/strings, so the
        result round-trips through JSON losslessly.
        """
        return {
            "seed": self._seed,
            "streams": {
                name: gen.bit_generator.state
                for name, gen in self._streams.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore stream states in place.

        Generator objects are mutated (not replaced), so components
        holding a reference to a stream see the restored state too.
        Streams in the snapshot that were never drawn here are created
        first; streams created here but absent from the snapshot keep
        their derived state (they are at their origin by construction).
        """
        self._seed = int(state["seed"])
        for name, gen_state in state["streams"].items():
            self.stream(name).bit_generator.state = gen_state
