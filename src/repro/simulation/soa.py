"""Structure-of-arrays binding for scalar state holders.

The vectorized fleet backend (:mod:`repro.server.vectorized`) packs
per-server mutable state into numpy arrays and advances the whole fleet
with array ops.  The scalar objects (``Server``, ``RaplModule``, the
noise processes) stay alive as *views*: every read or write of a bound
field is redirected into the packed array slot, so external code —
agents pulling power, chaos faults flipping servers offline, snapshot
capture/restore — behaves identically on either backend.

A class opts in per field with :func:`array_backed`::

    class Server:
        _soa: ArraySlot | None = None
        _current_power_w = array_backed("power")

Unbound instances (``_soa is None``) store the value in a shadow
attribute, so the scalar backend pays only a property indirection.
Binding an instance means copying its shadow values into the arrays and
assigning ``_soa``; the shadow copies are never read again until the
slot is released.
"""

from __future__ import annotations

import math
from typing import Any


class ArraySlot:
    """One object's slot (row index) in a stepper's packed arrays.

    ``arrays`` is any object exposing the named numpy arrays as
    attributes; ``index`` is the row this instance owns.
    """

    __slots__ = ("arrays", "index")

    def __init__(self, arrays: Any, index: int) -> None:
        self.arrays = arrays
        self.index = index


def _shadow(array_name: str) -> str:
    return "_soa_shadow_" + array_name


def array_backed(array_name: str, *, kind: str = "float") -> property:
    """A property redirecting a scalar field into a packed-array slot.

    ``kind`` selects the value mapping:

    * ``"float"`` — plain float.
    * ``"bool"`` — stored in a bool array.
    * ``"int"`` — stored in an integer array.
    * ``"nan_none"`` — float-or-None; ``None`` is encoded as NaN.
    """
    shadow = _shadow(array_name)

    if kind == "float":

        def fget(self: Any) -> float:
            slot = self._soa
            if slot is None:
                return getattr(self, shadow)
            return float(getattr(slot.arrays, array_name)[slot.index])

        def fset(self: Any, value: float) -> None:
            slot = self._soa
            if slot is None:
                setattr(self, shadow, value)
            else:
                getattr(slot.arrays, array_name)[slot.index] = value

    elif kind == "bool":

        def fget(self: Any) -> bool:  # type: ignore[misc]
            slot = self._soa
            if slot is None:
                return getattr(self, shadow)
            return bool(getattr(slot.arrays, array_name)[slot.index])

        def fset(self: Any, value: bool) -> None:
            slot = self._soa
            if slot is None:
                setattr(self, shadow, value)
            else:
                getattr(slot.arrays, array_name)[slot.index] = bool(value)

    elif kind == "int":

        def fget(self: Any) -> int:  # type: ignore[misc]
            slot = self._soa
            if slot is None:
                return getattr(self, shadow)
            return int(getattr(slot.arrays, array_name)[slot.index])

        def fset(self: Any, value: int) -> None:
            slot = self._soa
            if slot is None:
                setattr(self, shadow, value)
            else:
                getattr(slot.arrays, array_name)[slot.index] = int(value)

    elif kind == "nan_none":

        def fget(self: Any) -> float | None:  # type: ignore[misc]
            slot = self._soa
            if slot is None:
                return getattr(self, shadow)
            value = float(getattr(slot.arrays, array_name)[slot.index])
            return None if math.isnan(value) else value

        def fset(self: Any, value: float | None) -> None:
            slot = self._soa
            if slot is None:
                setattr(self, shadow, value)
            else:
                getattr(slot.arrays, array_name)[slot.index] = (
                    math.nan if value is None else value
                )

    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown array_backed kind {kind!r}")

    return property(fget, fset)


def bind_fields(obj: Any, slot: ArraySlot, fields: tuple[str, ...]) -> None:
    """Bind ``obj`` to ``slot``, seeding arrays from its shadow values.

    ``fields`` lists the array-backed attribute names.  The current
    (shadow) value of each is written through the property *after*
    ``_soa`` is assigned, so it lands in the array with the right value
    mapping applied.
    """
    values = {attr: getattr(obj, attr) for attr in fields}
    obj._soa = slot
    for attr, value in values.items():
        setattr(obj, attr, value)
