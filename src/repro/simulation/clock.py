"""Virtual simulation clock.

A :class:`Clock` is a monotonically advancing float of seconds.  Only the
simulation engine advances it; every other component holds a read-only
reference.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic virtual time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {time:.6f} < {self._now:.6f}"
            )
        self._now = float(time)

    def __repr__(self) -> str:
        return f"Clock(t={self._now:.3f}s)"
