"""Discrete-event simulation substrate.

The simulation engine drives everything in the reproduction: workloads
update server utilization, agents answer power reads, controllers pull and
cap on their cycles, and breakers integrate thermal overdraw — all as
scheduled events against a single virtual clock.
"""

from repro.simulation.clock import Clock
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event
from repro.simulation.process import PeriodicProcess
from repro.simulation.rng import RngStreams

__all__ = [
    "Clock",
    "Event",
    "PeriodicProcess",
    "RngStreams",
    "SimulationEngine",
]
