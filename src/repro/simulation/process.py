"""Periodic processes layered on the discrete-event engine.

Controllers, workload updaters, samplers, and watchdogs are all periodic:
they run a ``tick`` on a fixed interval.  :class:`PeriodicProcess` handles
the self-rescheduling bookkeeping so those components only implement the
tick body.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event


class PeriodicProcess:
    """Invokes a callback on a fixed period until stopped.

    The callback receives the current simulation time.  A process may be
    started with an initial ``phase`` offset so that co-periodic processes
    (e.g. many leaf controllers at 3 s) do not all fire at the same instant
    unless the experiment wants them to.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        interval_s: float,
        tick: Callable[[float], None],
        *,
        label: str = "",
        priority: int = 0,
    ) -> None:
        if interval_s <= 0:
            raise SimulationError(f"interval must be positive, got {interval_s}")
        self._engine = engine
        self._interval = float(interval_s)
        self._tick = tick
        self._label = label or tick.__qualname__
        self._priority = priority
        self._pending: Event | None = None
        self._stopped = True
        self.tick_count = 0

    @property
    def interval_s(self) -> float:
        """The process period in seconds."""
        return self._interval

    @property
    def label(self) -> str:
        """The schedule label (snapshot registries key processes by it)."""
        return self._label

    @property
    def running(self) -> bool:
        """Whether the process is currently scheduled."""
        return not self._stopped

    def start(self, phase: float = 0.0) -> None:
        """Begin ticking, with the first tick ``phase`` seconds from now."""
        if not self._stopped:
            raise SimulationError(f"process {self._label!r} already started")
        if phase < 0:
            raise SimulationError("phase must be non-negative")
        self._stopped = False
        self._pending = self._engine.schedule_after(
            phase, self._run_once, priority=self._priority, label=self._label
        )

    def stop(self) -> None:
        """Stop ticking; a pending tick is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def set_interval(self, interval_s: float) -> None:
        """Change the period; takes effect at the next reschedule."""
        if interval_s <= 0:
            raise SimulationError(f"interval must be positive, got {interval_s}")
        self._interval = float(interval_s)

    def snapshot_state(self) -> dict:
        """Serializable schedule state.

        The pending tick is recorded as an absolute fire time plus its
        original scheduler sequence number — the closure itself is never
        serialized; restore re-registers ``_run_once`` instead.
        """
        return {
            "running": not self._stopped,
            "tick_count": self.tick_count,
            "interval_s": self._interval,
            "next_fire_s": (
                None if self._pending is None else self._pending.time
            ),
            "sequence": (
                None if self._pending is None else self._pending.sequence
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Re-arm the process from a snapshot.

        Any pending tick is cancelled first, so this works both on a
        never-started process and on one armed by a world builder.  Call
        in ascending original-sequence order across all processes so the
        fresh sequence numbers preserve relative tie-break ordering.
        """
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.tick_count = int(state["tick_count"])
        self._interval = float(state["interval_s"])
        if not state["running"] or state["next_fire_s"] is None:
            self._stopped = True
            return
        self._stopped = False
        self._pending = self._engine.schedule_at(
            float(state["next_fire_s"]),
            self._run_once,
            priority=self._priority,
            label=self._label,
        )

    def _run_once(self) -> None:
        if self._stopped:
            return
        self._pending = None
        self._tick(self._engine.clock.now)
        self.tick_count += 1
        if not self._stopped:
            self._pending = self._engine.schedule_after(
                self._interval,
                self._run_once,
                priority=self._priority,
                label=self._label,
            )
