"""Event records for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, priority, sequence)``.  ``priority`` breaks
    ties between events scheduled for the same instant (lower runs first);
    ``sequence`` preserves FIFO order among equal-priority events so runs
    are fully deterministic.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when dequeued."""
        self.cancelled = True
