"""Event records for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, priority, sequence)``.  ``priority`` breaks
    ties between events scheduled for the same instant (lower runs first);
    ``sequence`` preserves FIFO order among equal-priority events so runs
    are fully deterministic.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Engine bookkeeping hook, invoked exactly once on first cancel while
    #: the event is still queued (the engine clears it on dequeue).  Lets
    #: the scheduler keep an O(1) pending-event count.
    on_cancel: Callable[[], None] | None = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when dequeued."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()
            self.on_cancel = None
