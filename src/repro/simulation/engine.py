"""The discrete-event simulation engine.

The engine owns the virtual :class:`~repro.simulation.clock.Clock` and a
priority queue of :class:`~repro.simulation.events.Event` objects.  Running
the engine pops events in time order, advances the clock, and invokes each
event's action.  Actions may schedule further events.

The engine is deliberately small: scheduling, cancellation, run-until, and
step.  Everything domain-specific (controller cycles, workload updates,
breaker integration) is layered on top via callbacks or
:class:`~repro.simulation.process.PeriodicProcess`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.errors import SimulationError
from repro.simulation.clock import Clock
from repro.simulation.events import Event


class SimulationEngine:
    """Deterministic discrete-event scheduler."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self._queue: list[Event] = []
        self._sequence = 0
        self._running = False
        self._events_executed = 0
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run at absolute ``time``.

        Raises:
            SimulationError: if ``time`` is before the current clock.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now "
                f"(t={self.clock.now:.6f})"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            action=action,
            label=label,
            on_cancel=self._note_cancelled,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(
            self.clock.now + delay, action, priority=priority, label=label
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of queued, non-cancelled events.  O(1)."""
        return len(self._queue) - self._cancelled_pending

    @property
    def events_executed(self) -> int:
        """Total events executed since construction."""
        return self._events_executed

    def peek_next_time(self) -> float | None:
        """Time of the next pending event, or None when the queue is empty."""
        self._discard_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def peek_next(self) -> tuple[float, int] | None:
        """(time, priority) of the next pending event, or None if empty.

        The sharded executor uses this between intra-instant phases to
        decide — identically in every process, since event queues are
        replicated — whether the current instant still holds leaf-band
        events that need the RPC-token exchange.
        """
        self._discard_cancelled()
        if not self._queue:
            return None
        head = self._queue[0]
        return head.time, head.priority

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remain.

        Shares the re-entrancy guard with :meth:`run_until` and
        :meth:`run_all`: an event action must not drive its own engine.
        """
        self._guard_entry("step")
        self._running = True
        try:
            return self._execute_next()
        finally:
            self._running = False

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time`` then set the clock there.

        Re-entrant calls are rejected: an event action must not invoke
        ``run_until`` on its own engine.
        """
        self._guard_entry("run_until")
        if end_time < self.clock.now:
            raise SimulationError(
                f"end time {end_time:.6f} is before now {self.clock.now:.6f}"
            )
        self._running = True
        try:
            while True:
                self._discard_cancelled()
                if not self._queue or self._queue[0].time > end_time:
                    break
                self._execute_head()
            self.clock.advance_to(end_time)
        finally:
            self._running = False

    def run_at_instant(self, time: float, below_priority: int) -> int:
        """Run events at exactly ``time`` with priority < ``below_priority``.

        Sharded execution (``repro.sharding``) splits one simulated
        instant into phases run lock-step across processes: physics and
        chaos first, then leaf controller ticks, then upper controllers.
        This is the phase primitive — it executes the head event while
        it sits at ``time`` with a priority below the cut, and leaves
        everything else (including later-priority events at the same
        instant) queued.  The clock is *not* advanced past the executed
        events; finish the instant with :meth:`run_until`.

        Returns the number of events executed.
        """
        self._guard_entry("run_at_instant")
        if time < self.clock.now:
            raise SimulationError(
                f"instant {time:.6f} is before now {self.clock.now:.6f}"
            )
        self._running = True
        executed = 0
        try:
            while True:
                self._discard_cancelled()
                if not self._queue:
                    break
                head = self._queue[0]
                if head.time > time or head.priority >= below_priority:
                    break
                self._execute_head()
                executed += 1
        finally:
            self._running = False
        return executed

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the event queue completely.

        Raises:
            SimulationError: if more than ``max_events`` execute, which
                almost always means a runaway periodic process.
        """
        self._guard_entry("run_all")
        self._running = True
        executed = 0
        try:
            while self._execute_next():
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"run_all exceeded {max_events} events; "
                        "likely a runaway periodic process"
                    )
        finally:
            self._running = False

    def drain_labels(self) -> Iterable[str]:
        """Labels of pending events (diagnostic helper for tests)."""
        return [e.label for e in sorted(self._queue) if not e.cancelled]

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def clear_pending(self) -> int:
        """Cancel every queued event; returns how many were live.

        Snapshot restore uses this to disarm a freshly built world before
        re-registering the schedules recorded in the snapshot.
        """
        live = self.pending_count
        for event in self._queue:
            event.cancel()
        self._queue.clear()
        self._cancelled_pending = 0
        return live

    def snapshot_state(self) -> dict:
        """Serializable scheduler counters (the queue is captured by the
        snapshot registry as re-registerable schedules, not here)."""
        return {
            "now": self.clock.now,
            "events_executed": self._events_executed,
        }

    def restore_state(self, state: dict) -> None:
        """Restore clock position and counters on a fresh engine.

        Must run before any schedules are re-registered; the queue must
        be empty (use :meth:`clear_pending` on a built world first).
        """
        if self._queue:
            raise SimulationError(
                "restore_state requires an empty event queue; "
                "call clear_pending() first"
            )
        self.clock.advance_to(float(state["now"]))
        self._events_executed = int(state["events_executed"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _guard_entry(self, caller: str) -> None:
        if self._running:
            raise SimulationError(
                f"{caller} is not re-entrant: an event action must not "
                "drive its own engine"
            )

    def _execute_next(self) -> bool:
        self._discard_cancelled()
        if not self._queue:
            return False
        self._execute_head()
        return True

    def _execute_head(self) -> None:
        event = heapq.heappop(self._queue)
        # A handle kept past execution must not skew the cancelled count.
        event.on_cancel = None
        self.clock.advance_to(event.time)
        event.action()
        self._events_executed += 1

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1

    def _discard_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_pending -= 1
