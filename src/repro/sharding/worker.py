"""The shard worker process: one shard's slice of the fleet, run warm.

A worker is forked from the fully built parent world, so it holds a
complete replica of the object graph.  Execution is then *masked* rather
than partitioned structurally:

* every process runs every engine event (clocks, sequence numbers, and
  pending queues stay bitwise replicated), but
* the physics stepper only steps this shard's server rows,
* the coordinator no-ops every controller tick except this shard's own
  leaf controllers, which are *collected* and run explicitly once the
  per-instant protocol says it is their turn, and
* upper-level control, chaos accounting, the watchdog snapshot, and all
  fabric-wide scalars are authoritative in the parent.

Determinism contract: the RPC token (transport RNG + latency counters +
resilience jitter/backoff) visits shards in index order at every leaf
instant — the same order a single process ticks those leaves in.  A leaf
whose sense *and* actuate would run entirely on the batched fast lane is
"pure": its only shared-state effect is a known number of latency draws,
so the worker ticks it immediately (in parallel with other shards) with
draws *deferred*, then replays the draw counts against the token when it
arrives.  Any leaf that would touch the scalar lane (failover pairs,
armed faults, breakers, quarantines, missing sensors) waits for the
token and ticks with real draws, serialized in shard order.
"""

from __future__ import annotations

import sys
import time
import traceback
from typing import Any

import numpy as np

from repro.core.agent import agent_endpoint
from repro.core.coordinator import PRIORITY_LEAF, PRIORITY_UPPER
from repro.core.failover import FailoverController
from repro.errors import ShardingError
from repro.sharding.messages import (
    OP_CAPTURE,
    OP_CLOSE,
    OP_ERROR,
    OP_FINISH,
    OP_INSTANT,
    OP_POWER,
    OP_ROWS,
    OP_STATE,
    OP_STATS,
    OP_TOKEN,
    apply_token,
    snapshot_token,
)
from repro.sharding.partition import ShardPlan


def _worker_entry(
    world: Any, plan: ShardPlan, index: int, conn: Any, power_slots: Any
) -> None:
    """Fork target: mask the inherited world down to one shard and serve."""
    worker = ShardWorker(world, plan, index, conn, power_slots)
    try:
        worker.setup()
        worker.run()
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        try:
            conn.send(
                (OP_ERROR, f"{exc!r}\n{traceback.format_exc(limit=20)}")
            )
        except Exception:
            pass
        sys.exit(1)


class ShardWorker:
    """Serves one shard over a pipe to the :class:`ShardedWorld` parent."""

    def __init__(
        self,
        world: Any,
        plan: ShardPlan,
        index: int,
        conn: Any,
        power_slots: np.ndarray,
    ) -> None:
        self._world = world
        self._plan = plan
        self._index = index
        self._conn = conn
        self._slots = power_slots
        self._owned_leaf_list = plan.shard_leaves[index]
        self._owned_leaves = set(self._owned_leaf_list)
        self._owned_sids = plan.shard_server_ids[index]
        self._owned_rows = np.asarray(plan.shard_rows[index], dtype=np.intp)
        #: Wall-clock spent computing (physics + leaf ticks) vs blocked
        #: on the parent (token/power waits) — shipped on ``OP_STATS``.
        self.step_wall_s = 0.0
        self.wait_wall_s = 0.0

    # ------------------------------------------------------------------
    # Post-fork masking
    # ------------------------------------------------------------------

    def setup(self) -> None:
        """Restrict the inherited full world to this shard's ownership."""
        world = self._world
        stepper = world.driver.stepper
        if stepper is None:
            raise ShardingError("shard worker requires the vectorized stepper")
        owned = np.zeros(stepper._n, dtype=bool)
        owned[self._owned_rows] = True
        stepper.set_owned_mask(owned)
        world.driver.shard_sync = self._sync_power
        coordinator = world.dynamo.coordinator
        coordinator.masked_ticks = (
            set(coordinator._controllers) - self._owned_leaves
        )
        coordinator.collect_names = frozenset(self._owned_leaves)
        # Worker telemetry contributions are "since fork": any pre-fork
        # history (a restored world's alerts and trace ring) is already
        # parent-authoritative and must not merge twice.
        world.dynamo.alerts._alerts.clear()
        world.dynamo.traces._traces.clear()
        world.dynamo.traces._recorded = 0

    # ------------------------------------------------------------------
    # Message loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serve parent messages until ``OP_CLOSE``."""
        while True:
            msg = self._conn.recv()
            op = msg[0]
            if op == OP_INSTANT:
                self._instant(msg[1], msg[2])
            elif op == OP_FINISH:
                self._finish(msg[1], msg[2])
            elif op == OP_CAPTURE:
                self._conn.send(
                    (OP_STATE, self.collect_owned_state(msg[1]))
                )
            elif op == OP_STATS:
                self._conn.send(
                    (
                        OP_STATS,
                        {
                            "shard": self._index,
                            "servers": len(self._owned_sids),
                            "leaves": len(self._owned_leaf_list),
                            "step_wall_s": self.step_wall_s,
                            "wait_wall_s": self.wait_wall_s,
                        },
                    )
                )
            elif op == OP_CLOSE:
                return
            else:
                raise ShardingError(f"unexpected op {op!r} in shard worker")

    # ------------------------------------------------------------------
    # Per-instant protocol
    # ------------------------------------------------------------------

    def _instant(self, t: float, limits: list) -> None:
        """Run one simulation instant in lockstep with the parent."""
        self._apply_limits(limits)
        engine = self._world.engine
        t0 = time.perf_counter()
        waited = self.wait_wall_s
        # Phase A: physics / chaos / probes (priority < leaf band).  A
        # physics step fires the shared-memory power exchange inside
        # ``driver.shard_sync``.
        engine.run_at_instant(t, PRIORITY_LEAF)
        head = engine.peek_next()
        has_leaf = (
            head is not None
            and head[0] == t
            and PRIORITY_LEAF <= head[1] < PRIORITY_UPPER
        )
        if has_leaf:
            coordinator = self._world.dynamo.coordinator
            sink: list[tuple[str, float]] = []
            coordinator.collect_sink = sink
            try:
                # Phase B: consume the leaf-band events.  Owned leaves
                # are recorded into the sink (in tick order) instead of
                # running; everything else no-ops.
                engine.run_at_instant(t, PRIORITY_UPPER)
            finally:
                coordinator.collect_sink = None
            self._leaf_exchange(t, sink)
        # Phase C: upper ticks (masked) and the clock advance.
        engine.run_until(t)
        self.step_wall_s += (
            time.perf_counter() - t0 - (self.wait_wall_s - waited)
        )

    def _finish(self, end_s: float, limits: list) -> None:
        """Advance past the last event to the requested end time."""
        self._apply_limits(limits)
        self._world.engine.run_until(end_s)
        self._conn.send((OP_FINISH,))

    def _leaf_exchange(self, t: float, sink: list[tuple[str, float]]) -> None:
        """Tick this shard's collected leaves under the token protocol."""
        dynamo = self._world.dynamo
        transport = dynamo.transport
        coordinator = dynamo.coordinator
        pure = bool(sink) and all(
            self._leaf_is_pure(name, t) for name, _ in sink
        )
        if pure:
            transport.begin_deferred_draws()
            try:
                for name, now_s in sink:
                    coordinator.scheduled_controller(name).tick(now_s)
            finally:
                segments = transport.end_deferred_draws()
            token = self._recv_token()
            apply_token(dynamo, token)
            worst = transport.replay_deferred_draws(segments)
            resilient = dynamo.resilient_transport
            if resilient is not None and worst > resilient.policy.deadline_s:
                raise ShardingError(
                    f"deferred fast-lane latency {worst:.6f} s exceeded "
                    f"the {resilient.policy.deadline_s:g} s deadline at "
                    f"t={t:.3f}; the deferred tick assumed no demotion — "
                    "rerun with execution_backend='single'"
                )
            new_health: list[str] = []
            new_breakers: list[str] = []
        else:
            token = self._recv_token()
            apply_token(dynamo, token)
            health_before = set(dynamo.health._endpoints)
            resilient = dynamo.resilient_transport
            breakers_before = (
                set() if resilient is None else set(resilient._breakers)
            )
            for name, now_s in sink:
                coordinator.scheduled_controller(name).tick(now_s)
            new_health = [
                endpoint
                for endpoint in dynamo.health._endpoints
                if endpoint not in health_before
            ]
            new_breakers = (
                []
                if resilient is None
                else [
                    endpoint
                    for endpoint in resilient._breakers
                    if endpoint not in breakers_before
                ]
            )
        self._conn.send(
            (
                OP_TOKEN,
                snapshot_token(dynamo),
                self._leaf_reports(),
                new_health,
                new_breakers,
            )
        )

    def _leaf_is_pure(self, name: str, now_s: float) -> bool:
        """Whether a leaf's whole tick stays on the batched fast lane.

        Pure means the tick's only shared-fabric effect is a knowable
        number of latency draws: no failover pair (its health flip path
        is scalar), no scalar-lane endpoint (crashed agent, armed
        per-endpoint fault, sensor swapped out, existing breaker, or
        active quarantine), no armed global fault rates.  The check is
        conservative — anything unclear goes down the serialized
        real-draw path, which is always correct.
        """
        dynamo = self._world.dynamo
        controller = dynamo.hierarchy.leaf_controllers[name]
        if isinstance(controller, FailoverController):
            return False
        transport = dynamo.transport
        resilient = dynamo.resilient_transport
        if resilient is None or transport._batch is None:
            return False
        if not transport._group_allowed():
            return False
        endpoints = controller._endpoints()
        plan = transport._group_plan(endpoints)
        if plan is None or not bool(plan.sense_ok.all()):
            return False
        if not bool(transport._group_fast_mask(plan, plan.sense_ok).all()):
            return False
        for endpoint in endpoints:
            if endpoint in resilient._breakers:
                return False
            if resilient.health.is_quarantined(endpoint, now_s):
                return False
        return True

    def _recv_token(self) -> dict:
        t0 = time.perf_counter()
        msg = self._conn.recv()
        self.wait_wall_s += time.perf_counter() - t0
        if msg[0] == OP_ERROR:
            raise ShardingError(f"parent relayed an error: {msg[1]}")
        if msg[0] != OP_TOKEN:
            raise ShardingError(f"expected token, got {msg[0]!r}")
        return msg[1]

    def _apply_limits(self, limits: list) -> None:
        """Adopt the parent's authoritative contractual leaf limits.

        A pair's halves always hold equal limits (the pair setter writes
        both), so one relayed value covers primary and backup.
        """
        hierarchy = self._world.dynamo.hierarchy
        rank = self._plan.leaf_rank
        for name in self._owned_leaf_list:
            value = limits[rank[name]]
            controller = hierarchy.leaf_controllers[name]
            if isinstance(controller, FailoverController):
                controller.primary._contractual_limit_w = value
                controller.backup._contractual_limit_w = value
            else:
                controller._contractual_limit_w = value

    def _leaf_reports(self) -> dict:
        """Compact per-leaf aggregates the parent patches into its replicas."""
        hierarchy = self._world.dynamo.hierarchy
        reports: dict[str, dict] = {}
        for name in self._owned_leaf_list:
            controller = hierarchy.leaf_controllers[name]
            if isinstance(controller, FailoverController):
                reports[name] = {
                    "pair": True,
                    "primary": (
                        controller.primary._last_aggregate_w,
                        controller.primary.invalid_cycles,
                    ),
                    "backup": (
                        controller.backup._last_aggregate_w,
                        controller.backup.invalid_cycles,
                    ),
                }
            else:
                reports[name] = {
                    "pair": False,
                    "state": (
                        controller._last_aggregate_w,
                        controller.invalid_cycles,
                    ),
                }
        return reports

    # ------------------------------------------------------------------
    # Shared-memory power exchange (driver shard_sync hook)
    # ------------------------------------------------------------------

    def _sync_power(self) -> None:
        """Publish owned power rows; adopt the full fleet's fresh power.

        Double-buffered on step parity: every process increments
        ``step_count`` on every step (the parent steps an empty mask),
        so all pick the same slot, and a slot is never rewritten before
        every process has copied it (writing slot p at step k+2 requires
        the parent to have issued instant k+2, which requires all
        row-barriers of step k+1, which happen after every process
        copied slot p at step k).
        """
        stepper = self._world.driver.stepper
        slot = self._slots[stepper.step_count % 2]
        rows = self._owned_rows
        power = stepper._arrays.power
        slot[rows] = power[rows]
        self._conn.send((OP_ROWS,))
        t0 = time.perf_counter()
        msg = self._conn.recv()
        self.wait_wall_s += time.perf_counter() - t0
        if msg[0] == OP_ERROR:
            raise ShardingError(f"parent relayed an error: {msg[1]}")
        if msg[0] != OP_POWER:
            raise ShardingError(f"expected power release, got {msg[0]!r}")
        power[:] = slot

    # ------------------------------------------------------------------
    # Snapshot contribution
    # ------------------------------------------------------------------

    def collect_owned_state(self, include_traces: bool) -> dict:
        """This shard's authoritative slice of the world state.

        Mirrors the shapes :class:`~repro.state.registry.SnapshotRegistry`
        captures so the parent can substitute entries wholesale.
        """
        from repro.state.registry import SnapshotRegistry

        world = self._world
        dynamo = world.dynamo
        world.driver.sync_physics()
        batch = dynamo.agent_batch
        if batch is not None:
            batch.sync()
        registry = SnapshotRegistry()
        servers = {
            sid: world.fleet.servers[sid].snapshot_state()
            for sid in self._owned_sids
        }
        agents = {
            sid: dynamo.agents[sid].snapshot_state()
            for sid in self._owned_sids
        }
        controllers = {
            name: registry._capture_controller(
                dynamo.hierarchy.leaf_controllers[name]
            )
            for name in self._owned_leaf_list
        }
        # Per-server streams are owned by the server's shard whatever
        # their prefix: ``server.{id}``/``sensor.{id}`` in recipe
        # worlds, ``w.{id}`` in the analysis/chaos worlds.  Family
        # streams (``chaos.campaign``) have no server-id suffix and
        # stay parent-authoritative.
        owned_ids = set(self._owned_sids)
        rng_streams: dict[str, dict] = {}
        for name, gen in world.rng._streams.items():
            if name in owned_ids or name.rsplit(".", 1)[-1] in owned_ids:
                rng_streams[name] = gen.bit_generator.state
        owned_endpoints = {agent_endpoint(sid) for sid in self._owned_sids}
        health = {
            endpoint: stats
            for endpoint, stats in dynamo.health.snapshot_state()[
                "endpoints"
            ].items()
            if endpoint in owned_endpoints
        }
        resilient = dynamo.resilient_transport
        breakers: dict[str, dict] = {}
        if resilient is not None:
            breakers = {
                endpoint: state
                for endpoint, state in resilient.snapshot_state()[
                    "breakers"
                ].items()
                if endpoint in owned_endpoints
            }
        fast_successes = None
        if batch is not None:
            fast_successes = [
                int(batch.fast_successes[row]) for row in self._owned_rows
            ]
        alerts = [
            alert
            for alert in dynamo.alerts.snapshot_state()["alerts"]
            if alert["source"] in self._owned_leaves
        ]
        traces_state = dynamo.traces.snapshot_state(
            include_traces=include_traces
        )
        traces_state["traces"] = [
            trace
            for trace in traces_state["traces"]
            if trace["controller"] in self._owned_leaves
        ]
        faults = None
        if world.orchestrator is not None:
            faults = [
                fault.snapshot_state(world.orchestrator.ctx)
                for fault in world.orchestrator.faults
            ]
        return {
            "shard": self._index,
            "servers": servers,
            "agents": agents,
            "controllers": controllers,
            "rng_streams": rng_streams,
            "health": health,
            "breakers": breakers,
            "fast_successes": fast_successes,
            "alerts": alerts,
            "traces": traces_state,
            "faults": faults,
        }


__all__ = ["ShardWorker", "_worker_entry"]
