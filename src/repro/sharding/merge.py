"""Merge a parent capture with per-shard owned-state contributions.

The parent's :class:`~repro.state.registry.SnapshotRegistry` capture is
structurally complete but stale wherever a shard owns the state: server
physics rows (only power is exchanged per step), agent and leaf
controller state, per-server RNG streams, agent-endpoint health and
breaker records, fast-lane success counters, leaf alerts and traces, and
the per-server slices of mid-flight chaos fault state.  Each worker
ships exactly that slice (see ``ShardWorker.collect_owned_state``); this
module substitutes the slices into the parent state so the merged dict
is bitwise what a single process would have captured.

Ordering rules (they make the merge exact, not just equivalent):

* health endpoints and breakers are emitted in the parent's *ledger*
  order — first-materialization order relayed with the RPC token — which
  is the single-process registry insertion order;
* alerts and traces at one instant sort leaves (by global leaf rank,
  then per-leaf emission order) before parent-side uppers, matching the
  coordinator's intra-instant tick order; the trace ring then keeps the
  last ``capacity`` entries, exactly like the single-process ring.
"""

from __future__ import annotations

from typing import Any

from repro.sharding.partition import ShardPlan


def merge_sharded_state(
    state: dict,
    parts: list[dict],
    plan: ShardPlan,
    health_order: list[str],
    breaker_order: list[str],
    include_traces: bool,
) -> dict:
    """Substitute shard-owned slices into the parent capture, in place."""
    for part in parts:
        state["servers"].update(part["servers"])
        state["agents"].update(part["agents"])
        state["controllers"].update(part["controllers"])
        state["rng"]["streams"].update(part["rng_streams"])

    if state.get("control_batch") is not None:
        fast = list(state["control_batch"]["fast_successes"])
        for part in parts:
            values = part["fast_successes"]
            if values is None:
                continue
            for row, value in zip(plan.shard_rows[part["shard"]], values):
                fast[row] = value
        state["control_batch"] = {"fast_successes": fast}

    state["health"] = {
        "endpoints": _merge_keyed(
            health_order,
            state["health"]["endpoints"],
            [part["health"] for part in parts],
        )
    }
    if state.get("resilient") is not None:
        state["resilient"]["breakers"] = _merge_keyed(
            breaker_order,
            state["resilient"]["breakers"],
            [part["breakers"] for part in parts],
        )

    state["alerts"] = {
        "alerts": _merge_ordered(
            state["alerts"]["alerts"],
            [part["alerts"] for part in parts],
            plan,
            source_key="source",
        )
    }
    state["traces"] = _merge_traces(
        state["traces"], [part["traces"] for part in parts], plan,
        include_traces,
    )

    if state.get("orchestrator") is not None:
        _merge_faults(
            state["orchestrator"]["faults"],
            [part["faults"] for part in parts],
            plan,
        )
    return state


def _merge_keyed(
    order: list[str],
    parent_entries: dict[str, Any],
    part_entries: list[dict[str, Any]],
) -> dict[str, Any]:
    """Rebuild a registry dict in ledger order, owner entries preferred.

    Keys the ledger missed (none are expected — the token relay reports
    every first materialization) are appended in parent order, then in
    shard order, so the merge stays deterministic even if a future code
    path creates entries outside the relay.
    """
    owned: dict[str, Any] = {}
    for entries in part_entries:
        owned.update(entries)
    merged: dict[str, Any] = {}
    seen: set[str] = set()
    for key in order:
        if key in seen:
            continue
        seen.add(key)
        if key in owned:
            merged[key] = owned[key]
        elif key in parent_entries:
            merged[key] = parent_entries[key]
    for key, value in parent_entries.items():
        if key not in seen and key not in owned:
            merged[key] = value
            seen.add(key)
    for key, value in owned.items():
        if key not in seen:
            merged[key] = value
    return merged


def _merge_ordered(
    parent_items: list[dict],
    part_items: list[list[dict]],
    plan: ShardPlan,
    *,
    source_key: str,
) -> list[dict]:
    """Interleave per-leaf streams with the parent's upper-level stream.

    At any instant the coordinator ticks every leaf (in global leaf
    order) before any upper controller, so leaf-sourced entries sort
    ahead of parent entries at equal times.
    """
    entries: list[tuple[float, int, int, int, dict]] = []
    for index, item in enumerate(parent_items):
        entries.append((item["time_s"], 1, 0, index, item))
    for items in part_items:
        for index, item in enumerate(items):
            rank = plan.leaf_rank.get(item[source_key], 0)
            entries.append((item["time_s"], 0, rank, index, item))
    entries.sort(key=lambda entry: entry[:4])
    return [entry[4] for entry in entries]


def _merge_traces(
    parent: dict, parts: list[dict], plan: ShardPlan, include_traces: bool
) -> dict:
    """Union the trace rings and re-apply the ring-capacity bound.

    Each process's ring keeps the last ``capacity`` of *its own* stream
    (owned leaves in workers, uppers in the parent), which is a superset
    of that stream's contribution to the single-process ring — so the
    sorted union truncated to ``capacity`` is exactly the single-process
    ring contents.
    """
    capacity = parent["capacity"]
    recorded = parent["recorded"] + sum(p["recorded"] for p in parts)
    traces: list[dict] = []
    if include_traces:
        traces = _merge_ordered(
            parent["traces"],
            [p["traces"] for p in parts],
            plan,
            source_key="controller",
        )[-capacity:]
    return {
        "capacity": capacity,
        "recorded": recorded,
        "traces": traces,
        "truncated": not include_traces,
    }


def _merge_faults(
    parent_faults: list[dict], part_faults: list[list[dict] | None],
    plan: ShardPlan,
) -> None:
    """Substitute per-server fault-state nodes from their owning shard.

    Fault injection runs replicated in every process, so the captured
    structures are congruent; only nodes tied to a specific server (they
    carry a ``server_id``) hold owner-live data — sensor noise RNG
    states, frozen readings drawn through the owner's stream.
    """
    parts = [faults for faults in part_faults if faults is not None]
    if not parts:
        return
    for index, entry in enumerate(parent_faults):
        entry["state"] = _substitute(
            entry["state"], [faults[index] for faults in parts], plan
        )


def _substitute(node: Any, part_nodes: list[Any], plan: ShardPlan) -> Any:
    """Walk congruent structures; swap server-tied nodes for the owner's.

    ``part_nodes[s]`` is shard ``s``'s copy of the node at this path
    (every worker captures the full, structurally identical fault
    state).  A dict carrying a ``server_id`` is owner-live data and is
    taken wholesale from the owning shard's copy.
    """
    if isinstance(node, dict):
        server_id = node.get("server_id")
        if isinstance(server_id, str) and server_id in plan.shard_of_server:
            return part_nodes[plan.shard_of_server[server_id]]
        return {
            key: _substitute(
                value, [part[key] for part in part_nodes], plan
            )
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [
            _substitute(
                value, [part[index] for part in part_nodes], plan
            )
            for index, value in enumerate(node)
        ]
    return node
