"""Sharded multi-process fleet execution.

Partitions the fleet across K persistent worker processes — each owning
a contiguous run of leaf controllers with their servers, agents, and RNG
streams — while the parent runs the upper control layers.  Per-tick
exchange is reduced to compact aggregates (shared-memory power rows, the
RPC token, per-leaf reports), and the result is bit-identical to
single-process execution.

Select it with ``execution_backend="sharded"`` on
:class:`~repro.config.FleetConfig`, the world builders, or the CLI
(``--execution-backend sharded --shards K``).
"""

from repro.sharding.executor import ShardedWorld
from repro.sharding.merge import merge_sharded_state
from repro.sharding.partition import ShardPlan, leaf_instance, plan_shards

__all__ = [
    "ShardPlan",
    "ShardedWorld",
    "leaf_instance",
    "merge_sharded_state",
    "plan_shards",
]
