"""The sharded execution backend: K warm worker processes, one parent.

:class:`ShardedWorld` wraps a fully built (or snapshot-restored)
:class:`~repro.state.worlds.World`.  Construction forks K persistent
workers — copy-on-write replicas of the whole object graph, so nothing
is pickled — then masks the parent down to the upper layers: upper
controllers, chaos accounting, the watchdog, and the authoritative RPC
fabric scalars.  Each worker masks itself down to its shard (see
:mod:`repro.sharding.worker`).

Per tick, only compact aggregates cross process boundaries:

* the stepped power rows, through a double-buffered shared-memory array
  (the only O(n) exchange, and it is memory-bandwidth cheap);
* the RPC token plus per-leaf ``(aggregate, invalid_cycles)`` reports at
  leaf instants;
* the authoritative contractual leaf limits, piggybacked on the next
  instant message.

The result is bit-identical to ``execution_backend="single"``: same
fingerprints, same snapshot bytes (see ``merge_sharded_state``).
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.coordinator import PRIORITY_LEAF, PRIORITY_UPPER
from repro.core.failover import FailoverController
from repro.core.remote import RemoteChildController
from repro.errors import ConfigurationError, ShardingError
from repro.sharding.merge import merge_sharded_state
from repro.sharding.messages import (
    OP_CAPTURE,
    OP_CLOSE,
    OP_ERROR,
    OP_FINISH,
    OP_INSTANT,
    OP_POWER,
    OP_ROWS,
    OP_STATE,
    OP_STATS,
    OP_TOKEN,
    apply_token,
    snapshot_token,
)
from repro.sharding.partition import ShardPlan, leaf_instance, plan_shards
from repro.sharding.worker import _worker_entry


def _validate_shardable(world: Any) -> None:
    """Refuse world shapes the sharded backend cannot run bit-exactly."""
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigurationError(
            "sharded execution requires the 'fork' start method (workers "
            "inherit the built world copy-on-write); this platform does "
            "not support it"
        )
    if world.governor is not None:
        raise ConfigurationError(
            "sharded execution does not support economics worlds yet "
            "(the governor reshapes headroom fleet-wide each cycle); "
            "use execution_backend='single'"
        )
    if world.driver.stepper is None:
        raise ConfigurationError(
            "sharded execution requires physics_backend='vectorized' "
            "(workers step their shard through the packed arrays)"
        )
    if world.dynamo.agent_batch is None:
        raise ConfigurationError(
            "sharded execution requires control_backend='vectorized' "
            "(workers sense their shard through the agent batch)"
        )
    if world.dynamo.resilient_transport is None:
        raise ConfigurationError(
            "sharded execution requires the resilience layer (the RPC "
            "token relays its RNG and backoff state between shards)"
        )
    for controller in world.dynamo.hierarchy.upper_controllers.values():
        instance = (
            controller.primary
            if isinstance(controller, FailoverController)
            else controller
        )
        for child in instance.children:
            if isinstance(child, RemoteChildController):
                raise ConfigurationError(
                    "sharded execution does not support distributed "
                    "hierarchies (remote child proxies); use "
                    "execution_backend='single'"
                )


class ShardedWorld:
    """A world executed across shard worker processes, bit-identically.

    The wrapped world object stays live in the parent but is only
    partially fresh between captures (workers own their rows); read
    results through :meth:`capture` or :meth:`to_local`, never off
    ``self.world`` directly.
    """

    def __init__(self, world: Any, shards: int) -> None:
        _validate_shardable(world)
        self.world = world
        self.plan: ShardPlan = plan_shards(world, shards)
        #: Parent-side wall-clock per phase, for ``repro profile``.
        self.wall = {
            "shard_step_s": 0.0,
            "exchange_s": 0.0,
            "coordinator_s": 0.0,
        }
        self._closed = False
        stepper = world.driver.stepper
        n = stepper._n
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(16, 2 * n * 8)
        )
        self._slots: np.ndarray = np.ndarray(
            (2, n), dtype=np.float64, buffer=self._shm.buf
        )
        self._slots[0] = stepper._arrays.power
        self._slots[1] = stepper._arrays.power
        ctx = multiprocessing.get_context("fork")
        self._conns: list[Any] = []
        self._procs: list[Any] = []
        try:
            for shard in range(self.plan.shards):
                # Create each pipe immediately before its fork and close
                # the child end right after, so no worker inherits
                # another worker's child-side descriptors.
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(world, self.plan, shard, child_conn, self._slots),
                    daemon=True,
                    name=f"repro-shard-{shard}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise
        # Mask the parent: it steps nothing (but keeps step_count in
        # lock-step), no-ops every leaf tick, and serves the power
        # barrier from the hook below.
        stepper.set_owned_mask(np.zeros(n, dtype=bool))
        world.dynamo.coordinator.masked_ticks = set(self.plan.leaf_names)
        world.driver.shard_sync = self._parent_sync
        # First-materialization ledgers: registry insertion order for
        # endpoints/breakers, extended from worker reports at each leaf
        # instant.  This is what makes the merged snapshot's dict order
        # bitwise single-process.
        self._health_order: list[str] = list(
            world.dynamo.health._endpoints
        )
        self._breaker_order: list[str] = list(
            world.dynamo.resilient_transport._breakers
        )

    # ------------------------------------------------------------------
    # Construction from a snapshot
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: Any, shards: int) -> "ShardedWorld":
        """Boot a sharded world from a snapshot envelope or file path.

        The world is restored single-process in the parent, then
        re-partitioned and re-forked — restore cost is paid once, and
        the partition is a pure function of (structure, shard count).
        """
        from repro.state.registry import SnapshotRegistry
        from repro.state.snapshot import WorldSnapshot

        if not isinstance(snapshot, WorldSnapshot):
            snapshot = WorldSnapshot.load(snapshot)
        world = SnapshotRegistry().restore(snapshot)
        return cls(world, shards)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def now_s(self) -> float:
        """Current simulation time (clocks are replicated)."""
        return float(self.world.engine.clock.now)

    @property
    def extras(self) -> dict:
        """The wrapped world's builder extras (scenario metadata)."""
        return self.world.extras

    def run_until(self, end_s: float) -> None:
        """Advance the world to ``end_s`` across all shards."""
        self._check_open()
        engine = self.world.engine
        while True:
            next_time = engine.peek_next_time()
            if next_time is None or next_time > end_s:
                break
            self._run_instant(next_time)
        limits = self._leaf_limits()
        for conn in self._conns:
            conn.send((OP_FINISH, end_s, limits))
        engine.run_until(end_s)
        for conn in self._conns:
            self._expect(conn, OP_FINISH)

    def _run_instant(self, t: float) -> None:
        engine = self.world.engine
        limits = self._leaf_limits()
        for conn in self._conns:
            conn.send((OP_INSTANT, t, limits))
        exchange_before = self.wall["exchange_s"]
        t0 = time.perf_counter()
        # Phase A: physics (parent steps an empty mask; the barrier in
        # ``_parent_sync`` republishes the full power array), chaos,
        # probes.
        engine.run_at_instant(t, PRIORITY_LEAF)
        head = engine.peek_next()
        has_leaf = (
            head is not None
            and head[0] == t
            and PRIORITY_LEAF <= head[1] < PRIORITY_UPPER
        )
        if has_leaf:
            # Phase B: consume the leaf-band events (all masked here;
            # the owners run them shard-side).
            engine.run_at_instant(t, PRIORITY_UPPER)
        t1 = time.perf_counter()
        self.wall["shard_step_s"] += (t1 - t0) - (
            self.wall["exchange_s"] - exchange_before
        )
        if has_leaf:
            self._relay_token()
            t2 = time.perf_counter()
            self.wall["exchange_s"] += t2 - t1
        # Phase C: upper-level decide/actuate and the clock advance.
        t3 = time.perf_counter()
        engine.run_until(t)
        self.wall["coordinator_s"] += time.perf_counter() - t3

    def _relay_token(self) -> None:
        """Walk the RPC token through shards in leaf order; adopt it."""
        dynamo = self.world.dynamo
        token = snapshot_token(dynamo)
        for conn in self._conns:
            conn.send((OP_TOKEN, token))
            msg = self._expect(conn, OP_TOKEN)
            token = msg[1]
            self._patch_reports(msg[2])
            self._health_order.extend(msg[3])
            self._breaker_order.extend(msg[4])
        apply_token(dynamo, token)

    def _patch_reports(self, reports: dict) -> None:
        """Adopt per-leaf aggregates into the parent's leaf replicas.

        Upper controllers sense ``last_aggregate_power_w`` and the chaos
        probe sums ``invalid_cycles`` off these objects; patching the
        two fields keeps every parent-side read single-process exact.
        """
        hierarchy = self.world.dynamo.hierarchy
        for name, report in reports.items():
            controller = hierarchy.leaf_controllers[name]
            if report["pair"]:
                aggregate, invalid = report["primary"]
                controller.primary._last_aggregate_w = aggregate
                controller.primary.invalid_cycles = invalid
                aggregate, invalid = report["backup"]
                controller.backup._last_aggregate_w = aggregate
                controller.backup.invalid_cycles = invalid
            else:
                aggregate, invalid = report["state"]
                controller._last_aggregate_w = aggregate
                controller.invalid_cycles = invalid

    def _leaf_limits(self) -> list:
        """Authoritative contractual limits, aligned to plan leaf order."""
        hierarchy = self.world.dynamo.hierarchy
        limits = []
        for name in self.plan.leaf_names:
            controller = hierarchy.leaf_controllers[name]
            limits.append(leaf_instance(controller)._contractual_limit_w)
        return limits

    def _parent_sync(self) -> None:
        """Power barrier: collect every shard's rows, release the slot."""
        t0 = time.perf_counter()
        for conn in self._conns:
            self._expect(conn, OP_ROWS)
        stepper = self.world.driver.stepper
        stepper._arrays.power[:] = self._slots[stepper.step_count % 2]
        for conn in self._conns:
            conn.send((OP_POWER,))
        self.wall["exchange_s"] += time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Snapshot capture / downgrade
    # ------------------------------------------------------------------

    def capture(self, *, include_traces: bool | None = None) -> Any:
        """A snapshot bitwise identical to a single-process capture."""
        from repro.state.registry import SnapshotRegistry
        from repro.state.snapshot import WorldSnapshot

        self._check_open()
        if include_traces is None:
            include_traces = (
                self.world.dynamo.config.snapshot.include_traces
            )
        for conn in self._conns:
            conn.send((OP_CAPTURE, include_traces))
        snapshot = SnapshotRegistry().capture(
            self.world, include_traces=include_traces
        )
        parts = [
            self._expect(conn, OP_STATE)[1] for conn in self._conns
        ]
        parts.sort(key=lambda part: part["shard"])
        merged = merge_sharded_state(
            snapshot.state,
            parts,
            self.plan,
            self._health_order,
            self._breaker_order,
            include_traces,
        )
        return WorldSnapshot(
            recipe=snapshot.recipe,
            state=merged,
            schema_version=snapshot.schema_version,
            meta=snapshot.meta,
        )

    def to_local(self) -> Any:
        """Materialize a plain single-process :class:`World` at this state.

        The sharded world stays open; close it separately when done.
        """
        from repro.state.registry import SnapshotRegistry

        return SnapshotRegistry().restore(self.capture())

    def worker_stats(self) -> list[dict]:
        """Per-shard wall-clock accounting (compute vs waiting)."""
        self._check_open()
        for conn in self._conns:
            conn.send((OP_STATS,))
        stats = [self._expect(conn, OP_STATS)[1] for conn in self._conns]
        stats.sort(key=lambda s: s["shard"])
        return stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers, free shared memory, unmask the parent.

        The wrapped world remains structurally intact but its shard-owned
        rows are only as fresh as the last power exchange; state read
        after close is meaningful only through a capture taken before.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send((OP_CLOSE,))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        # Drop the buffer view before unlinking the segment.
        self._slots = np.ndarray((0,), dtype=np.float64)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        world = self.world
        if world.driver.stepper is not None:
            world.driver.stepper.set_owned_mask(None)
        world.dynamo.coordinator.masked_ticks = None
        world.driver.shard_sync = None

    def __enter__(self) -> "ShardedWorld":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ShardingError("this sharded world has been closed")

    def _expect(self, conn: Any, op: str) -> tuple:
        try:
            msg = conn.recv()
        except EOFError as exc:
            raise ShardingError(
                "a shard worker exited unexpectedly (EOF on its pipe)"
            ) from exc
        if msg[0] == OP_ERROR:
            raise ShardingError(f"shard worker failed: {msg[1]}")
        if msg[0] != op:
            raise ShardingError(
                f"protocol error: expected {op!r}, got {msg[0]!r}"
            )
        return msg


__all__ = ["ShardedWorld"]
