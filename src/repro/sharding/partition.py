"""Deterministic fleet partitioning for sharded execution.

A shard owns a *contiguous run of leaf controllers* in hierarchy order
(which is topology pre-order — the same order the coordinator ticks
leaves at a coincident instant).  Owning a leaf means owning its
servers: their physics rows, their Dynamo agents, and their per-server
RNG streams (``server.{id}``, ``sensor.{id}``).

Contiguity is what makes the per-instant RPC-token relay cheap and the
merge deterministic: at a leaf instant the token visits shards in index
order, which is exactly the order a single process would tick the same
leaves in, so every RNG draw and every health/breaker registry insertion
lands in the single-process position.

The partition is a pure function of (world structure, shard count) —
re-partitioning a restored world with the same shard count reproduces
the same ownership exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError


def leaf_instance(controller: Any) -> Any:
    """The concrete leaf behind a possible failover pair (its primary).

    Primary and backup protect the same device over the same servers,
    so structural reads (``server_ids``) are safe on either half.
    """
    return getattr(controller, "primary", controller)


@dataclass(frozen=True)
class ShardPlan:
    """Who owns what, for one (world shape, shard count) pair."""

    shards: int
    #: Every leaf controller name, in hierarchy (tick) order.
    leaf_names: tuple[str, ...]
    #: Leaf names per shard, contiguous in :attr:`leaf_names`.
    shard_leaves: tuple[tuple[str, ...], ...]
    #: Server ids per shard (their leaves' ``server_ids``, in order).
    shard_server_ids: tuple[tuple[str, ...], ...]
    #: Physics-array row indices per shard (fleet iteration order).
    shard_rows: tuple[tuple[int, ...], ...]
    #: Global tick rank of each leaf (index into :attr:`leaf_names`).
    leaf_rank: dict[str, int]
    #: Owning shard per leaf name.
    shard_of_leaf: dict[str, int]
    #: Owning shard per server id.
    shard_of_server: dict[str, int]

    @property
    def n_servers(self) -> int:
        """Total servers covered by the plan."""
        return len(self.shard_of_server)


def plan_shards(world: Any, shards: int) -> ShardPlan:
    """Partition ``world``'s leaves into ``shards`` contiguous groups.

    Raises:
        ConfigurationError: shard count out of range, or a server is
            not reachable through exactly one leaf controller.
    """
    leaves = list(world.dynamo.hierarchy.leaf_controllers.items())
    if shards < 1:
        raise ConfigurationError("shard count must be >= 1")
    if shards > len(leaves):
        raise ConfigurationError(
            f"cannot split {len(leaves)} leaf controllers into "
            f"{shards} shards; use at most one shard per leaf"
        )

    row_of = {sid: row for row, sid in enumerate(world.fleet.servers)}
    leaf_names: list[str] = []
    shard_leaves: list[tuple[str, ...]] = []
    shard_server_ids: list[tuple[str, ...]] = []
    shard_rows: list[tuple[int, ...]] = []
    leaf_rank: dict[str, int] = {}
    shard_of_leaf: dict[str, int] = {}
    shard_of_server: dict[str, int] = {}

    for name, _ in leaves:
        leaf_rank[name] = len(leaf_names)
        leaf_names.append(name)

    total = len(leaves)
    for shard in range(shards):
        lo = shard * total // shards
        hi = (shard + 1) * total // shards
        names: list[str] = []
        sids: list[str] = []
        rows: list[int] = []
        for name, controller in leaves[lo:hi]:
            names.append(name)
            shard_of_leaf[name] = shard
            for sid in leaf_instance(controller).server_ids:
                if sid in shard_of_server:
                    raise ConfigurationError(
                        f"server {sid!r} is owned by two leaf "
                        "controllers; sharded execution requires a "
                        "strict partition"
                    )
                if sid not in row_of:
                    raise ConfigurationError(
                        f"leaf {name!r} references unknown server {sid!r}"
                    )
                shard_of_server[sid] = shard
                sids.append(sid)
                rows.append(row_of[sid])
        shard_leaves.append(tuple(names))
        shard_server_ids.append(tuple(sids))
        shard_rows.append(tuple(rows))

    if len(shard_of_server) != len(row_of):
        orphans = sorted(set(row_of) - set(shard_of_server))[:5]
        raise ConfigurationError(
            f"{len(row_of) - len(shard_of_server)} servers are not under "
            f"any leaf controller (e.g. {orphans}); sharded execution "
            "requires full leaf coverage"
        )

    return ShardPlan(
        shards=shards,
        leaf_names=tuple(leaf_names),
        shard_leaves=tuple(shard_leaves),
        shard_server_ids=tuple(shard_server_ids),
        shard_rows=tuple(shard_rows),
        leaf_rank=leaf_rank,
        shard_of_leaf=shard_of_leaf,
        shard_of_server=shard_of_server,
    )


__all__ = ["ShardPlan", "leaf_instance", "plan_shards"]
