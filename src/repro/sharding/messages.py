"""Wire-format helpers for the parent ↔ shard-worker protocol.

Everything on the pipes is small and structural — per-instant control
messages, the relayed RPC token, compact per-leaf reports — never world
state.  Worker state crosses the pipe exactly once per snapshot capture
(the pruned owned-state dict built in :mod:`repro.sharding.worker`).

The **RPC token** carries the shared scalar state of the fabric: the
transport RNG and latency/call counters, and the resilience layer's
jitter RNG and backoff accounting.  It visits shards in index order at
every leaf instant, so draws land in single-process order; the parent
holds the post-relay state and is authoritative for it at capture.
"""

from __future__ import annotations

from typing import Any

#: Message op codes (first element of every pipe tuple).
OP_INSTANT = "instant"
OP_TOKEN = "token"
OP_ROWS = "rows"
OP_POWER = "power"
OP_FINISH = "finish"
OP_CAPTURE = "capture"
OP_STATE = "state"
OP_STATS = "stats"
OP_CLOSE = "close"
OP_ERROR = "error"


def snapshot_token(dynamo: Any) -> dict:
    """The fabric's shared scalar state, as relayed between processes."""
    transport = dynamo.transport
    resilient = dynamo.resilient_transport
    token: dict = {
        "rng": transport._rng.bit_generator.state,
        "calls_made": transport.calls_made,
        "calls_failed": transport.calls_failed,
        "total_latency_s": transport.total_latency_s,
        "last_call_latency_s": transport.last_call_latency_s,
    }
    if resilient is not None:
        token["resilient"] = {
            "rng": (
                None
                if resilient._rng is None
                else resilient._rng.bit_generator.state
            ),
            "backoff_waited_s": resilient.backoff_waited_s,
        }
    else:
        token["resilient"] = None
    return token


def apply_token(dynamo: Any, token: dict) -> None:
    """Overwrite the fabric's shared scalar state from a relayed token."""
    transport = dynamo.transport
    transport._rng.bit_generator.state = token["rng"]
    transport.calls_made = int(token["calls_made"])
    transport.calls_failed = int(token["calls_failed"])
    transport.total_latency_s = float(token["total_latency_s"])
    transport.last_call_latency_s = float(token["last_call_latency_s"])
    resilient = dynamo.resilient_transport
    relayed = token["resilient"]
    if resilient is not None and relayed is not None:
        if resilient._rng is not None and relayed["rng"] is not None:
            resilient._rng.bit_generator.state = relayed["rng"]
        resilient.backoff_waited_s = float(relayed["backoff_waited_s"])


__all__ = [
    "OP_CAPTURE",
    "OP_CLOSE",
    "OP_ERROR",
    "OP_FINISH",
    "OP_INSTANT",
    "OP_POWER",
    "OP_ROWS",
    "OP_STATE",
    "OP_STATS",
    "OP_TOKEN",
    "apply_token",
    "snapshot_token",
]
