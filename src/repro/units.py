"""Unit helpers and physical constants used throughout the library.

All internal power values are stored in **watts** and all internal times in
**seconds**.  These helpers exist so call sites can express paper-level
quantities (``megawatts(2.5)``, ``minutes(17)``) without sprinkling magic
multipliers around the codebase.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Power conversions (canonical unit: watt)
# ---------------------------------------------------------------------------

WATTS_PER_KILOWATT = 1_000.0
WATTS_PER_MEGAWATT = 1_000_000.0


def kilowatts(value: float) -> float:
    """Convert kilowatts to watts."""
    return value * WATTS_PER_KILOWATT


def megawatts(value: float) -> float:
    """Convert megawatts to watts."""
    return value * WATTS_PER_MEGAWATT


def to_kilowatts(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / WATTS_PER_KILOWATT


def to_megawatts(watts: float) -> float:
    """Convert watts to megawatts."""
    return watts / WATTS_PER_MEGAWATT


# ---------------------------------------------------------------------------
# Time conversions (canonical unit: second)
# ---------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def to_minutes(seconds: float) -> float:
    """Convert seconds to minutes."""
    return seconds / SECONDS_PER_MINUTE


def to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def format_power(watts: float) -> str:
    """Render a power value with a human-friendly magnitude suffix.

    >>> format_power(2_500_000)
    '2.50 MW'
    >>> format_power(190_000)
    '190.00 KW'
    >>> format_power(215.0)
    '215.0 W'
    """
    if abs(watts) >= WATTS_PER_MEGAWATT:
        return f"{watts / WATTS_PER_MEGAWATT:.2f} MW"
    if abs(watts) >= WATTS_PER_KILOWATT:
        return f"{watts / WATTS_PER_KILOWATT:.2f} KW"
    return f"{watts:.1f} W"


def format_duration(seconds: float) -> str:
    """Render a duration with a human-friendly magnitude suffix.

    >>> format_duration(90)
    '1.5 min'
    >>> format_duration(7200)
    '2.0 h'
    >>> format_duration(12)
    '12.0 s'
    """
    if abs(seconds) >= SECONDS_PER_HOUR:
        return f"{seconds / SECONDS_PER_HOUR:.1f} h"
    if abs(seconds) >= SECONDS_PER_MINUTE:
        return f"{seconds / SECONDS_PER_MINUTE:.1f} min"
    return f"{seconds:.1f} s"
