"""Experiment running helpers shared by benches and examples."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.engine import SimulationEngine
from repro.telemetry.timeseries import TimeSeries


@dataclass
class ExperimentRun:
    """Bookkeeping for one experiment execution."""

    engine: SimulationEngine
    notes: dict[str, float] = field(default_factory=dict)

    def note(self, key: str, value: float) -> None:
        """Record a scalar result."""
        self.notes[key] = float(value)


def run_for(engine: SimulationEngine, duration_s: float) -> None:
    """Advance the engine by ``duration_s`` of simulated time."""
    engine.run_until(engine.clock.now + duration_s)


def time_above(series: TimeSeries, threshold: float) -> float:
    """Seconds the series spent above ``threshold``.

    Assumes near-uniform sampling; each sample above threshold counts for
    one sample interval.
    """
    times = series.times
    if times.size < 2:
        return 0.0
    spacing = float(np.median(np.diff(times)))
    return float(np.sum(series.values > threshold)) * spacing


def settling_time(
    series: TimeSeries,
    start_s: float,
    threshold: float,
) -> float | None:
    """Seconds after ``start_s`` until the series first drops to threshold.

    Returns None if it never settles within the recorded trace.
    """
    times = series.times
    values = series.values
    mask = times >= start_s
    for t, v in zip(times[mask], values[mask]):
        if v <= threshold:
            return float(t - start_s)
    return None


def overshoot_fraction(series: TimeSeries, limit: float) -> float:
    """Peak value as a fraction of ``limit`` (1.0 = touched the limit)."""
    if len(series) == 0:
        return 0.0
    return series.max() / limit
