"""Multi-datacenter regions and cascading-failure experiments.

The paper's introduction warns: "a power failure in one data center
could cause a redistribution of load to other data centers, tripping
their power breakers and leading to a cascading power failure event."

This module builds a region of small datacenters behind a global
traffic manager.  When one site goes dark, its traffic share
redistributes to the survivors — exactly the stimulus that cascades
without capping and that Dynamo absorbs with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.worlds import build_surge_world
from repro.core.dynamo import Dynamo
from repro.errors import ConfigurationError
from repro.fleet import Fleet, FleetDriver
from repro.power.topology import PowerTopology
from repro.simulation.engine import SimulationEngine


class RegionalTrafficManager:
    """Splits a region's total traffic across its active datacenters.

    Each datacenter has a weight (its capacity share).  The demand
    multiplier for an active site is ``total_weight / active_weight``:
    with three equal sites and one down, the survivors each run 1.5x.
    """

    def __init__(self) -> None:
        self._weights: dict[str, float] = {}
        self._down: set[str] = set()

    def register(self, dc_name: str, weight: float = 1.0) -> None:
        """Add a datacenter to the region."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self._weights[dc_name] = weight

    def mark_down(self, dc_name: str) -> None:
        """Take a site out of rotation (site failure)."""
        if dc_name not in self._weights:
            raise ConfigurationError(f"unknown datacenter {dc_name!r}")
        self._down.add(dc_name)

    def mark_up(self, dc_name: str) -> None:
        """Return a site to rotation."""
        self._down.discard(dc_name)

    def is_down(self, dc_name: str) -> bool:
        """Whether a site is out of rotation."""
        return dc_name in self._down

    def multiplier(self, dc_name: str) -> float:
        """Current demand multiplier for one site."""
        if dc_name in self._down:
            return 0.0
        total = sum(self._weights.values())
        active = sum(
            w for name, w in self._weights.items() if name not in self._down
        )
        if active <= 0.0:
            return 0.0
        return total / active


@dataclass(frozen=True)
class RegionalTrafficModifier:
    """Workload modifier scaling demand by the site's traffic share."""

    manager: RegionalTrafficManager
    dc_name: str

    def apply(self, now_s: float, utilization: float) -> float:
        """Scale demand by the manager's current multiplier."""
        return utilization * self.manager.multiplier(self.dc_name)


@dataclass
class DataCenterSite:
    """One site in a region."""

    name: str
    topology: PowerTopology
    fleet: Fleet
    driver: FleetDriver
    dynamo: Dynamo | None = None

    def tripped(self) -> bool:
        """Whether any breaker at this site has tripped."""
        return bool(self.driver.trips)


@dataclass
class Region:
    """A set of datacenters sharing one engine and traffic manager."""

    engine: SimulationEngine
    manager: RegionalTrafficManager
    sites: list[DataCenterSite] = field(default_factory=list)

    def site(self, name: str) -> DataCenterSite:
        """Look up a site by name."""
        for site in self.sites:
            if site.name == name:
                return site
        raise ConfigurationError(f"no site named {name!r}")

    def start(self) -> None:
        """Start every site's physics and controllers."""
        for site in self.sites:
            site.driver.start()
            if site.dynamo is not None:
                site.dynamo.start()

    def fail_site(self, name: str) -> None:
        """Site-level failure: traffic drains, servers go dark."""
        self.manager.mark_down(name)
        for server in self.site(name).fleet.servers.values():
            server.set_online(False)

    def tripped_sites(self) -> list[str]:
        """Names of sites that have lost a breaker."""
        return [s.name for s in self.sites if s.tripped()]


def build_region(
    *,
    site_count: int = 3,
    servers_per_site: int = 24,
    level: float = 0.62,
    with_dynamo: bool = True,
    seed: int = 97,
) -> Region:
    """A region of identical small sites behind a traffic manager.

    Site headroom is set so normal operation is comfortable but a
    one-site failure pushes the survivors' SBs past their limits —
    the cascading-failure configuration.
    """
    if site_count < 2:
        raise ConfigurationError("a region needs at least two sites")
    engine = SimulationEngine()
    manager = RegionalTrafficManager()
    region = Region(engine=engine, manager=manager)
    for i in range(site_count):
        name = f"dc{i}"
        manager.register(name)
        # Reuse the surge-world builder for each site, but on the shared
        # engine: rebuild its pieces here with the site's own RNG family.
        site_engine, topology, fleet, rng = build_surge_world(
            n_servers=servers_per_site,
            level=level,
            seed=seed + i,
        )
        # Transplant onto the shared engine by rebuilding drivers and
        # Dynamo against `engine` (the world builder's engine is unused).
        for server in fleet.servers.values():
            server.workload.add_modifier(
                RegionalTrafficModifier(manager, name)
            )
        topology.name = f"{name}-topology"
        _rename_devices(topology, name)
        driver = FleetDriver(engine, topology, fleet)
        dynamo = None
        if with_dynamo:
            dynamo = Dynamo(
                engine, topology, fleet, rng_streams=rng.fork("dynamo")
            )
        region.sites.append(
            DataCenterSite(
                name=name,
                topology=topology,
                fleet=fleet,
                driver=driver,
                dynamo=dynamo,
            )
        )
    return region


def _rename_devices(topology: PowerTopology, prefix: str) -> None:
    """Prefix device names so sites don't collide in reports."""
    for device in topology.iter_devices():
        device.name = f"{prefix}.{device.name}"
    topology.reindex()
