"""Small synthetic worlds for experiments and tests.

:func:`build_surge_world` creates a deliberately fragile deployment — an
SB with thin headroom over rows of flat-load web servers — plus an
optional surge event, for experiments that compare trip outcomes across
management strategies.
"""

from __future__ import annotations

import numpy as np

from repro.fleet import Fleet
from repro.power.device import DeviceLevel, PowerDevice
from repro.power.oversubscription import plan_quotas
from repro.power.topology import PowerTopology
from repro.server.platform import HASWELL_2015
from repro.server.power_model import PowerModel
from repro.server.server import Server
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams
from repro.workloads.base import StochasticWorkload, WorkloadModifier


class FlatWorkload(StochasticWorkload):
    """Deterministic flat workload with modifier support."""

    def __init__(
        self,
        level: float,
        rng: np.random.Generator,
        service: str = "web",
        *,
        noise_sigma: float = 0.0,
    ) -> None:
        super().__init__(service, rng, noise_sigma=noise_sigma)
        self._level = level

    def base_utilization(self, now_s: float) -> float:
        """The flat demand level."""
        return self._level


def build_surge_world(
    *,
    n_servers: int = 40,
    level: float = 0.6,
    surge: WorkloadModifier | None = None,
    rpp_count: int = 2,
    rpp_rating_w: float | None = None,
    sb_rating_w: float | None = None,
    seed: int = 7,
) -> tuple[SimulationEngine, PowerTopology, Fleet, RngStreams]:
    """An SB with ``rpp_count`` rows of flat-load web servers.

    Default ratings leave ~15% SB headroom over the steady state, so a
    mid-size surge overloads the SB while each RPP keeps ~25% headroom —
    the configuration where coordinated capping matters.

    Returns (engine, topology, fleet, rng_streams); no controllers are
    attached, so callers choose the management strategy.
    """
    rng_streams = RngStreams(seed)
    engine = SimulationEngine()
    fleet = Fleet()
    servers_per_rpp = n_servers // rpp_count
    base_power = PowerModel(HASWELL_2015).power_w(level)
    rpp_rating = rpp_rating_w or base_power * servers_per_rpp * 1.25
    sb_rating = sb_rating_w or base_power * n_servers * 1.15
    msb = PowerDevice("msb0", DeviceLevel.MSB, sb_rating * 4)
    sb = PowerDevice("sb0", DeviceLevel.SB, sb_rating)
    msb.add_child(sb)
    for r in range(rpp_count):
        rpp = PowerDevice(f"rpp{r}", DeviceLevel.RPP, rpp_rating)
        sb.add_child(rpp)
        for i in range(servers_per_rpp):
            sid = f"s{r}-{i}"
            workload = FlatWorkload(level, rng_streams.stream(f"w.{sid}"))
            if surge is not None:
                workload.add_modifier(surge)
            server = Server(sid, HASWELL_2015, workload)
            rpp.attach_load(sid, server.power_w)
            fleet.servers[sid] = server
    topology = PowerTopology("surge-world", [msb])
    plan_quotas(topology)
    return engine, topology, fleet, rng_streams
