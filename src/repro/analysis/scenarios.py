"""Prebuilt scenarios replaying the paper's production case studies.

Each builder assembles a topology, a fleet, and a running Dynamo
deployment around one published event:

* :func:`ashburn_load_test` — Figure 11: a front-end cluster's PDU
  breaker driven into capping by a production load test.
* :func:`altoona_outage_recovery` — Figure 12: an SB surged to ~1.3x its
  normal peak by post-outage recovery traffic; the SB controller caps
  three offender rows.
* :func:`prineville_hadoop_turbo` — Figure 14: a Hadoop cluster with
  Turbo Boost enabled, living just under its SB limit for 24 hours.
* :func:`mixed_service_row` — Figures 15/16: one row carrying web, cache
  and feed servers, capped workload-aware.

Absolute scale is reduced ~10x from the paper (hundreds of servers per
scenario rather than thousands) to keep pure-Python runtimes sane; power
ratings are scaled with the fleet so all *relative* behaviour — who caps,
when, and to what level — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dynamo import Dynamo
from repro.fleet import Fleet, FleetDriver
from repro.power.device import DeviceLevel, PowerDevice
from repro.power.oversubscription import plan_quotas
from repro.power.topology import PowerTopology
from repro.server.platform import HASWELL_2015, ServerPlatform
from repro.server.server import Server
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams
from repro.units import hours, kilowatts, megawatts
from repro.workloads.base import StochasticWorkload
from repro.workloads.cache import CacheWorkload
from repro.workloads.diurnal import DiurnalShape
from repro.workloads.events import LoadTestEvent, SiteOutageRecoveryEvent
from repro.workloads.hadoop import HadoopWorkload
from repro.workloads.newsfeed import NewsfeedWorkload
from repro.workloads.storage import StorageWorkload
from repro.workloads.web import WebWorkload


@dataclass
class Scenario:
    """A fully wired scenario ready to run."""

    name: str
    engine: SimulationEngine
    topology: PowerTopology
    fleet: Fleet
    dynamo: Dynamo
    driver: FleetDriver
    extras: dict = field(default_factory=dict)

    def start(self) -> None:
        """Start the physical world and Dynamo."""
        self.driver.start()
        self.dynamo.start()

    def run_until(self, end_time_s: float) -> None:
        """Advance the simulation to an absolute time."""
        self.engine.run_until(end_time_s)


def _chain_topology(
    name: str,
    leaf_ratings_w: list[float],
    *,
    sb_rating_w: float,
    msb_rating_w: float,
) -> PowerTopology:
    """An MSB -> SB -> N RPP chain; only the interesting devices bind."""
    msb = PowerDevice("msb0", DeviceLevel.MSB, msb_rating_w)
    sb = PowerDevice("sb0", DeviceLevel.SB, sb_rating_w)
    msb.add_child(sb)
    for i, rating in enumerate(leaf_ratings_w):
        sb.add_child(PowerDevice(f"rpp{i}", DeviceLevel.RPP, rating))
    return PowerTopology(name, [msb])


def _attach_servers(
    device: PowerDevice,
    fleet: Fleet,
    prefix: str,
    count: int,
    make_workload,
    rng_streams: RngStreams,
    *,
    platform: ServerPlatform = HASWELL_2015,
    turbo: bool = False,
) -> list[Server]:
    """Create ``count`` servers on ``device`` with per-server workloads."""
    servers: list[Server] = []
    for i in range(count):
        server_id = f"{prefix}-{i:04d}"
        rng = rng_streams.stream(f"workload.{server_id}")
        server = Server(
            server_id,
            platform,
            make_workload(rng),
            rng=rng_streams.stream(f"sensor.{server_id}"),
            turbo_enabled=turbo,
        )
        device.attach_load(server_id, server.power_w)
        fleet.servers[server_id] = server
        servers.append(server)
    return servers


# ---------------------------------------------------------------------------
# Figure 11 — Ashburn front-end load test
# ---------------------------------------------------------------------------

def ashburn_load_test(
    *,
    server_count: int = 450,
    pdu_rating_w: float = kilowatts(127.5),
    seed: int = 11,
) -> Scenario:
    """Front-end cluster whose PDU is driven into capping by a load test.

    Timeline mirrors the paper: normal diurnal ramp from 8:00, load test
    from ~10:40 pushing power past the 99% capping threshold around
    11:15, test ends 11:45, uncap near 12:00.  Simulation time is
    seconds-after-midnight.
    """
    rng_streams = RngStreams(seed)
    start_s = hours(8)
    engine = SimulationEngine(start_time=start_s)
    topology = _chain_topology(
        "ashburn-frontend",
        [pdu_rating_w],
        sb_rating_w=megawatts(1.25),
        msb_rating_w=megawatts(2.5),
    )
    plan_quotas(topology)
    pdu = topology.device("rpp0")
    fleet = Fleet()
    load_test = LoadTestEvent(
        start_s=hours(10) + 40 * 60,
        end_s=hours(11) + 45 * 60,
        magnitude=0.25,
        ramp_s=2100.0,
    )

    def make_web(rng: np.random.Generator) -> StochasticWorkload:
        workload = WebWorkload(
            rng, shape=DiurnalShape(trough=0.30, peak=0.68)
        )
        workload.add_modifier(load_test)
        return workload

    _attach_servers(pdu, fleet, "web", server_count, make_web, rng_streams)
    dynamo = Dynamo(
        engine, topology, fleet, rng_streams=rng_streams.fork("dynamo")
    )
    driver = FleetDriver(engine, topology, fleet, step_interval_s=1.0)
    return Scenario(
        name="ashburn_load_test",
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        extras={"pdu": pdu, "load_test": load_test, "start_s": start_s},
    )


# ---------------------------------------------------------------------------
# Figure 12 — Altoona site-outage recovery surge
# ---------------------------------------------------------------------------

def altoona_outage_recovery(
    *,
    hot_rows: int = 3,
    cool_rows: int = 5,
    servers_per_hot_row: int = 50,
    servers_per_cool_row: int = 40,
    sb_rating_w: float = kilowatts(90),
    rpp_rating_w: float = kilowatts(40),
    seed: int = 12,
) -> Scenario:
    """SB surged past its limit by recovery traffic; offender rows capped.

    Three "hot" rows run Turbo-enabled web servers that soak up the
    recovery surge and blow through their row quotas; five "cool" rows
    run f4 storage, indifferent to user traffic.  The SB-level upper
    controller should cap exactly the hot rows (punish-offender-first)
    while storage rows ride through untouched.

    Scaled ~10x down from the paper's 1.25 MW SB.
    """
    rng_streams = RngStreams(seed)
    start_s = hours(11)
    engine = SimulationEngine(start_time=start_s)
    topology = _chain_topology(
        "altoona",
        [rpp_rating_w] * (hot_rows + cool_rows),
        sb_rating_w=sb_rating_w,
        msb_rating_w=megawatts(2.5),
    )
    plan_quotas(topology)
    fleet = Fleet()
    # The paper's SB rose to ~1.3x its normal *power* peak; demand
    # multipliers act on utilization, and the convex power curve plus
    # clipping at 100% means a 1.6x demand surge yields roughly that
    # 1.3x power excursion.
    outage = SiteOutageRecoveryEvent(hours(12), surge_multiplier=1.6)

    def make_hot(rng: np.random.Generator) -> StochasticWorkload:
        workload = WebWorkload(
            rng, shape=DiurnalShape(trough=0.45, peak=0.70)
        )
        workload.add_modifier(outage)
        return workload

    hot_row_devices: list[PowerDevice] = []
    for row in range(hot_rows):
        device = topology.device(f"rpp{row}")
        hot_row_devices.append(device)
        _attach_servers(
            device,
            fleet,
            f"web-r{row}",
            servers_per_hot_row,
            make_hot,
            rng_streams,
            turbo=True,
        )
    def make_cool(rng: np.random.Generator) -> StochasticWorkload:
        # Storage servers also feel the recovery (mass restarts), but
        # far less: their base demand is small and IO-bound.
        workload = StorageWorkload(rng, base_level=0.22)
        workload.add_modifier(outage)
        return workload

    cool_row_devices: list[PowerDevice] = []
    for row in range(hot_rows, hot_rows + cool_rows):
        device = topology.device(f"rpp{row}")
        cool_row_devices.append(device)
        _attach_servers(
            device,
            fleet,
            f"f4-r{row}",
            servers_per_cool_row,
            make_cool,
            rng_streams,
        )
    dynamo = Dynamo(
        engine, topology, fleet, rng_streams=rng_streams.fork("dynamo")
    )
    driver = FleetDriver(engine, topology, fleet, step_interval_s=3.0)
    return Scenario(
        name="altoona_outage_recovery",
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        extras={
            "outage": outage,
            "sb": topology.device("sb0"),
            "hot_rows": hot_row_devices,
            "cool_rows": cool_row_devices,
            "start_s": start_s,
        },
    )


# ---------------------------------------------------------------------------
# Figure 14 — Prineville Hadoop cluster with Turbo Boost
# ---------------------------------------------------------------------------

def prineville_hadoop_turbo(
    *,
    server_count: int = 300,
    rows: int = 4,
    sb_rating_w: float | None = None,
    turbo: bool = True,
    seed: int = 14,
) -> Scenario:
    """Hadoop cluster with Turbo on, living just under its SB limit.

    Power planning for this cluster did not account for Turbo Boost, so
    the SB rating is sized to the *non-Turbo* worst case plus a thin
    margin; with Turbo enabled, demand occasionally pokes above the
    capping threshold and Dynamo throttles a slice of the cluster
    (Figure 14 saw 7 events in 24 h, 600-900 servers each).
    """
    rng_streams = RngStreams(seed)
    engine = SimulationEngine(start_time=0.0)
    if sb_rating_w is None:
        # Mean hadoop draw is ~236 W/server with Turbo; put the limit a
        # few sigma above the mean so only correlated compute phases
        # cross the capping threshold — a handful of events per day, as
        # in Figure 14.
        sb_rating_w = server_count * 249.0
    rpp_rating_w = sb_rating_w / rows * 1.5
    topology = _chain_topology(
        "prineville-hadoop",
        [rpp_rating_w] * rows,
        sb_rating_w=sb_rating_w,
        msb_rating_w=megawatts(2.5),
    )
    plan_quotas(topology)
    fleet = Fleet()
    per_row = server_count // rows
    for row in range(rows):
        count = per_row if row < rows - 1 else server_count - per_row * (rows - 1)
        _attach_servers(
            topology.device(f"rpp{row}"),
            fleet,
            f"hadoop-r{row}",
            count,
            lambda rng: HadoopWorkload(rng),
            rng_streams,
            turbo=turbo,
        )
    dynamo = Dynamo(
        engine, topology, fleet, rng_streams=rng_streams.fork("dynamo")
    )
    driver = FleetDriver(engine, topology, fleet, step_interval_s=3.0)
    return Scenario(
        name="prineville_hadoop_turbo",
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        extras={"sb": topology.device("sb0"), "sb_rating_w": sb_rating_w},
    )


# ---------------------------------------------------------------------------
# Figures 15/16 — workload-aware capping on a mixed-service row
# ---------------------------------------------------------------------------

def mixed_service_row(
    *,
    web_count: int = 200,
    cache_count: int = 200,
    feed_count: int = 40,
    rpp_rating_w: float = kilowatts(190),
    seed: int = 15,
) -> Scenario:
    """One RPP carrying web + cache + feed servers (the paper's row).

    Capping is triggered *manually* during the experiment by imposing a
    contractual limit on the leaf controller (the paper lowered the
    capping threshold); the expected outcome is that web and feed servers
    get capped while the higher-priority cache servers are spared.
    """
    rng_streams = RngStreams(seed)
    start_s = hours(13) + 40 * 60
    engine = SimulationEngine(start_time=start_s)
    topology = _chain_topology(
        "mixed-row",
        [rpp_rating_w],
        sb_rating_w=megawatts(1.25),
        msb_rating_w=megawatts(2.5),
    )
    plan_quotas(topology)
    rpp = topology.device("rpp0")
    fleet = Fleet()
    web_servers = _attach_servers(
        rpp,
        fleet,
        "web",
        web_count,
        lambda rng: WebWorkload(rng, shape=DiurnalShape(trough=0.40, peak=0.65)),
        rng_streams,
    )
    cache_servers = _attach_servers(
        rpp,
        fleet,
        "cache",
        cache_count,
        lambda rng: CacheWorkload(rng),
        rng_streams,
    )
    feed_servers = _attach_servers(
        rpp,
        fleet,
        "feed",
        feed_count,
        lambda rng: NewsfeedWorkload(rng, shape=DiurnalShape(trough=0.40, peak=0.65)),
        rng_streams,
    )
    dynamo = Dynamo(
        engine, topology, fleet, rng_streams=rng_streams.fork("dynamo")
    )
    driver = FleetDriver(engine, topology, fleet, step_interval_s=1.0)
    return Scenario(
        name="mixed_service_row",
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        extras={
            "rpp": rpp,
            "web_servers": web_servers,
            "cache_servers": cache_servers,
            "feed_servers": feed_servers,
            "start_s": start_s,
        },
    )
