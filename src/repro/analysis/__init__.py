"""Experiment harness utilities: scenarios, runners, and reporting."""

from repro.analysis.experiment import ExperimentRun, run_for
from repro.analysis.report import Table, format_table
from repro.analysis.scenarios import (
    Scenario,
    ashburn_load_test,
    altoona_outage_recovery,
    mixed_service_row,
    prineville_hadoop_turbo,
)

__all__ = [
    "ExperimentRun",
    "Scenario",
    "Table",
    "altoona_outage_recovery",
    "ashburn_load_test",
    "format_table",
    "mixed_service_row",
    "prineville_hadoop_turbo",
    "run_for",
]
