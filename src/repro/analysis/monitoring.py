"""Monitoring reports: "monitoring is as important as capping".

Section VI: many power problems could have been avoided with close
power monitoring catching bottlenecks early.  This module turns a
running deployment into the operator-facing report that lesson calls
for: per-level utilization, devices nearest their limits, top consumers,
capping activity, and outstanding alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import Table
from repro.core.dynamo import Dynamo
from repro.errors import ConfigurationError
from repro.units import format_power


@dataclass(frozen=True)
class DeviceStatus:
    """One device's monitoring snapshot."""

    name: str
    level: str
    power_w: float
    rated_power_w: float
    capping_active: bool

    @property
    def utilization(self) -> float:
        """Power as a fraction of rating."""
        return self.power_w / self.rated_power_w


@dataclass
class MonitoringReport:
    """A point-in-time report over a Dynamo deployment."""

    time_s: float
    devices: list[DeviceStatus] = field(default_factory=list)
    capped_servers: int = 0
    total_servers: int = 0
    cap_events: int = 0
    uncap_events: int = 0
    alerts: int = 0
    top_consumers: list[tuple[str, str, float]] = field(default_factory=list)

    def hottest_devices(self, count: int = 5) -> list[DeviceStatus]:
        """Devices closest to their ratings."""
        return sorted(
            self.devices, key=lambda d: d.utilization, reverse=True
        )[:count]

    def utilization_by_level(self) -> dict[str, float]:
        """Mean utilization per hierarchy level."""
        by_level: dict[str, list[float]] = {}
        for device in self.devices:
            by_level.setdefault(device.level, []).append(device.utilization)
        return {
            level: sum(vals) / len(vals) for level, vals in by_level.items()
        }

    def render(self) -> str:
        """Human-readable report text."""
        lines = [f"Dynamo monitoring report @ t={self.time_s:.0f}s", ""]
        table = Table(
            "Hottest devices",
            ["device", "level", "power", "rating", "util_%", "capping"],
        )
        for d in self.hottest_devices():
            table.add_row(
                d.name,
                d.level,
                format_power(d.power_w),
                format_power(d.rated_power_w),
                100.0 * d.utilization,
                "ACTIVE" if d.capping_active else "-",
            )
        lines.append(table.render())
        lines.append("")
        levels = self.utilization_by_level()
        lines.append(
            "mean utilization: "
            + ", ".join(
                f"{lvl}={100 * u:.0f}%" for lvl, u in sorted(levels.items())
            )
        )
        lines.append(
            f"servers capped: {self.capped_servers}/{self.total_servers}; "
            f"cap events {self.cap_events}, uncap events {self.uncap_events}; "
            f"alerts {self.alerts}"
        )
        if self.top_consumers:
            top = ", ".join(
                f"{sid} ({svc}, {p:.0f} W)"
                for sid, svc, p in self.top_consumers
            )
            lines.append(f"top consumers: {top}")
        return "\n".join(lines)


def build_report(dynamo: Dynamo, *, top_n: int = 5) -> MonitoringReport:
    """Snapshot a running deployment into a report."""
    report = MonitoringReport(time_s=dynamo.engine.clock.now)
    for device in dynamo.topology.iter_devices():
        try:
            controller = dynamo.controller(device.name)
            capping = controller.band.capping_active
        except ConfigurationError:
            # Devices below the leaf level (skipped racks) have no
            # controller; they are monitored through their parents.
            capping = False
        report.devices.append(
            DeviceStatus(
                name=device.name,
                level=device.level.value,
                power_w=device.power_w(),
                rated_power_w=device.rated_power_w,
                capping_active=capping,
            )
        )
    report.total_servers = len(dynamo.fleet.servers)
    report.capped_servers = dynamo.capped_server_count()
    report.cap_events = dynamo.total_cap_events()
    report.uncap_events = dynamo.total_uncap_events()
    report.alerts = dynamo.alerts.count()
    consumers = sorted(
        dynamo.fleet.servers.values(), key=lambda s: s.power_w(), reverse=True
    )[:top_n]
    report.top_consumers = [
        (s.server_id, s.service, s.power_w()) for s in consumers
    ]
    return report
