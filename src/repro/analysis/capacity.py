"""Capacity analysis: stranded power, ghost space, and server packing.

The paper's motivation (Section I): conservative nameplate-based
planning strands power — data centers hit their power budgets long
before their space budgets, producing "ghost space".  With Dynamo as a
safety net, planners can admit servers against a high percentile of
*observed* demand instead of worst-case nameplate draw, recovering that
stranded capacity (Table I's "8% more servers").

This module quantifies it:

* :func:`stranded_power_report` — how much provisioned power a running
  datacenter leaves unused at each level;
* :class:`PackingPlanner` — how many servers fit under a budget per
  planning policy (nameplate / measured-peak / percentile).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.power.topology import PowerTopology
from repro.telemetry.timeseries import TimeSeries


@dataclass(frozen=True)
class StrandedPowerEntry:
    """One device's utilization snapshot."""

    device_name: str
    level: str
    rated_power_w: float
    peak_power_w: float
    stranded_w: float

    @property
    def utilization(self) -> float:
        """Peak draw as a fraction of rating."""
        return self.peak_power_w / self.rated_power_w


def stranded_power_report(
    topology: PowerTopology,
    device_series: dict[str, TimeSeries],
) -> list[StrandedPowerEntry]:
    """Stranded power per device, from recorded power series.

    ``device_series`` maps device names to their sampled power; devices
    without a series are skipped.  Stranded power is rating minus the
    observed peak — capacity paid for and never used.
    """
    report: list[StrandedPowerEntry] = []
    for device in topology.iter_devices():
        series = device_series.get(device.name)
        if series is None or len(series) == 0:
            continue
        peak = series.max()
        report.append(
            StrandedPowerEntry(
                device_name=device.name,
                level=device.level.value,
                rated_power_w=device.rated_power_w,
                peak_power_w=peak,
                stranded_w=max(0.0, device.rated_power_w - peak),
            )
        )
    return report


def total_stranded_w(report: list[StrandedPowerEntry], level: str) -> float:
    """Total stranded power across one hierarchy level."""
    return sum(e.stranded_w for e in report if e.level == level)


class PackingPlanner:
    """How many servers fit under a power budget, by planning policy.

    Policies:

    * ``nameplate`` — divide by worst-case (Turbo) peak power: the
      conservative pre-Dynamo rule.  Always safe, wastes the most.
    * ``measured_peak`` — divide by the maximum power ever observed for
      the server class.
    * ``percentile`` — divide by the p-th percentile of observed power;
      the residual tail risk is what Dynamo's capping absorbs.
    """

    def __init__(
        self,
        budget_w: float,
        *,
        nameplate_w: float,
        observed_powers_w,
    ) -> None:
        if budget_w <= 0:
            raise ConfigurationError("budget must be positive")
        if nameplate_w <= 0:
            raise ConfigurationError("nameplate power must be positive")
        observed = np.asarray(observed_powers_w, dtype=float)
        if observed.size == 0:
            raise ConfigurationError("need observed power samples")
        self.budget_w = budget_w
        self.nameplate_w = nameplate_w
        self._observed = observed

    def servers_nameplate(self) -> int:
        """Packing under worst-case planning."""
        return int(self.budget_w // self.nameplate_w)

    def servers_measured_peak(self) -> int:
        """Packing against the observed maximum."""
        return int(self.budget_w // float(self._observed.max()))

    def servers_percentile(self, q: float = 99.0) -> int:
        """Packing against the q-th percentile of observed power."""
        if not 0.0 < q <= 100.0:
            raise ConfigurationError("percentile must be in (0, 100]")
        per_server = float(np.percentile(self._observed, q))
        return int(self.budget_w // per_server)

    def gain_fraction(self, q: float = 99.0) -> float:
        """Extra servers admitted by percentile planning vs nameplate."""
        base = self.servers_nameplate()
        if base == 0:
            raise ConfigurationError("budget too small for even one server")
        return self.servers_percentile(q) / base - 1.0
