"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; this module renders them readably without any plotting
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class Table:
    """A titled table of string-convertible cells."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append a row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(cells)} cells, table has {len(self.columns)} "
                "columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render to aligned plain text."""
        return format_table(self)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(table: Table) -> str:
    """Render a :class:`Table` with aligned columns and a title rule."""
    str_rows = [[_fmt(c) for c in row] for row in table.rows]
    widths = [len(c) for c in table.columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [table.title, "=" * max(len(table.title), 1)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(table.columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
