"""Topology container and validation for the power delivery tree."""

from __future__ import annotations

from typing import Iterator

from repro.errors import TopologyError
from repro.power.device import DeviceLevel, PowerDevice


class PowerTopology:
    """A validated forest of power devices rooted at MSBs.

    A datacenter has several MSB roots (the utility feed itself is not a
    protected device in our model).  The topology offers name lookup,
    level filtering, and structural validation.
    """

    def __init__(self, name: str, roots: list[PowerDevice]) -> None:
        self.name = name
        self.roots = list(roots)
        self._by_name: dict[str, PowerDevice] = {}
        self._index()
        self.validate()

    def _index(self) -> None:
        self._by_name.clear()
        for root in self.roots:
            for device in root.iter_subtree():
                if device.name in self._by_name:
                    raise TopologyError(f"duplicate device name {device.name!r}")
                self._by_name[device.name] = device

    def reindex(self) -> None:
        """Rebuild the name index after device renames."""
        self._index()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def device(self, name: str) -> PowerDevice:
        """Look up a device by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(f"no device named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def iter_devices(self) -> Iterator[PowerDevice]:
        """Yield every device in the forest, pre-order per root."""
        for root in self.roots:
            yield from root.iter_subtree()

    def devices_at_level(self, level: DeviceLevel) -> list[PowerDevice]:
        """All devices at one hierarchy level."""
        return [d for d in self.iter_devices() if d.level is level]

    def iter_load_ids(self) -> Iterator[str]:
        """All load (server/switch) identifiers in the datacenter."""
        for root in self.roots:
            yield from root.iter_load_ids()

    @property
    def device_count(self) -> int:
        """Total number of power devices."""
        return len(self._by_name)

    # ------------------------------------------------------------------
    # Validation and health
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise TopologyError on violation."""
        for root in self.roots:
            if root.parent is not None:
                raise TopologyError(f"root {root.name!r} has a parent")
            if root.level is not DeviceLevel.MSB:
                raise TopologyError(
                    f"root {root.name!r} must be an MSB, got {root.level.value}"
                )
        for device in self.iter_devices():
            for child in device.children:
                if child.parent is not device:
                    raise TopologyError(
                        f"child {child.name!r} does not point back to "
                        f"{device.name!r}"
                    )

    def total_power_w(self) -> float:
        """Instantaneous datacenter power draw."""
        return sum(root.power_w() for root in self.roots)

    def tripped_devices(self) -> list[PowerDevice]:
        """Devices whose breakers have tripped."""
        return [d for d in self.iter_devices() if d.breaker.tripped]

    def observe_breakers(self, dt_s: float, now_s: float) -> list[PowerDevice]:
        """Advance every breaker's thermal integration by ``dt_s``.

        Returns the devices that tripped during this step.  Power is
        evaluated bottom-up *before* any new trips are applied so that a
        parent sees its children's draw in the same instant.
        """
        draws = {d.name: d.power_w() for d in self.iter_devices()}
        newly_tripped: list[PowerDevice] = []
        for device in self.iter_devices():
            if device.breaker.tripped:
                continue
            if device.breaker.observe(draws[device.name], dt_s, now_s):
                newly_tripped.append(device)
        return newly_tripped

    def __repr__(self) -> str:
        return (
            f"PowerTopology({self.name!r}, roots={len(self.roots)}, "
            f"devices={self.device_count})"
        )
