"""Factory for OCP-style datacenter power topologies (Figure 2).

The default spec reproduces the paper's numbers: a 30 MW utility feed,
MSBs rated 2.5 MW each, up to four 1.25 MW SBs per MSB, 190 KW RPPs at the
end of each row, and 12.6 KW racks holding 9-42 servers.

The builder produces only the *device* tree; servers are attached later by
the fleet builder in :mod:`repro.server.fleet`, which needs workload and
platform information the power package should not know about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.device import DeviceLevel, PowerDevice
from repro.power.topology import PowerTopology
from repro.units import kilowatts, megawatts


@dataclass(frozen=True)
class DataCenterSpec:
    """Shape and ratings of a datacenter power topology.

    Defaults follow the OCP specification cited in the paper.  ``scale``
    multiplies the fan-out counts uniformly, letting tests run a tiny
    topology with the same shape as the full 30 MW building.
    """

    name: str = "dc1"
    msb_count: int = 4
    suite_count: int = 4
    sbs_per_msb: int = 4
    rpps_per_sb: int = 6
    racks_per_rpp: int = 15
    msb_rating_w: float = megawatts(2.5)
    sb_rating_w: float = megawatts(1.25)
    rpp_rating_w: float = kilowatts(190)
    rack_rating_w: float = kilowatts(12.6)
    include_racks: bool = True

    def __post_init__(self) -> None:
        counts = (
            self.msb_count,
            self.suite_count,
            self.sbs_per_msb,
            self.rpps_per_sb,
        )
        if any(c <= 0 for c in counts):
            raise ConfigurationError("all fan-out counts must be positive")
        if self.include_racks and self.racks_per_rpp <= 0:
            raise ConfigurationError("racks_per_rpp must be positive")
        ratings = (
            self.msb_rating_w,
            self.sb_rating_w,
            self.rpp_rating_w,
            self.rack_rating_w,
        )
        if any(r <= 0 for r in ratings):
            raise ConfigurationError("all ratings must be positive")

    @property
    def rack_count(self) -> int:
        """Total racks in the building (0 when racks are modelled away)."""
        if not self.include_racks:
            return 0
        return (
            self.msb_count
            * self.sbs_per_msb
            * self.rpps_per_sb
            * self.racks_per_rpp
        )

    @property
    def rpp_count(self) -> int:
        """Total RPPs in the building."""
        return self.msb_count * self.sbs_per_msb * self.rpps_per_sb


#: A deliberately small topology with the paper's shape, for tests and
#: examples that don't need tens of thousands of servers.
SMALL_SPEC = DataCenterSpec(
    name="dc-small",
    msb_count=1,
    sbs_per_msb=2,
    rpps_per_sb=2,
    racks_per_rpp=3,
)


def build_datacenter(spec: DataCenterSpec | None = None) -> PowerTopology:
    """Construct the power device tree described by ``spec``.

    Device names encode their position: ``msb0``, ``msb0/sb1``
    (named ``sb0.1``), ``rpp0.1.2``, ``rack0.1.2.3``.
    """
    spec = spec or DataCenterSpec()
    roots: list[PowerDevice] = []
    for m in range(spec.msb_count):
        msb = PowerDevice(f"msb{m}", DeviceLevel.MSB, spec.msb_rating_w)
        # MSBs are distributed round-robin across suites (rooms); every
        # device inherits its MSB's suite below.
        suite = m % spec.suite_count
        for s in range(spec.sbs_per_msb):
            sb = PowerDevice(f"sb{m}.{s}", DeviceLevel.SB, spec.sb_rating_w)
            msb.add_child(sb)
            for r in range(spec.rpps_per_sb):
                rpp = PowerDevice(
                    f"rpp{m}.{s}.{r}", DeviceLevel.RPP, spec.rpp_rating_w
                )
                sb.add_child(rpp)
                if spec.include_racks:
                    for k in range(spec.racks_per_rpp):
                        rack = PowerDevice(
                            f"rack{m}.{s}.{r}.{k}",
                            DeviceLevel.RACK,
                            spec.rack_rating_w,
                        )
                        rpp.add_child(rack)
        for device in msb.iter_subtree():
            device.suite = suite
        roots.append(msb)
    return PowerTopology(spec.name, roots)
