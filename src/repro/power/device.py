"""Power devices: the nodes of the power delivery hierarchy.

A :class:`PowerDevice` is anything in Figure 2 that has a rating and a
breaker: MSB, SB, RPP, rack.  Devices form a tree; leaves of the *device*
tree host servers (attached via ``server_loads``, a callable registry so
the power package does not depend on the server package).
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator

from repro.errors import ConfigurationError, TopologyError
from repro.power.breaker import STANDARD_CURVES, BreakerCurve, CircuitBreaker
from repro.power.loss import PowerLossModel


class DeviceLevel(enum.Enum):
    """Level of a device in the OCP power delivery hierarchy."""

    MSB = "msb"
    SB = "sb"
    RPP = "rpp"
    RACK = "rack"

    @property
    def breaker_curve(self) -> BreakerCurve:
        """The Figure-3 trip curve class for this level."""
        return STANDARD_CURVES[self.value]

    @property
    def depth(self) -> int:
        """0 for MSB down to 3 for rack."""
        return {"msb": 0, "sb": 1, "rpp": 2, "rack": 3}[self.value]


#: A load source reports its instantaneous power draw in watts.
LoadSource = Callable[[], float]


class PowerDevice:
    """One node in the power delivery tree.

    Power draw is computed bottom-up: a device's draw is the sum of its
    children's draws plus its directly attached loads (servers, top-of-rack
    switches) plus distribution losses, if a loss model is attached.
    """

    #: Fast direct-load sum installed by the vectorized fleet backend
    #: (an indexed reduction over the packed power array).  ``None``
    #: means the scalar generator sum below; membership changes clear
    #: the cache and notify the hook so it can be reinstalled.
    _load_power_cache: Callable[[], float] | None = None
    _load_membership_hook: Callable[["PowerDevice"], None] | None = None

    def __init__(
        self,
        name: str,
        level: DeviceLevel,
        rated_power_w: float,
        *,
        breaker_curve: BreakerCurve | None = None,
    ) -> None:
        if rated_power_w <= 0:
            raise ConfigurationError(f"device {name!r} rating must be positive")
        self.name = name
        self.level = level
        self.rated_power_w = float(rated_power_w)
        self.breaker = CircuitBreaker(
            rated_power_w, breaker_curve or level.breaker_curve
        )
        self.parent: PowerDevice | None = None
        self.children: list[PowerDevice] = []
        self._loads: dict[str, LoadSource] = {}
        #: Planned peak power (the oversubscription quota).  Set by
        #: :func:`repro.power.oversubscription.plan_quotas`; defaults to
        #: the physical rating.
        self.power_quota_w: float = float(rated_power_w)
        #: Non-server overhead power always present (e.g. network gear).
        self.fixed_overhead_w: float = 0.0
        #: Optional distribution-loss model: the breaker sees the
        #: subtree draw inflated by conversion/distribution losses.
        self.loss_model: PowerLossModel | None = None
        #: Suite (room) this device belongs to; a datacenter typically
        #: spans four suites with up to four MSBs each (Section II-A).
        self.suite: int | None = None

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------

    def add_child(self, child: "PowerDevice") -> None:
        """Attach a downstream device."""
        if child.parent is not None:
            raise TopologyError(
                f"device {child.name!r} already has parent {child.parent.name!r}"
            )
        if child is self:
            raise TopologyError("a device cannot be its own child")
        if child.level.depth <= self.level.depth:
            raise TopologyError(
                f"cannot attach {child.level.value!r} under {self.level.value!r}"
            )
        child.parent = self
        self.children.append(child)

    def attach_load(self, load_id: str, source: LoadSource) -> None:
        """Attach a direct load (a server or switch) to this device."""
        if load_id in self._loads:
            raise TopologyError(f"load {load_id!r} already attached to {self.name!r}")
        self._loads[load_id] = source
        self._load_power_cache = None
        if self._load_membership_hook is not None:
            self._load_membership_hook(self)

    def detach_load(self, load_id: str) -> None:
        """Remove a direct load (e.g. a decommissioned server)."""
        if load_id not in self._loads:
            raise TopologyError(f"load {load_id!r} not attached to {self.name!r}")
        del self._loads[load_id]
        self._load_power_cache = None
        if self._load_membership_hook is not None:
            self._load_membership_hook(self)

    @property
    def load_ids(self) -> list[str]:
        """Identifiers of directly attached loads."""
        return list(self._loads)

    # ------------------------------------------------------------------
    # Power computation
    # ------------------------------------------------------------------

    def direct_load_power_w(self) -> float:
        """Instantaneous power of loads attached directly to this device."""
        cache = self._load_power_cache
        if cache is not None:
            return cache()
        return sum(source() for source in self._loads.values())

    def power_w(self) -> float:
        """Instantaneous total power draw of this device's subtree.

        A device whose breaker has tripped draws nothing: its subtree is
        offline.  When a loss model is attached, the reported draw is
        what the breaker sees — downstream power inflated by
        distribution and conversion losses.
        """
        if self.breaker.tripped:
            return 0.0
        total = self.fixed_overhead_w + self.direct_load_power_w()
        total += sum(child.power_w() for child in self.children)
        if self.loss_model is not None:
            total = self.loss_model.upstream_power_w(total)
        return total

    def utilization(self) -> float:
        """Current power draw as a fraction of the physical rating."""
        return self.power_w() / self.rated_power_w

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state: rating, quota, breaker thermals.

        Structure (children, loads, loss model) is rebuilt by the world
        recipe, not captured here.
        """
        return {
            "rated_power_w": self.rated_power_w,
            "power_quota_w": self.power_quota_w,
            "fixed_overhead_w": self.fixed_overhead_w,
            "breaker": self.breaker.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore mutable device state in place."""
        self.rated_power_w = float(state["rated_power_w"])
        self.power_quota_w = float(state["power_quota_w"])
        self.fixed_overhead_w = float(state["fixed_overhead_w"])
        self.breaker.restore_state(state["breaker"])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def iter_subtree(self) -> Iterator["PowerDevice"]:
        """Yield this device and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def iter_leaf_devices(self) -> Iterator["PowerDevice"]:
        """Yield subtree devices with no device children (rack or RPP)."""
        for device in self.iter_subtree():
            if not device.children:
                yield device

    def iter_load_ids(self) -> Iterator[str]:
        """Yield all load identifiers in the subtree."""
        for device in self.iter_subtree():
            yield from device.load_ids

    def path(self) -> str:
        """Slash-separated path from the root to this device."""
        parts: list[str] = []
        node: PowerDevice | None = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def __repr__(self) -> str:
        return (
            f"PowerDevice({self.name!r}, {self.level.value}, "
            f"rated={self.rated_power_w:.0f}W, "
            f"children={len(self.children)}, loads={len(self._loads)})"
        )
