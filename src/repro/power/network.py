"""Network devices: monitored by Dynamo, not controlled.

Section III-E: network devices consume a low single-digit percentage of
datacenter power and do not (yet) support RAPL-like capping, so Dynamo
*monitors* their power and budgets for them separately.  If future
hardware supports capping, the same agent/controller path applies.

:class:`NetworkSwitch` models a top-of-rack or fabric switch: a fixed
chassis power plus per-active-port power plus a small traffic-dependent
term.  Switches attach to power devices as ordinary loads and to leaf
controllers as monitored (non-server) components.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class NetworkSwitch:
    """A switch whose power is read (or estimated) but never capped."""

    def __init__(
        self,
        switch_id: str,
        *,
        chassis_power_w: float = 120.0,
        port_power_w: float = 1.5,
        port_count: int = 48,
        active_ports: int | None = None,
        traffic_power_w: float = 30.0,
        has_power_sensor: bool = False,
    ) -> None:
        if chassis_power_w < 0 or port_power_w < 0 or traffic_power_w < 0:
            raise ConfigurationError("switch power terms cannot be negative")
        if port_count <= 0:
            raise ConfigurationError("switch needs at least one port")
        self.switch_id = switch_id
        self.chassis_power_w = chassis_power_w
        self.port_power_w = port_power_w
        self.port_count = port_count
        self.active_ports = port_count if active_ports is None else active_ports
        if not 0 <= self.active_ports <= port_count:
            raise ConfigurationError("active ports out of range")
        self.traffic_power_w = traffic_power_w
        self.has_power_sensor = has_power_sensor
        self._traffic_load = 0.5

    def set_traffic_load(self, load: float) -> None:
        """Set relative traffic load in [0, 1]."""
        if not 0.0 <= load <= 1.0:
            raise ConfigurationError("traffic load must be in [0, 1]")
        self._traffic_load = load

    def power_w(self) -> float:
        """Instantaneous switch power draw."""
        return (
            self.chassis_power_w
            + self.port_power_w * self.active_ports
            + self.traffic_power_w * self._traffic_load
        )

    def nameplate_power_w(self) -> float:
        """Worst-case power for budgeting (all ports, full traffic)."""
        return (
            self.chassis_power_w
            + self.port_power_w * self.port_count
            + self.traffic_power_w
        )

    def __repr__(self) -> str:
        return (
            f"NetworkSwitch({self.switch_id!r}, {self.power_w():.0f}W, "
            f"{self.active_ports}/{self.port_count} ports)"
        )


def network_power_budget_w(switches: list[NetworkSwitch]) -> float:
    """Total nameplate budget to reserve for a set of switches.

    Dynamo budgets network power separately rather than capping it; the
    reservation uses nameplate (worst-case) draw because there is no
    control mechanism to fall back on.
    """
    return sum(s.nameplate_power_w() for s in switches)
