"""DCUPS: in-row uninterruptible power supplies (Figure 2).

Each RPP feeds a set of DC UPS units; each DCUPS provides **90 seconds**
of power backup to six racks — enough to ride through the gap between a
utility outage and the standby generator picking up the MSB.

The model tracks stored energy against the protected load: during a
utility outage the UPS discharges (and its racks stay up until the
battery empties); on normal power it recharges.  A
:class:`UtilityOutageScenario` sequences outage -> UPS ride-through ->
generator pickup, the event chain the datacenter design assumes.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError


class UpsState(enum.Enum):
    """Operating state of a DCUPS unit."""

    ONLINE = "online"  # utility power present, battery charged/charging
    DISCHARGING = "discharging"  # carrying the load on battery
    DEPLETED = "depleted"  # battery empty, load dropped


class Dcups:
    """One DC UPS unit backing a group of racks.

    Capacity is expressed as *ride-through seconds at rated load* —
    the spec's 90 s.  Actual ride-through scales inversely with the
    protected load: a half-loaded UPS lasts twice as long.
    """

    def __init__(
        self,
        ups_id: str,
        *,
        rated_load_w: float,
        ride_through_s: float = 90.0,
        recharge_rate_fraction_per_s: float = 1.0 / 1800.0,
    ) -> None:
        if rated_load_w <= 0:
            raise ConfigurationError("rated load must be positive")
        if ride_through_s <= 0:
            raise ConfigurationError("ride-through must be positive")
        self.ups_id = ups_id
        self.rated_load_w = rated_load_w
        self.capacity_j = rated_load_w * ride_through_s
        self._stored_j = self.capacity_j
        self._recharge_rate = recharge_rate_fraction_per_s
        self._utility_present = True
        self.state = UpsState.ONLINE

    @property
    def stored_fraction(self) -> float:
        """Battery charge in [0, 1]."""
        return self._stored_j / self.capacity_j

    @property
    def carrying_load(self) -> bool:
        """Whether the racks behind this UPS currently have power."""
        if self._utility_present:
            return True
        return self.state is UpsState.DISCHARGING

    def utility_lost(self) -> None:
        """Utility feed drops; the UPS picks up the load."""
        self._utility_present = False
        if self._stored_j > 0.0:
            self.state = UpsState.DISCHARGING
        else:
            self.state = UpsState.DEPLETED

    def utility_restored(self) -> None:
        """Utility (or generator) power returns; recharge begins."""
        self._utility_present = True
        self.state = UpsState.ONLINE

    def step(self, load_w: float, dt_s: float) -> bool:
        """Advance by ``dt_s`` carrying ``load_w``; returns load-powered.

        Discharges on battery when the utility is out, recharges when
        it is present.
        """
        if load_w < 0 or dt_s < 0:
            raise ConfigurationError("load and dt must be non-negative")
        if self._utility_present:
            self._stored_j = min(
                self.capacity_j,
                self._stored_j + self.capacity_j * self._recharge_rate * dt_s,
            )
            return True
        drawn = load_w * dt_s
        if drawn <= self._stored_j:
            self._stored_j -= drawn
            self.state = UpsState.DISCHARGING
            return True
        self._stored_j = 0.0
        self.state = UpsState.DEPLETED
        return False

    def ride_through_remaining_s(self, load_w: float) -> float:
        """Seconds of backup left at ``load_w``."""
        if load_w <= 0:
            return float("inf")
        return self._stored_j / load_w

    def __repr__(self) -> str:
        return (
            f"Dcups({self.ups_id!r}, {self.state.value}, "
            f"charge={100 * self.stored_fraction:.0f}%)"
        )


class UtilityOutageScenario:
    """Sequences a utility outage with generator pickup.

    The paper's MSBs each have a standby generator; the DCUPS bridges
    the start-up gap.  ``generator_start_s`` is how long after the
    outage the generator carries the load (typically 10-60 s; the 90 s
    UPS spec leaves margin).
    """

    def __init__(
        self,
        ups_units: list[Dcups],
        *,
        outage_at_s: float,
        generator_start_s: float = 30.0,
    ) -> None:
        if generator_start_s < 0:
            raise ConfigurationError("generator start time cannot be negative")
        self.ups_units = list(ups_units)
        self.outage_at_s = outage_at_s
        self.generator_online_at_s = outage_at_s + generator_start_s
        self._outage_applied = False
        self._generator_applied = False

    def advance(self, now_s: float) -> None:
        """Apply the outage/pickup transitions due by ``now_s``."""
        if not self._outage_applied and now_s >= self.outage_at_s:
            for ups in self.ups_units:
                ups.utility_lost()
            self._outage_applied = True
        if not self._generator_applied and now_s >= self.generator_online_at_s:
            for ups in self.ups_units:
                ups.utility_restored()
            self._generator_applied = True

    @property
    def utility_out(self) -> bool:
        """Whether the load is currently riding on UPS batteries."""
        return self._outage_applied and not self._generator_applied
