"""Power quota planning and oversubscription accounting.

Power is oversubscribed at every level of the hierarchy: an MSB rated at
2.5 MW feeds four SBs that can draw 5 MW at peak.  The *quota* of a device
is its planned peak power — the budget capacity planning assigned to it.
The punish-offender-first algorithm (Section III-D) compares a child's
actual draw against its quota to decide who absorbs a power cut.

:func:`plan_quotas` distributes each parent's rating across its children in
proportion to the children's ratings, scaled by an oversubscription ratio:
with ratio 1.0 the children's quotas sum exactly to the parent rating; with
ratio 1.2 the planner deliberately admits 20% more planned peak than the
parent can supply, betting on statistical multiplexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.power.device import PowerDevice
from repro.power.topology import PowerTopology


@dataclass
class OversubscriptionPlan:
    """Result of quota planning over a topology."""

    ratio: float
    quotas_w: dict[str, float] = field(default_factory=dict)

    def quota(self, device_name: str) -> float:
        """Quota assigned to a device, in watts."""
        return self.quotas_w[device_name]


def plan_quotas(
    topology: PowerTopology,
    *,
    ratio: float = 1.0,
    apply: bool = True,
) -> OversubscriptionPlan:
    """Assign power quotas down the hierarchy.

    Each root keeps its physical rating as quota.  Each parent's quota is
    split among children proportionally to child ratings and scaled by
    ``ratio``; a child's quota is additionally clamped to its own physical
    rating (a quota above the rating would be meaningless — the breaker
    binds first).

    Args:
        topology: the power delivery tree.
        ratio: oversubscription factor (>= 1.0 admits more planned peak
            than the parent rating; < 1.0 is conservative under-planning).
        apply: when True, write quotas onto ``device.power_quota_w``.

    Returns:
        The plan with one quota per device.
    """
    if ratio <= 0:
        raise ConfigurationError("oversubscription ratio must be positive")
    plan = OversubscriptionPlan(ratio=ratio)
    for root in topology.roots:
        plan.quotas_w[root.name] = root.rated_power_w
        _plan_subtree(root, root.rated_power_w, ratio, plan)
    if apply:
        for name, quota in plan.quotas_w.items():
            topology.device(name).power_quota_w = quota
    return plan


def _plan_subtree(
    parent: PowerDevice,
    parent_quota_w: float,
    ratio: float,
    plan: OversubscriptionPlan,
) -> None:
    if not parent.children:
        return
    total_child_rating = sum(c.rated_power_w for c in parent.children)
    budget = parent_quota_w * ratio
    for child in parent.children:
        share = child.rated_power_w / total_child_rating
        quota = min(budget * share, child.rated_power_w)
        plan.quotas_w[child.name] = quota
        _plan_subtree(child, quota, ratio, plan)


def headroom_w(device: PowerDevice) -> float:
    """Remaining power before the device hits its physical rating."""
    return device.rated_power_w - device.power_w()


def oversubscription_at(device: PowerDevice) -> float:
    """Ratio of children's summed ratings to the device's own rating.

    1.0 means no oversubscription; the paper's defaults give e.g. an MSB
    ratio of (4 x 1.25 MW) / 2.5 MW = 2.0.
    """
    if not device.children:
        return 1.0
    return sum(c.rated_power_w for c in device.children) / device.rated_power_w
