"""Circuit breakers with inverse-time trip characteristics.

The paper measured breaker trip time as a function of power overdraw
(Figure 3) and found two properties this module reproduces:

1. A breaker trips only when (a) power exceeds its rating and (b) the
   overdraw is *sustained* for a period inversely related to its size.
   Large spikes trip quickly; small overdraws are tolerated for minutes.
2. Lower-level devices tolerate relatively more overdraw than higher-level
   ones: an RPP sustains a 40% overdraw for ~60 s while an MSB sustains
   only ~15% for the same period; RPPs and racks sustain 10% overdraw for
   ~17 minutes while an MSB trips on ~5% overdraw in as little as 2 min.

We model the trip boundary with the classic inverse-time law::

    trip_time(r) = k / (r - 1) ** exponent        for r > 1

where ``r`` is power normalized to the breaker rating.  The per-level
constants below are fit to the anchor points the paper reports.

To handle time-varying load, each breaker integrates *thermal stress*: in a
step of ``dt`` seconds at overdraw ratio ``r`` it accumulates
``dt / trip_time(r)`` and trips when the accumulator reaches 1.  Under a
constant overdraw this reduces exactly to tripping at ``trip_time(r)``;
under fluctuating load it approximates the thermal memory of a real
breaker.  When load returns below the rating, stress decays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BreakerCurve:
    """Inverse-time trip curve parameters for one device class.

    Attributes:
        k: scale constant of the inverse-time law, in seconds.
        exponent: how sharply trip time falls with overdraw.
        instant_trip_ratio: overdraw ratio at which the magnetic element
            trips effectively instantly (one integration step).
    """

    k: float
    exponent: float
    instant_trip_ratio: float = 3.0

    def __post_init__(self) -> None:
        if self.k <= 0 or self.exponent <= 0:
            raise ConfigurationError("breaker curve constants must be positive")
        if self.instant_trip_ratio <= 1.0:
            raise ConfigurationError("instant trip ratio must exceed 1.0")

    def trip_time(self, ratio: float) -> float:
        """Seconds of sustained overdraw at ``ratio`` before tripping.

        Returns ``inf`` for ratios at or below 1.0 (no overdraw).
        """
        if ratio <= 1.0:
            return math.inf
        if ratio >= self.instant_trip_ratio:
            return 0.0
        return self.k / (ratio - 1.0) ** self.exponent


def _fit_curve(
    anchor_a: tuple[float, float],
    anchor_b: tuple[float, float],
    *,
    instant_trip_ratio: float = 3.0,
) -> BreakerCurve:
    """Fit (k, exponent) through two (ratio, trip_time) anchor points."""
    (ratio_a, time_a), (ratio_b, time_b) = anchor_a, anchor_b
    exponent = math.log(time_a / time_b) / math.log(
        (ratio_b - 1.0) / (ratio_a - 1.0)
    )
    k = time_a * (ratio_a - 1.0) ** exponent
    return BreakerCurve(
        k=k, exponent=exponent, instant_trip_ratio=instant_trip_ratio
    )


# Anchor points from Figure 3 and its discussion in Section II-A:
#   - RPPs and racks sustain 10% overdraw for ~17 min (1020 s)
#   - an RPP sustains 40% overdraw for ~60 s
#   - an MSB sustains 15% overdraw for ~60 s
#   - an MSB trips on ~5% overdraw in as little as 2 min (120 s)
#   - SBs fall between RPPs and MSBs.
# Instant (magnetic) trip points descend with hierarchy level: the
# higher-level breakers both ride their thermal curves less tolerantly
# and let their magnetic elements engage at smaller overloads, keeping
# the level ordering of Figure 3 across the whole overdraw range.
STANDARD_CURVES: dict[str, BreakerCurve] = {
    "rack": _fit_curve((1.10, 1100.0), (1.40, 70.0), instant_trip_ratio=3.0),
    "rpp": _fit_curve((1.10, 1020.0), (1.40, 60.0), instant_trip_ratio=3.0),
    "sb": _fit_curve((1.08, 600.0), (1.25, 60.0), instant_trip_ratio=2.2),
    "msb": _fit_curve((1.05, 120.0), (1.15, 60.0), instant_trip_ratio=1.8),
}


class CircuitBreaker:
    """A breaker protecting one power device, with thermal memory.

    Call :meth:`observe` once per simulation step with the instantaneous
    power draw; it integrates thermal stress and reports whether the
    breaker has tripped.  A tripped breaker stays tripped until
    :meth:`reset`.
    """

    #: Fraction of accumulated stress shed per second once load drops
    #: below the rating (thermal cooling).
    COOLING_RATE_PER_S = 0.01

    def __init__(self, rated_power_w: float, curve: BreakerCurve) -> None:
        if rated_power_w <= 0:
            raise ConfigurationError("breaker rating must be positive")
        self.rated_power_w = float(rated_power_w)
        self.curve = curve
        self._stress = 0.0
        self._tripped = False
        self._trip_time: float | None = None

    @property
    def tripped(self) -> bool:
        """Whether the breaker has tripped."""
        return self._tripped

    @property
    def trip_time(self) -> float | None:
        """Simulation time of the trip, or None if never tripped."""
        return self._trip_time

    @property
    def stress(self) -> float:
        """Accumulated thermal stress in [0, 1]; trips at 1."""
        return self._stress

    def time_to_trip(self, power_w: float) -> float:
        """Seconds until trip if ``power_w`` were held constant from now."""
        ratio = power_w / self.rated_power_w
        horizon = self.curve.trip_time(ratio)
        if math.isinf(horizon):
            return math.inf
        return max(0.0, (1.0 - self._stress) * horizon)

    def observe(self, power_w: float, dt_s: float, now_s: float) -> bool:
        """Integrate ``dt_s`` seconds at ``power_w``; return tripped state."""
        if self._tripped:
            return True
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        ratio = power_w / self.rated_power_w
        if ratio > 1.0:
            horizon = self.curve.trip_time(ratio)
            if horizon <= 0.0:
                self._stress = 1.0
            else:
                self._stress += dt_s / horizon
        else:
            decay = math.exp(-self.COOLING_RATE_PER_S * dt_s)
            self._stress *= decay
        if self._stress >= 1.0:
            self._stress = 1.0
            self._tripped = True
            self._trip_time = now_s
        return self._tripped

    def reset(self) -> None:
        """Reset after a trip (manual re-closing of the breaker)."""
        self._stress = 0.0
        self._tripped = False
        self._trip_time = None

    def snapshot_state(self) -> dict:
        """Serializable thermal state plus the (deratable) rating."""
        return {
            "rated_power_w": self.rated_power_w,
            "stress": self._stress,
            "tripped": self._tripped,
            "trip_time": self._trip_time,
        }

    def restore_state(self, state: dict) -> None:
        """Restore thermal accumulator, trip latch, and rating in place."""
        self.rated_power_w = float(state["rated_power_w"])
        self._stress = float(state["stress"])
        self._tripped = bool(state["tripped"])
        trip = state["trip_time"]
        self._trip_time = None if trip is None else float(trip)

    def __repr__(self) -> str:
        state = "TRIPPED" if self._tripped else f"stress={self._stress:.2f}"
        return f"CircuitBreaker(rated={self.rated_power_w:.0f}W, {state})"
