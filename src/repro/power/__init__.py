"""Power delivery substrate: devices, breakers, and datacenter topology.

Models the Open Compute Project power hierarchy the paper describes
(Figure 2): Utility 30 MW -> MSB 2.5 MW -> SB 1.25 MW -> RPP 190 KW ->
Rack 12.6 KW -> servers, with a circuit breaker at every level whose trip
time follows the inverse-time curves of Figure 3.
"""

from repro.power.breaker import BreakerCurve, CircuitBreaker, STANDARD_CURVES
from repro.power.builder import DataCenterSpec, build_datacenter
from repro.power.device import DeviceLevel, PowerDevice
from repro.power.loss import PowerLossModel
from repro.power.oversubscription import OversubscriptionPlan, plan_quotas
from repro.power.topology import PowerTopology

__all__ = [
    "BreakerCurve",
    "CircuitBreaker",
    "DataCenterSpec",
    "DeviceLevel",
    "OversubscriptionPlan",
    "PowerDevice",
    "PowerLossModel",
    "PowerTopology",
    "STANDARD_CURVES",
    "build_datacenter",
    "plan_quotas",
]
