"""Power distribution loss model.

Server power sensors report the server's own draw; the breaker upstream
sees that draw plus AC-DC conversion and distribution losses.  The paper's
agents report a breakdown including "AC-DC power loss"; Dynamo's
aggregation must account for the gap when validating against breaker
readings.  We model loss as a fixed efficiency plus a small constant
overhead per device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerLossModel:
    """Distribution loss between servers and an upstream breaker.

    ``upstream = downstream / efficiency + overhead_w``
    """

    efficiency: float = 0.96
    overhead_w: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if self.overhead_w < 0:
            raise ConfigurationError("overhead must be non-negative")

    def upstream_power_w(self, downstream_power_w: float) -> float:
        """Power seen upstream given aggregate downstream draw."""
        if downstream_power_w <= 0.0:
            return max(0.0, self.overhead_w)
        return downstream_power_w / self.efficiency + self.overhead_w

    def downstream_power_w(self, upstream_power_w: float) -> float:
        """Invert: downstream draw implied by an upstream reading."""
        return max(0.0, (upstream_power_w - self.overhead_w) * self.efficiency)
