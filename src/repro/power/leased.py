"""Leased-datacenter topology: the traditional PDU hierarchy.

Footnote 1 of the paper: Facebook also leases data centers whose power
delivery matches the traditional model in the literature — Power
Distribution Units (PDUs) and PDU breakers in place of Switch Boards and
Reactive Power Panels.  Dynamo runs unchanged there: leaf controllers
attach to PDU breakers instead of RPPs (Section IV configures "RPPs or
PDU Breakers, depending on the data center type", as the leaf level).

Structurally a PDU maps to the SB level and a PDU breaker to the RPP
level, so the controller hierarchy builder needs no changes — only the
names and typical ratings differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.device import DeviceLevel, PowerDevice
from repro.power.topology import PowerTopology
from repro.units import kilowatts, megawatts


@dataclass(frozen=True)
class LeasedDataCenterSpec:
    """Shape of a leased (traditional) datacenter.

    Ratings follow the commonly published PDU hierarchy: ~1 MW utility
    feeds per room, 225 KW PDUs, 90 KW PDU breaker panels.
    """

    name: str = "leased-dc1"
    feed_count: int = 2
    pdus_per_feed: int = 4
    breakers_per_pdu: int = 3
    feed_rating_w: float = megawatts(1.0)
    pdu_rating_w: float = kilowatts(225)
    breaker_rating_w: float = kilowatts(90)

    def __post_init__(self) -> None:
        if min(self.feed_count, self.pdus_per_feed, self.breakers_per_pdu) <= 0:
            raise ConfigurationError("all fan-out counts must be positive")
        ratings = (
            self.feed_rating_w,
            self.pdu_rating_w,
            self.breaker_rating_w,
        )
        if any(r <= 0 for r in ratings):
            raise ConfigurationError("all ratings must be positive")

    @property
    def breaker_count(self) -> int:
        """Total PDU breakers (leaf controllers) in the building."""
        return self.feed_count * self.pdus_per_feed * self.breakers_per_pdu


def build_leased_datacenter(
    spec: LeasedDataCenterSpec | None = None,
) -> PowerTopology:
    """Construct a traditional PDU-based topology.

    Device levels map onto the OCP enum so the controller hierarchy
    builder works unmodified: feed -> MSB, PDU -> SB, PDU breaker ->
    RPP.  Names carry the traditional terminology.
    """
    spec = spec or LeasedDataCenterSpec()
    roots: list[PowerDevice] = []
    for f in range(spec.feed_count):
        feed = PowerDevice(f"feed{f}", DeviceLevel.MSB, spec.feed_rating_w)
        for p in range(spec.pdus_per_feed):
            pdu = PowerDevice(
                f"pdu{f}.{p}", DeviceLevel.SB, spec.pdu_rating_w
            )
            feed.add_child(pdu)
            for b in range(spec.breakers_per_pdu):
                pdu.add_child(
                    PowerDevice(
                        f"pdubrk{f}.{p}.{b}",
                        DeviceLevel.RPP,
                        spec.breaker_rating_w,
                    )
                )
        roots.append(feed)
    return PowerTopology(spec.name, roots)
