"""Recipe-built worlds: the unit a snapshot captures and restores.

A snapshot never serializes object graphs or event closures — it stores
a *recipe* (builder name + kwargs) that deterministically rebuilds the
world's structure, and restore then overwrites the rebuilt components'
mutable state.  Anything a builder wires (topology, servers, agents,
controller hierarchy, armed schedules) therefore never needs to be in
the snapshot; only what time and randomness have changed does.

Builders:

* ``quickstart`` — the CLI's default deployment: a 1-MSB datacenter,
  36 web/cache servers, Dynamo started, fleet driver running.
* ``sized`` — the quickstart shape scaled to an arbitrary server
  count (profiling and control-plane benchmarks).
* ``chaos`` — any named scenario from
  :data:`repro.chaos.scenarios.CHAOS_SCENARIOS`, fully armed (fault
  schedule + health probe) and started.
* ``econ`` — any named scenario from
  :data:`repro.economics.scenarios.ECON_SCENARIOS`: the quickstart
  shape plus a deferrable batch tier, governed (or metered) by an
  :class:`~repro.economics.governor.EconomicGovernor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.chaos.orchestrator import ChaosOrchestrator
from repro.config import EXECUTION_BACKENDS
from repro.core.dynamo import Dynamo
from repro.errors import ConfigurationError, SnapshotError
from repro.fleet import Fleet, FleetDriver
from repro.power.topology import PowerTopology
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams

if TYPE_CHECKING:
    from repro.economics.governor import EconomicGovernor
    from repro.sharding import ShardedWorld


@dataclass
class World:
    """One built, armed deployment plus the recipe that rebuilds it."""

    recipe: dict
    engine: SimulationEngine
    topology: PowerTopology
    fleet: Fleet
    dynamo: Dynamo
    driver: FleetDriver
    rng: RngStreams
    orchestrator: ChaosOrchestrator | None = None
    governor: "EconomicGovernor | None" = None
    extras: dict = field(default_factory=dict)

    def run_until(self, end_s: float) -> None:
        """Advance the world to ``end_s``."""
        self.engine.run_until(end_s)

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self.engine.clock.now


def shard_world(world: World, shards: int) -> "ShardedWorld":
    """Wrap a built world in the sharded multi-process backend."""
    from repro.sharding import ShardedWorld

    return ShardedWorld(world, shards)


def _apply_execution_backend(
    world: World, execution_backend: str, shards: int
) -> "World | ShardedWorld":
    """Dispatch a freshly built world onto its execution backend.

    Execution choices are *not* recorded in the recipe: a snapshot of a
    sharded run restores to the same state regardless of backend, and
    can be re-wrapped at any shard count
    (:meth:`~repro.sharding.ShardedWorld.from_snapshot`).
    """
    if execution_backend not in EXECUTION_BACKENDS:
        known = ", ".join(EXECUTION_BACKENDS)
        raise ConfigurationError(
            f"unknown execution backend {execution_backend!r}; "
            f"known: {known}"
        )
    if execution_backend == "single":
        if shards != 1:
            raise ConfigurationError(
                "shards > 1 requires execution_backend='sharded'"
            )
        return world
    return shard_world(world, shards)


def build_quickstart_world(
    seed: int = 0,
    physics_backend: str = "scalar",
    control_backend: str = "scalar",
    execution_backend: str = "single",
    shards: int = 1,
) -> "World | ShardedWorld":
    """The CLI quickstart deployment, armed at t=0."""
    from repro.fleet import ServiceAllocation, populate_fleet
    from repro.power.builder import DataCenterSpec, build_datacenter
    from repro.power.oversubscription import plan_quotas

    engine = SimulationEngine()
    topology = build_datacenter(
        DataCenterSpec(
            msb_count=1, sbs_per_msb=2, rpps_per_sb=2, racks_per_rpp=3
        )
    )
    plan_quotas(topology)
    rng = RngStreams(seed)
    fleet = populate_fleet(
        topology,
        [ServiceAllocation("web", 24), ServiceAllocation("cache", 12)],
        rng,
    )
    dynamo = Dynamo(engine, topology, fleet, rng_streams=rng.fork("dynamo"))
    driver = FleetDriver(
        engine, topology, fleet, physics_backend=physics_backend
    )
    if control_backend == "vectorized":
        dynamo.enable_vectorized_control(driver)
    driver.start()
    dynamo.start()
    world = World(
        recipe={
            "builder": "quickstart",
            "kwargs": {
                "seed": seed,
                "physics_backend": physics_backend,
                "control_backend": control_backend,
            },
        },
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        rng=rng,
    )
    return _apply_execution_backend(world, execution_backend, shards)


def build_sized_world(
    servers: int = 1000,
    seed: int = 0,
    physics_backend: str = "vectorized",
    control_backend: str = "scalar",
    execution_backend: str = "single",
    shards: int = 1,
) -> "World | ShardedWorld":
    """A parametric-size deployment for profiling and benchmarks.

    Lays ``servers`` machines (2:1 web:cache) across a topology that
    scales its RPP fan-out with fleet size, so leaf controllers keep a
    realistic span (~hundreds of servers per leaf) as the fleet grows.
    """
    from repro.fleet import ServiceAllocation, populate_fleet
    from repro.power.builder import DataCenterSpec, build_datacenter
    from repro.power.oversubscription import plan_quotas

    engine = SimulationEngine()
    rpps_per_sb = max(2, min(16, servers // 400))
    topology = build_datacenter(
        DataCenterSpec(
            msb_count=1,
            sbs_per_msb=2,
            rpps_per_sb=rpps_per_sb,
            racks_per_rpp=3,
        )
    )
    plan_quotas(topology)
    rng = RngStreams(seed)
    web = (servers * 2) // 3
    fleet = populate_fleet(
        topology,
        [
            ServiceAllocation("web", web),
            ServiceAllocation("cache", servers - web),
        ],
        rng,
    )
    dynamo = Dynamo(engine, topology, fleet, rng_streams=rng.fork("dynamo"))
    driver = FleetDriver(
        engine, topology, fleet, physics_backend=physics_backend
    )
    if control_backend == "vectorized":
        dynamo.enable_vectorized_control(driver)
    driver.start()
    dynamo.start()
    world = World(
        recipe={
            "builder": "sized",
            "kwargs": {
                "servers": servers,
                "seed": seed,
                "physics_backend": physics_backend,
                "control_backend": control_backend,
            },
        },
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        rng=rng,
    )
    return _apply_execution_backend(world, execution_backend, shards)


def build_chaos_world(
    scenario: str,
    seed: int = 7,
    physics_backend: str = "scalar",
    control_backend: str = "scalar",
    execution_backend: str = "single",
    shards: int = 1,
) -> "World | ShardedWorld":
    """A named chaos scenario, armed and started at t=0.

    The underlying :class:`~repro.chaos.scenarios.ChaosRun` rides in
    ``extras["chaos_run"]`` so the scorecard can be built after a
    resumed campaign finishes.
    """
    from repro.chaos.scenarios import CHAOS_SCENARIOS

    try:
        builder = CHAOS_SCENARIOS[scenario]
    except KeyError:
        known = ", ".join(sorted(CHAOS_SCENARIOS))
        raise SnapshotError(
            f"unknown chaos scenario {scenario!r}; known: {known}"
        ) from None
    run = builder(
        seed=seed,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )
    run.start()
    world = World(
        recipe={
            "builder": "chaos",
            "kwargs": {
                "scenario": scenario,
                "seed": seed,
                "physics_backend": physics_backend,
                "control_backend": control_backend,
            },
        },
        engine=run.engine,
        topology=run.topology,
        fleet=run.fleet,
        dynamo=run.dynamo,
        driver=run.driver,
        rng=run.rng,
        orchestrator=run.orchestrator,
        governor=run.extras.get("governor"),
        extras={"chaos_run": run, "end_s": run.end_s},
    )
    return _apply_execution_backend(world, execution_backend, shards)


def build_econ_world(
    scenario: str = "price-spike-day",
    seed: int = 0,
    governed: bool = True,
    physics_backend: str = "scalar",
    control_backend: str = "scalar",
) -> World:
    """A named economics scenario, governed and started at t=0.

    Thin registry wrapper; the real builder lives with the economics
    package (imported lazily to keep this module cycle-free).
    """
    from repro.economics.scenarios import build_econ_world as build

    return build(
        scenario=scenario,
        seed=seed,
        governed=governed,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


WORLD_BUILDERS: dict[str, Callable[..., "World | ShardedWorld"]] = {
    "quickstart": build_quickstart_world,
    "sized": build_sized_world,
    "chaos": build_chaos_world,
    "econ": build_econ_world,
}


def build_world(recipe: dict) -> World:
    """Rebuild a world from a snapshot recipe."""
    try:
        builder = WORLD_BUILDERS[str(recipe["builder"])]
    except KeyError:
        known = ", ".join(sorted(WORLD_BUILDERS))
        raise SnapshotError(
            f"unknown world builder {recipe.get('builder')!r}; "
            f"known: {known}"
        ) from None
    world = builder(**recipe.get("kwargs", {}))
    # Recipes are execution-neutral: they never carry backend kwargs,
    # so a rebuild always yields a plain single-process world.
    assert isinstance(world, World)
    return world
