"""World snapshots: versioned checkpoint/restore and fork-from-snapshot.

Public surface:

* :class:`~repro.state.snapshot.WorldSnapshot` — the versioned,
  content-hashed envelope (``save``/``load``).
* :func:`~repro.state.snapshot.fingerprint` — run-comparable digest of a
  captured state payload.
* :class:`~repro.state.registry.SnapshotRegistry` — walks a world to
  ``capture`` a snapshot and ``restore`` one bit-exactly.
* :class:`~repro.state.registry.Snapshotable` — the protocol every
  stateful component implements.
* :mod:`~repro.state.worlds` — recipe builders (``build_world``,
  ``build_quickstart_world``, ``build_chaos_world``).
* :mod:`~repro.state.fork` — ``fork_world`` branch cloning and
  ``run_sweep`` parallel scenario sweeps.
"""

from repro.state.fork import (
    BranchResult,
    fork_branch,
    fork_inprocess,
    fork_world,
    run_branch,
    run_sweep,
    shutdown_sweep_pool,
)
from repro.state.registry import SnapshotRegistry, Snapshotable
from repro.state.snapshot import (
    SCHEMA_VERSION,
    WorldSnapshot,
    canonical_json,
    fingerprint,
    state_digest,
)
from repro.state.worlds import (
    WORLD_BUILDERS,
    World,
    build_chaos_world,
    build_quickstart_world,
    build_world,
)

__all__ = [
    "SCHEMA_VERSION",
    "WORLD_BUILDERS",
    "BranchResult",
    "SnapshotRegistry",
    "Snapshotable",
    "World",
    "WorldSnapshot",
    "build_chaos_world",
    "build_quickstart_world",
    "build_world",
    "canonical_json",
    "fingerprint",
    "fork_branch",
    "fork_inprocess",
    "fork_world",
    "run_branch",
    "run_sweep",
    "shutdown_sweep_pool",
    "state_digest",
]
