"""Fork-from-snapshot: clone one warmed-up world into divergent branches.

A snapshot taken after a warm-up run is an expensive asset — the fleet
has realistic utilisation, estimator caches are primed, controllers hold
real band state.  :func:`fork_world` restores that snapshot N times and
re-derives every random stream per branch, so the branches share the
exact warmed-up state but explore *different* random futures.  An
optional ``mutate`` hook perturbs each branch (different breaker limit,
injected fault, config override) for what-if sweeps.

:func:`run_sweep` drives the branches through a
:class:`concurrent.futures.ProcessPoolExecutor`; the worker is a
module-level function taking only primitives, so it pickles cleanly.
The pool is *persistent*: the first parallel sweep pays the worker
start-up cost, and every later sweep — a parameter scan calling
:func:`run_sweep` once per sweep point — reuses the warm workers.
:func:`shutdown_sweep_pool` releases them explicitly; an atexit hook
covers interpreter shutdown.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.state.registry import SnapshotRegistry, _controller_entries
from repro.state.snapshot import WorldSnapshot, fingerprint
from repro.state.worlds import World


def fork_branch(
    snapshot: WorldSnapshot,
    index: int,
    *,
    mutate: Callable[[World, int], None] | None = None,
) -> World:
    """Restore one divergent branch of ``snapshot``.

    The branch's random streams are re-derived from the root seed via
    ``rng.fork(f"{fork_stream}-{index}")``: every named stream the
    captured world had drawn from — workloads, sensors, chaos — plus the
    RPC transport generators are overwritten in place with the branch
    family's streams.  Same snapshot + same index ⇒ same branch, always.
    """
    world = SnapshotRegistry().restore(snapshot)
    stem = world.dynamo.config.snapshot.fork_stream
    branch = world.rng.fork(f"{stem}-{index}")
    for name in snapshot.state["rng"]["streams"]:
        world.rng.stream(name).bit_generator.state = branch.stream(
            name
        ).bit_generator.state
    # The transports draw from the separate fork("dynamo") family, which
    # is unreachable through the root streams — rebase it explicitly.
    dynamo_branch = branch.fork("dynamo")
    world.dynamo.transport._rng.bit_generator.state = dynamo_branch.stream(
        "rpc"
    ).bit_generator.state
    resilient = world.dynamo.resilient_transport
    if resilient is not None and resilient._rng is not None:
        resilient._rng.bit_generator.state = dynamo_branch.stream(
            "rpc.resilience"
        ).bit_generator.state
    if mutate is not None:
        mutate(world, index)
    return world


def fork_world(
    snapshot: WorldSnapshot,
    n: int,
    mutate: Callable[[World, int], None] | None = None,
) -> list[World]:
    """Clone ``snapshot`` into ``n`` divergent branch worlds."""
    return [fork_branch(snapshot, index, mutate=mutate) for index in range(n)]


def fork_inprocess(
    source: WorldSnapshot | str | Path,
    index: int = 0,
    *,
    mutate: Callable[[World, int], None] | None = None,
) -> World:
    """Fork one branch of ``source`` entirely in this process.

    A convenience over :func:`fork_branch` for callers that hold a file
    path rather than a loaded snapshot and want a single live
    :class:`World` back — no ProcessPoolExecutor, no pickling round
    trip.  The serve layer's ``SessionManager`` forks per-client
    sessions this way: load the warm snapshot once, then hand each
    client a cheap divergent branch.

    Same source + same index ⇒ the same branch world, always (the
    determinism contract of :func:`fork_branch`).
    """
    snapshot = (
        source
        if isinstance(source, WorldSnapshot)
        else WorldSnapshot.load(source)
    )
    return fork_branch(snapshot, index, mutate=mutate)


@dataclass(frozen=True)
class BranchResult:
    """Summary of one branch run in a sweep."""

    branch: int
    start_s: float
    end_s: float
    fingerprint: str
    peak_power_w: float
    cap_events: int
    uncap_events: int
    trips: int
    events_executed: int

    def to_dict(self) -> dict:
        """Plain-dict form for JSON reports."""
        return {
            "branch": self.branch,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "fingerprint": self.fingerprint,
            "peak_power_w": self.peak_power_w,
            "cap_events": self.cap_events,
            "uncap_events": self.uncap_events,
            "trips": self.trips,
            "events_executed": self.events_executed,
        }


def branch_result(world: World, index: int, start_s: float) -> BranchResult:
    """Measure one finished branch world."""
    state = SnapshotRegistry().capture(world).state
    peak = 0.0
    cap_events = 0
    uncap_events = 0
    for _, controller in _controller_entries(world):
        cap_events += controller.cap_events
        uncap_events += controller.uncap_events
        series = controller.aggregate_series
        if len(series) > 0:
            peak = max(peak, float(series.max()))
    return BranchResult(
        branch=index,
        start_s=start_s,
        end_s=world.now_s,
        fingerprint=fingerprint(state),
        peak_power_w=peak,
        cap_events=cap_events,
        uncap_events=uncap_events,
        trips=len(world.driver.trips),
        events_executed=world.engine.events_executed,
    )


def run_branch(
    snapshot_path: str | Path, index: int, horizon_s: float
) -> BranchResult:
    """Load, fork, and run one branch for ``horizon_s`` sim-seconds."""
    snapshot = WorldSnapshot.load(snapshot_path)
    world = fork_branch(snapshot, index)
    start_s = world.now_s
    world.run_until(start_s + horizon_s)
    return branch_result(world, index, start_s)


def _sweep_worker(args: tuple[str, int, float]) -> dict:
    """Process-pool entry point; primitives in, plain dict out."""
    path, index, horizon_s = args
    return run_branch(path, index, horizon_s).to_dict()


_pool: ProcessPoolExecutor | None = None
_pool_workers: int | None = None


def _sweep_pool(workers: int | None) -> ProcessPoolExecutor:
    """The shared sweep pool, (re)built only when the size changes."""
    global _pool, _pool_workers
    if _pool is not None and _pool_workers != workers:
        _pool.shutdown(wait=True)
        _pool = None
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def shutdown_sweep_pool() -> None:
    """Stop the persistent sweep workers (no-op if none are running)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = None


atexit.register(shutdown_sweep_pool)


def run_sweep(
    snapshot_path: str | Path,
    branches: int,
    horizon_s: float,
    *,
    workers: int | None = None,
) -> list[BranchResult]:
    """Run a fork sweep of ``branches`` branches over ``horizon_s``.

    ``workers`` caps the process pool; ``0`` or ``1`` runs serially in
    this process (useful under profilers and in tests).  Parallel
    sweeps share one persistent pool across calls, so a parameter scan
    pays worker start-up once, not once per sweep point; call
    :func:`shutdown_sweep_pool` to release the workers early.
    """
    jobs = [(str(snapshot_path), index, horizon_s) for index in range(branches)]
    if workers is not None and workers <= 1:
        results = [_sweep_worker(job) for job in jobs]
    else:
        results = list(_sweep_pool(workers).map(_sweep_worker, jobs))
    return [BranchResult(**entry) for entry in results]
