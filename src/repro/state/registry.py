"""The snapshot registry: walk a world, capture state, restore bit-exact.

Capture walks every stateful component of a built
:class:`~repro.state.worlds.World` — simulation clock and counters, every
RNG stream, server physics and estimator caches, device and breaker
thermal state, controller band/mode/ledger state, endpoint health,
transports, agents, watchdog backoff ladders, telemetry, and (when a
chaos campaign is running) the orchestrator's timeline, mid-flight fault
state, and armed fault timers — into one JSON-clean dict.

Restore rebuilds the world from its recipe, disarms everything the
builder scheduled, overwrites component state, then re-registers all
pending schedules **in ascending original-sequence order**.

Why that ordering gives bit-exact resume: the engine breaks ties on
``(time, priority, sequence)``.  At capture time the pending events hold
some set of sequence numbers whose *relative* order decides every future
tie.  Re-registering them in that relative order hands out fresh
sequence numbers ``0..n-1`` that preserve it, and any event scheduled
*after* the restore point gets a higher number than all coexisting
pending events — exactly as in the uninterrupted run.  Every future
tie-break therefore resolves identically, so the resumed trajectory is
the uninterrupted trajectory.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.core.failover import FailoverController
from repro.core.remote import RemoteChildController
from repro.errors import SnapshotError
from repro.simulation.process import PeriodicProcess
from repro.state.snapshot import SCHEMA_VERSION, WorldSnapshot
from repro.state.worlds import World, build_world


@runtime_checkable
class Snapshotable(Protocol):
    """Anything that can round-trip its mutable state through a dict.

    ``snapshot_state`` must return a JSON-clean dict (plain ints,
    floats, strings, lists, dicts, None); ``restore_state`` must accept
    that dict — possibly after a JSON round-trip — and overwrite the
    component's mutable state in place, preserving object identity for
    anything other components hold references to.
    """

    def snapshot_state(self) -> dict:
        """Serializable mutable state."""
        ...

    def restore_state(self, state: dict) -> None:
        """Overwrite mutable state in place."""
        ...


def _controller_entries(world: World) -> list[tuple[str, Any]]:
    """(name, controller) pairs in stable hierarchy order."""
    hierarchy = world.dynamo.hierarchy
    entries: list[tuple[str, Any]] = []
    entries.extend(hierarchy.leaf_controllers.items())
    entries.extend(hierarchy.upper_controllers.items())
    return entries


def _world_processes(world: World) -> dict[str, PeriodicProcess]:
    """Every periodic schedule in the world, keyed by label."""
    processes: dict[str, PeriodicProcess] = {}

    def add(process: PeriodicProcess) -> None:
        if process.label in processes:
            raise SnapshotError(
                f"duplicate periodic-process label {process.label!r}; "
                "snapshot restore matches schedules by label"
            )
        processes[process.label] = process

    add(world.driver.process)
    for process in world.dynamo.coordinator.processes:
        add(process)
    add(world.dynamo.watchdog.process)
    if world.orchestrator is not None and world.orchestrator.probe is not None:
        add(world.orchestrator.probe)
    if world.governor is not None:
        add(world.governor.process)
    return processes


class SnapshotRegistry:
    """Captures a :class:`World` into a snapshot and restores it."""

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def capture(
        self, world: World, *, include_traces: bool | None = None
    ) -> WorldSnapshot:
        """Walk the world and capture a :class:`WorldSnapshot`.

        Raises:
            SnapshotError: the world holds pending events the registry
                does not know how to re-register (a custom one-shot
                schedule), or its structure defies the walk.
        """
        if include_traces is None:
            include_traces = world.dynamo.config.snapshot.include_traces
        # The vectorized backend prefetches RNG draws speculatively;
        # rewind every stream to its logical position before capturing
        # generator states, or the resumed run would skip draws.
        world.driver.sync_physics()
        dynamo = world.dynamo
        # Same contract for the batched control plane's sensor-noise
        # prefetch: flush before generator states are read.
        if dynamo.agent_batch is not None:
            dynamo.agent_batch.sync()
        state: dict = {
            "engine": world.engine.snapshot_state(),
            "rng": world.rng.snapshot_state(),
            "servers": {
                server_id: server.snapshot_state()
                for server_id, server in world.fleet.servers.items()
            },
            "devices": {
                device.name: device.snapshot_state()
                for device in world.topology.iter_devices()
            },
            "failover_devices": [
                name
                for name, controller in _controller_entries(world)
                if isinstance(controller, FailoverController)
            ],
            "controllers": {
                name: self._capture_controller(controller)
                for name, controller in _controller_entries(world)
            },
            "remote_children": self._capture_remote_children(world),
            "health": dynamo.health.snapshot_state(),
            "transport": dynamo.transport.snapshot_state(),
            "resilient": (
                None
                if dynamo.resilient_transport is None
                else dynamo.resilient_transport.snapshot_state()
            ),
            "agents": {
                server_id: agent.snapshot_state()
                for server_id, agent in dynamo.agents.items()
            },
            "watchdog": dynamo.watchdog.snapshot_state(),
            "control_batch": (
                None
                if dynamo.agent_batch is None
                else dynamo.agent_batch.snapshot_state()
            ),
            "driver": world.driver.snapshot_state(),
            "alerts": dynamo.alerts.snapshot_state(),
            "traces": dynamo.traces.snapshot_state(
                include_traces=include_traces
            ),
            "orchestrator": (
                None
                if world.orchestrator is None
                else world.orchestrator.snapshot_state()
            ),
            "processes": {
                label: process.snapshot_state()
                for label, process in _world_processes(world).items()
            },
        }
        # Conditional key: worlds without a governor keep the exact
        # pre-economics snapshot shape (golden fingerprints unchanged).
        if world.governor is not None:
            state["economics"] = world.governor.snapshot_state()
        self._check_pending_coverage(world, state)
        return WorldSnapshot(
            recipe=dict(world.recipe),
            state=state,
            schema_version=SCHEMA_VERSION,
            meta={"time_s": world.now_s},
        )

    def _capture_controller(self, controller: Any) -> dict:
        if isinstance(controller, FailoverController):
            return {
                "kind": "pair",
                "pair": controller.snapshot_state(),
                "primary": controller.primary.snapshot_state(),
                "backup": controller.backup.snapshot_state(),
            }
        return {"kind": "single", "state": controller.snapshot_state()}

    def _capture_remote_children(self, world: World) -> dict:
        """RPC child-proxy state per upper controller (distributed mode).

        A failover pair's halves share the same proxy objects, so the
        primary's child list covers both.
        """
        captured: dict[str, dict] = {}
        for name, controller in world.dynamo.hierarchy.upper_controllers.items():
            instance = (
                controller.primary
                if isinstance(controller, FailoverController)
                else controller
            )
            proxies = {
                child.name: child.snapshot_state()
                for child in getattr(instance, "children", [])
                if isinstance(child, RemoteChildController)
            }
            if proxies:
                captured[name] = proxies
        return captured

    def _check_pending_coverage(self, world: World, state: dict) -> None:
        """Every live pending event must be re-registerable from state."""
        covered = sum(
            1
            for process_state in state["processes"].values()
            if process_state["next_fire_s"] is not None
        )
        orchestrator_state = state["orchestrator"]
        if orchestrator_state is not None:
            covered += len(orchestrator_state["pending"])
        live = world.engine.pending_count
        if covered != live:
            raise SnapshotError(
                f"world has {live} pending events but only {covered} are "
                "captured as re-registerable schedules; snapshot would "
                "drop the rest (custom schedule_at events are not "
                "snapshotable)"
            )

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def restore(self, snapshot: WorldSnapshot) -> World:
        """Rebuild the recipe world and overwrite it with the snapshot.

        Returns a world positioned at the captured simulation time with
        all schedules re-armed; running it continues the original
        trajectory bit-exactly.
        """
        state = snapshot.state
        world = build_world(snapshot.recipe)
        dynamo = world.dynamo

        # Structure first: failover pairs must exist before their halves
        # are restored (the backup is created by enable_failover).
        for device_name in state["failover_devices"]:
            dynamo.enable_failover(str(device_name))

        # Disarm everything the builder scheduled, then move the clock.
        world.engine.clear_pending()
        world.engine.restore_state(state["engine"])
        world.rng.restore_state(state["rng"])

        self._restore_keyed(
            "server", world.fleet.servers, state["servers"]
        )
        devices = {d.name: d for d in world.topology.iter_devices()}
        self._restore_keyed("device", devices, state["devices"])
        self._restore_controllers(world, state["controllers"])
        self._restore_remote_children(world, state["remote_children"])
        dynamo.health.restore_state(state["health"])
        dynamo.transport.restore_state(state["transport"])
        if (state["resilient"] is None) != (
            dynamo.resilient_transport is None
        ):
            raise SnapshotError(
                "snapshot and rebuilt world disagree on whether the "
                "resilience layer is enabled; the recipe does not match"
            )
        if dynamo.resilient_transport is not None:
            dynamo.resilient_transport.restore_state(state["resilient"])
        self._restore_keyed("agent", dynamo.agents, state["agents"])
        dynamo.watchdog.restore_state(state["watchdog"])
        captured_batch = state.get("control_batch")
        if dynamo.agent_batch is not None and captured_batch is not None:
            dynamo.agent_batch.restore_state(captured_batch)
        world.driver.restore_state(state["driver"])
        dynamo.alerts.restore_state(state["alerts"])
        dynamo.traces.restore_state(state["traces"])
        if (state["orchestrator"] is None) != (world.orchestrator is None):
            raise SnapshotError(
                "snapshot and rebuilt world disagree on the presence of "
                "a chaos orchestrator; the recipe does not match"
            )
        if world.orchestrator is not None:
            world.orchestrator.restore_state(state["orchestrator"])
        captured_econ = state.get("economics")
        if (captured_econ is None) != (world.governor is None):
            raise SnapshotError(
                "snapshot and rebuilt world disagree on the presence of "
                "an economic governor; the recipe does not match"
            )
        if world.governor is not None:
            world.governor.restore_state(captured_econ)

        self._rearm_schedules(world, state)
        return world

    def _restore_keyed(self, what: str, live: dict, captured: dict) -> None:
        if set(live) != set(captured):
            missing = sorted(set(captured) - set(live))
            extra = sorted(set(live) - set(captured))
            raise SnapshotError(
                f"{what} set mismatch between snapshot and rebuilt world "
                f"(missing: {missing or 'none'}, extra: {extra or 'none'})"
            )
        for key, component in live.items():
            component.restore_state(captured[key])

    def _restore_controllers(self, world: World, captured: dict) -> None:
        entries = dict(_controller_entries(world))
        if set(entries) != set(captured):
            raise SnapshotError(
                "controller set mismatch between snapshot and rebuilt "
                "world; the recipe does not match"
            )
        for name, entry in captured.items():
            controller = entries[name]
            if entry["kind"] == "pair":
                if not isinstance(controller, FailoverController):
                    raise SnapshotError(
                        f"snapshot has a failover pair for {name!r} but "
                        "the rebuilt world does not"
                    )
                controller.restore_state(entry["pair"])
                controller.primary.restore_state(entry["primary"])
                controller.backup.restore_state(entry["backup"])
            else:
                if isinstance(controller, FailoverController):
                    raise SnapshotError(
                        f"rebuilt world has a failover pair for {name!r} "
                        "but the snapshot does not"
                    )
                controller.restore_state(entry["state"])

    def _restore_remote_children(self, world: World, captured: dict) -> None:
        for name, proxies in captured.items():
            controller = world.dynamo.hierarchy.upper_controllers[name]
            instance = (
                controller.primary
                if isinstance(controller, FailoverController)
                else controller
            )
            children = {
                child.name: child
                for child in getattr(instance, "children", [])
                if isinstance(child, RemoteChildController)
            }
            if set(children) != set(proxies):
                raise SnapshotError(
                    f"remote-child set mismatch under {name!r}; the "
                    "recipe does not match (was the hierarchy "
                    "distributed?)"
                )
            for child_name, proxy_state in proxies.items():
                children[child_name].restore_state(proxy_state)

    def _rearm_schedules(self, world: World, state: dict) -> None:
        """Re-register pending events in ascending original sequence."""
        processes = _world_processes(world)
        captured = state["processes"]
        if set(processes) != set(captured):
            missing = sorted(set(captured) - set(processes))
            extra = sorted(set(processes) - set(captured))
            raise SnapshotError(
                "periodic-process set mismatch between snapshot and "
                f"rebuilt world (missing: {missing or 'none'}, extra: "
                f"{extra or 'none'})"
            )
        rearms: list[tuple[int, Callable[[], None]]] = []
        for label, process in processes.items():
            process_state = captured[label]
            if process_state["sequence"] is None:
                # Stopped (or never started): restore counters now; no
                # event competes for ordering.
                process.restore_state(process_state)
            else:
                rearms.append(
                    (
                        int(process_state["sequence"]),
                        lambda p=process, s=process_state: p.restore_state(s),
                    )
                )
        orchestrator = world.orchestrator
        orchestrator_state = state["orchestrator"]
        if orchestrator_state is not None:
            assert orchestrator is not None
            for entry in orchestrator_state["pending"]:
                rearms.append(
                    (
                        int(entry["sequence"]),
                        lambda e=entry: orchestrator.rearm_pending(e),
                    )
                )
        rearms.sort(key=lambda item: item[0])
        for _, rearm in rearms:
            rearm()
