"""Versioned, content-hashed world snapshots.

A :class:`WorldSnapshot` is a plain-data capture of one built world: a
*recipe* naming the deterministic builder that rewires the world's
structure, plus the *state* dict the :class:`~repro.state.registry.SnapshotRegistry`
walked out of every component.  The on-disk format is a JSON envelope::

    {
      "format": "repro-world-snapshot",
      "schema_version": 1,
      "recipe": {"builder": ..., "kwargs": {...}},
      "integrity": "sha256:<hex of the canonical state payload>",
      "state": {...}
    }

The integrity hash covers the canonical (sorted-keys) serialization of
the state payload, so any corruption or hand-editing is detected at
load.  Loading a snapshot written by a different schema version raises
:class:`~repro.errors.SnapshotVersionError` — there is deliberately no
best-effort migration path: a snapshot is a precise machine state, and
a partially understood one is worse than none.

Event closures are never serialized.  Pending schedules are stored as
(absolute fire time, original sequence number) pairs and re-registered
on restore; see :mod:`repro.state.registry` for the ordering argument
that makes resumed runs bit-exact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import (
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)

#: The on-disk format marker (guards against loading arbitrary JSON).
FORMAT_MARKER = "repro-world-snapshot"

#: Current schema version.  Bump on ANY change to the captured state
#: layout; old snapshots are then rejected, not misread.
SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Canonical serialization: sorted keys, no whitespace drift.

    Used both for the integrity hash and for fingerprinting, so two
    state dicts are byte-compared in a representation independent of
    dict insertion order.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def state_digest(state: dict) -> str:
    """``sha256:<hex>`` over the canonical state payload."""
    digest = hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()
    return f"sha256:{digest}"


@dataclass(frozen=True)
class WorldSnapshot:
    """One captured world: rebuild recipe + per-component state."""

    recipe: dict
    state: dict
    schema_version: int = SCHEMA_VERSION
    meta: dict = field(default_factory=dict)

    @property
    def builder(self) -> str:
        """The world-builder name in the recipe."""
        return str(self.recipe["builder"])

    @property
    def time_s(self) -> float:
        """Simulation time at capture."""
        return float(self.state["engine"]["now"])

    def integrity(self) -> str:
        """The content hash of this snapshot's state payload."""
        return state_digest(self.state)

    def to_envelope(self) -> dict:
        """The JSON envelope written to disk."""
        return {
            "format": FORMAT_MARKER,
            "schema_version": self.schema_version,
            "recipe": self.recipe,
            "meta": self.meta,
            "integrity": self.integrity(),
            "state": self.state,
        }

    def save(self, path: str | Path) -> Path:
        """Write the envelope to ``path`` (pretty-printed JSON)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_envelope(), indent=1, sort_keys=True),
            encoding="utf-8",
        )
        return path

    @classmethod
    def from_envelope(
        cls, envelope: Any, *, origin: str = "envelope"
    ) -> "WorldSnapshot":
        """Verify and adopt an already-parsed JSON envelope.

        This is the validation core of :meth:`load`, split out so
        callers holding an in-memory payload — the serve layer accepts
        snapshots POSTed over HTTP — get the same format, version, and
        integrity guarantees as the file path.

        Raises:
            SnapshotError: not a snapshot envelope.
            SnapshotVersionError: written by an incompatible schema.
            SnapshotIntegrityError: state payload does not match the
                recorded content hash.
        """
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != FORMAT_MARKER
        ):
            raise SnapshotError(
                f"{origin} is not a {FORMAT_MARKER!r} envelope"
            )
        version = int(envelope.get("schema_version", -1))
        if version != SCHEMA_VERSION:
            raise SnapshotVersionError(version, SCHEMA_VERSION)
        state = envelope["state"]
        recorded = envelope.get("integrity", "")
        actual = state_digest(state)
        if recorded != actual:
            raise SnapshotIntegrityError(
                f"snapshot {origin} failed integrity verification: "
                f"recorded {recorded}, computed {actual}"
            )
        return cls(
            recipe=envelope["recipe"],
            state=state,
            schema_version=version,
            meta=envelope.get("meta", {}),
        )

    @classmethod
    def load(cls, path: str | Path) -> "WorldSnapshot":
        """Read and verify a snapshot envelope.

        Raises:
            SnapshotError: not a snapshot file, or malformed JSON.
            SnapshotVersionError: written by an incompatible schema.
            SnapshotIntegrityError: state payload does not match the
                recorded content hash.
        """
        path = Path(path)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        return cls.from_envelope(envelope, origin=str(path))


def _normalize_sequences(state: dict) -> dict:
    """Replace absolute scheduler sequence numbers by their rank.

    A resumed run re-registers pending events with fresh sequence
    numbers, so absolute values differ from an uninterrupted run even
    though the *relative* order — the only thing that affects behaviour
    — is identical.  Fingerprints therefore compare ranks, not values.
    """
    entries: list[tuple[int, Any, Any]] = []

    def collect(node: Any, container: Any, key: Any) -> None:
        if isinstance(node, dict):
            for k, v in node.items():
                if k == "sequence" and isinstance(v, int):
                    entries.append((v, node, k))
                else:
                    collect(v, node, k)
        elif isinstance(node, list):
            for i, v in enumerate(node):
                collect(v, node, i)

    clone = json.loads(canonical_json(state))
    collect(clone, None, None)
    for rank, (_, container, key) in enumerate(
        sorted(entries, key=lambda e: e[0])
    ):
        container[key] = rank
    return clone


def fingerprint(state: dict) -> str:
    """A run-comparable digest of a captured state payload.

    Identical for an uninterrupted run and a snapshot/restore-resumed
    run of the same world at the same simulation time: pending-event
    sequence numbers are compared by rank (see
    :func:`_normalize_sequences`), and wall-clock stage durations are
    zeroed at capture time by the trace buffer.
    """
    return state_digest(_normalize_sequences(state))
