"""Command-line interface: run scenarios and inspect results.

Usage::

    python -m repro list
    python -m repro run quickstart
    python -m repro run ashburn --duration-h 2
    python -m repro run altoona
    python -m repro run hadoop --servers 100 --duration-h 6
    python -m repro run cascade
    python -m repro chaos list
    python -m repro chaos run sb-outage --seed 7
    python -m repro chaos run --resume mid-campaign.json
    python -m repro snapshot save --scenario sb-outage --at 900 --out s.json
    python -m repro snapshot restore s.json --until 1800
    python -m repro snapshot diff a.json b.json
    python -m repro snapshot sweep s.json --branches 8 --horizon 300
    python -m repro trace rpp0.0 --scenario quickstart --last 10
    python -m repro trace sb0.0 --scenario sb-outage --seed 7
    python -m repro health rpp0 --scenario flaky-fabric-recovery --seed 7
    python -m repro attribute rpp0 --scenario sensor-blackout-50 --seed 7
    python -m repro profile quickstart --physics-backend vectorized
    python -m repro profile sb-outage --top 10
    python -m repro serve --port 8640
    python -m repro econ price-spike-day --compare
    python -m repro econ carbon-spike-day --hours 10 --seed 3
    python -m repro signals list
    python -m repro signals price-spike-day

Each scenario prints a short report; exit code is 0 when the run's
safety invariant (no breaker trips) holds.  Operational errors exit
nonzero instead of dumping tracebacks: snapshot problems (missing
file, corrupted payload, schema mismatch) exit 2 with a one-line
explanation, and any other library error exits 1.  ``chaos run`` additionally
executes the scenario twice and requires byte-identical injection
timelines (the replay-determinism contract).  ``trace`` runs a scenario
and prints one controller's per-tick sense→aggregate→decide→actuate
:class:`~repro.telemetry.tracing.TickTrace` records plus their
aggregated metrics.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.multidc import build_region
from repro.config import (
    CONTROL_BACKENDS,
    EXECUTION_BACKENDS,
    PHYSICS_BACKENDS,
)
from repro.analysis.scenarios import (
    altoona_outage_recovery,
    ashburn_load_test,
    mixed_service_row,
    prineville_hadoop_turbo,
)
from repro.units import hours, to_kilowatts

SCENARIOS = ("quickstart", "ashburn", "altoona", "hadoop", "mixedrow", "cascade")


def _quickstart_deployment(
    seed: int,
    duration_h: float,
    physics_backend: str = "scalar",
    control_backend: str = "scalar",
    execution_backend: str = "single",
    shards: int = 1,
):
    """Build, run, and return the quickstart deployment pieces."""
    from repro.state.worlds import build_quickstart_world

    world = build_quickstart_world(
        seed=seed,
        physics_backend=physics_backend,
        control_backend=control_backend,
        execution_backend=execution_backend,
        shards=shards,
    )
    if execution_backend == "sharded":
        # Run across the shard workers, then materialize a plain world
        # at the final state so the report reads fresh counters.
        with world as sharded:
            sharded.run_until(hours(duration_h))
            local = sharded.to_local()
        return local.dynamo, local.driver, local.topology
    world.run_until(hours(duration_h))
    return world.dynamo, world.driver, world.topology


def _run_quickstart(args: argparse.Namespace) -> int:
    dynamo, driver, topology = _quickstart_deployment(
        args.seed,
        args.duration_h,
        args.physics_backend,
        args.control_backend,
        args.execution_backend,
        args.shards,
    )
    print(
        f"ran {args.duration_h} h: power {to_kilowatts(topology.total_power_w()):.1f} KW, "
        f"{dynamo.total_cap_events()} cap events, {len(driver.trips)} trips"
    )
    return 1 if driver.trips else 0


def _run_ashburn(args: argparse.Namespace) -> int:
    scenario = ashburn_load_test(server_count=args.servers, seed=args.seed)
    scenario.start()
    scenario.run_until(hours(8) + hours(args.duration_h))
    controller = scenario.dynamo.leaf_controller("rpp0")
    print(
        f"PDU peak {to_kilowatts(controller.aggregate_series.max()):.1f} KW, "
        f"{controller.cap_events} cap / {controller.uncap_events} uncap "
        f"events, {len(scenario.driver.trips)} trips"
    )
    return 1 if scenario.driver.trips else 0


def _run_altoona(args: argparse.Namespace) -> int:
    scenario = altoona_outage_recovery(seed=args.seed)
    scenario.start()
    scenario.run_until(hours(14) + 600.0)
    sb = scenario.dynamo.controller("sb0")
    capped_rows = [
        n
        for n, leaf in scenario.dynamo.hierarchy.leaf_controllers.items()
        if leaf.cap_events > 0
    ]
    print(
        f"SB peak {to_kilowatts(sb.aggregate_series.max()):.1f} KW / "
        f"{to_kilowatts(sb.device.rated_power_w):.0f} KW, rows capped "
        f"{sorted(capped_rows)}, {len(scenario.driver.trips)} trips"
    )
    return 1 if scenario.driver.trips else 0


def _run_hadoop(args: argparse.Namespace) -> int:
    scenario = prineville_hadoop_turbo(
        server_count=args.servers, seed=args.seed
    )
    scenario.start()
    scenario.run_until(hours(args.duration_h))
    sb = scenario.dynamo.controller("sb0")
    print(
        f"SB mean {to_kilowatts(sb.aggregate_series.mean()):.1f} / rating "
        f"{to_kilowatts(scenario.extras['sb_rating_w']):.1f} KW, "
        f"{sb.uncap_events} capping episodes, "
        f"{len(scenario.driver.trips)} trips"
    )
    return 1 if scenario.driver.trips else 0


def _run_mixedrow(args: argparse.Namespace) -> int:
    scenario = mixed_service_row(seed=args.seed)
    controller = scenario.dynamo.leaf_controller("rpp0")
    scenario.start()
    trigger_on = hours(13) + 50 * 60
    scenario.engine.schedule_at(
        trigger_on, lambda: controller.set_contractual_limit_w(95_000.0)
    )
    scenario.engine.schedule_at(
        hours(14) + 120, lambda: controller.clear_contractual_limit()
    )
    scenario.run_until(hours(14) + 600)
    capped_cache = sum(
        1 for s in scenario.extras["cache_servers"] if s.rapl.capped
    )
    print(
        f"{controller.cap_events} cap events; cache servers capped: "
        f"{capped_cache} (must be 0); trips {len(scenario.driver.trips)}"
    )
    return 1 if (scenario.driver.trips or capped_cache) else 0


def _run_cascade(args: argparse.Namespace) -> int:
    region = build_region(with_dynamo=not args.no_dynamo, seed=args.seed)
    region.start()
    region.engine.run_until(300.0)
    region.fail_site("dc0")
    region.engine.run_until(1200.0)
    tripped = region.tripped_sites()
    print(
        f"site dc0 failed at t=300 s; cascaded sites: {tripped or 'none'}"
    )
    return 1 if tripped else 0


def _run_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import CHAOS_SCENARIOS, build_scorecard, render_scorecard

    if args.chaos_command == "list":
        for name in sorted(CHAOS_SCENARIOS):
            print(name)
        return 0

    if args.resume is not None:
        return _resume_chaos(args)
    if args.scenario is None:
        print("chaos run: a scenario name or --resume <snapshot> is required")
        return 2
    builder = CHAOS_SCENARIOS[args.scenario]
    fingerprints: list[str] = []
    score = None
    for _ in range(1 if args.once else 2):
        run = builder(seed=args.seed)
        run.run()
        fingerprints.append(run.fingerprint())
        score = build_scorecard(run)
    assert score is not None
    print(render_scorecard(score))
    deterministic = len(set(fingerprints)) == 1
    if not args.once:
        print(
            "replay determinism: "
            + ("byte-identical timelines" if deterministic else "DIVERGED")
        )
        if not deterministic:
            print("--- run 1 ---", fingerprints[0], sep="\n")
            print("--- run 2 ---", fingerprints[1], sep="\n")
    return 0 if (deterministic and score.breaker_trips == 0) else 1


def _resume_chaos(args: argparse.Namespace) -> int:
    """Continue a seeded chaos campaign from a mid-campaign snapshot."""
    from repro.chaos import build_scorecard, render_scorecard
    from repro.state import SnapshotRegistry, WorldSnapshot

    snapshot = WorldSnapshot.load(args.resume)
    if snapshot.builder != "chaos":
        print(
            f"{args.resume} captures a {snapshot.builder!r} world, not a "
            "chaos campaign; take it with "
            "'snapshot save --scenario <chaos-scenario>'"
        )
        return 2
    scenario = snapshot.recipe["kwargs"]["scenario"]
    if args.scenario is not None and args.scenario != scenario:
        print(
            f"snapshot captures scenario {scenario!r}, not {args.scenario!r}"
        )
        return 2
    world = SnapshotRegistry().restore(snapshot)
    run = world.extras["chaos_run"]
    print(
        f"resumed {scenario!r} (seed {snapshot.recipe['kwargs']['seed']}) "
        f"at t={snapshot.time_s:.1f}s, running to t={run.end_s:.1f}s"
    )
    world.run_until(run.end_s)
    score = build_scorecard(run)
    print(render_scorecard(score))
    return 0 if score.breaker_trips == 0 else 1


def _run_snapshot(args: argparse.Namespace) -> int:
    from repro.state import (
        SnapshotRegistry,
        WorldSnapshot,
        build_chaos_world,
        build_quickstart_world,
        fingerprint,
        run_sweep,
        state_digest,
    )

    registry = SnapshotRegistry()
    if args.snapshot_command == "save":
        if args.scenario == "quickstart":
            world = build_quickstart_world(
                seed=args.seed,
                physics_backend=args.physics_backend,
                control_backend=args.control_backend,
            )
        else:
            world = build_chaos_world(
                args.scenario,
                seed=args.seed,
                physics_backend=args.physics_backend,
                control_backend=args.control_backend,
            )
        world.run_until(args.at)
        snapshot = registry.capture(
            world, include_traces=not args.no_traces
        )
        path = snapshot.save(args.out)
        print(
            f"saved {args.scenario!r} world at t={snapshot.time_s:.1f}s "
            f"to {path} ({snapshot.integrity()})"
        )
        return 0
    if args.snapshot_command == "restore":
        snapshot = WorldSnapshot.load(args.path)
        world = registry.restore(snapshot)
        end_s = snapshot.time_s if args.until is None else args.until
        world.run_until(end_s)
        state = registry.capture(world).state
        print(
            f"restored {snapshot.builder!r} world at "
            f"t={snapshot.time_s:.1f}s, ran to t={world.now_s:.1f}s"
        )
        print(f"fingerprint: {fingerprint(state)}")
        return 0
    if args.snapshot_command == "diff":
        left = WorldSnapshot.load(args.a)
        right = WorldSnapshot.load(args.b)
        identical = (
            left.recipe == right.recipe
            and left.integrity() == right.integrity()
        )
        print(f"a: {left.builder!r} t={left.time_s:.1f}s {left.integrity()}")
        print(
            f"b: {right.builder!r} t={right.time_s:.1f}s {right.integrity()}"
        )
        if left.recipe != right.recipe:
            print(f"recipes differ: {left.recipe} vs {right.recipe}")
        for key in sorted(set(left.state) | set(right.state)):
            a_digest = (
                state_digest(left.state[key]) if key in left.state else "absent"
            )
            b_digest = (
                state_digest(right.state[key])
                if key in right.state
                else "absent"
            )
            marker = "  " if a_digest == b_digest else "* "
            print(f"{marker}{key}: {'identical' if a_digest == b_digest else 'differs'}")
        print("snapshots identical" if identical else "snapshots differ")
        return 0 if identical else 1
    if args.snapshot_command == "sweep":
        results = run_sweep(
            args.path,
            branches=args.branches,
            horizon_s=args.horizon,
            workers=args.workers,
        )
        print(
            f"{'branch':>6} {'peak_kw':>8} {'caps':>5} {'uncaps':>6} "
            f"{'trips':>5}  fingerprint"
        )
        for result in results:
            print(
                f"{result.branch:>6} "
                f"{to_kilowatts(result.peak_power_w):>8.1f} "
                f"{result.cap_events:>5} {result.uncap_events:>6} "
                f"{result.trips:>5}  {result.fingerprint}"
            )
        if args.json is not None:
            import json as json_module
            from pathlib import Path

            payload = [result.to_dict() for result in results]
            Path(args.json).write_text(
                json_module.dumps(payload, indent=1), encoding="utf-8"
            )
            print(f"wrote {args.json}")
        return 1 if any(result.trips for result in results) else 0
    raise AssertionError(f"unknown snapshot command {args.snapshot_command!r}")


def _run_trace(args: argparse.Namespace) -> int:
    from repro.chaos import CHAOS_SCENARIOS
    from repro.economics.scenarios import ECON_SCENARIOS, run_econ_day

    if args.scenario == "quickstart":
        dynamo, _, _ = _quickstart_deployment(args.seed, args.duration_h)
    elif args.scenario in ECON_SCENARIOS:
        world = run_econ_day(
            args.scenario, seed=args.seed, duration_s=hours(args.duration_h)
        )
        dynamo = world.dynamo
    else:
        run = CHAOS_SCENARIOS[args.scenario](seed=args.seed)
        run.run()
        dynamo = run.dynamo
    traces = dynamo.traces.for_controller(args.device, args.last)
    if not traces:
        known = ", ".join(dynamo.traces.controllers()) or "none"
        print(
            f"no traces recorded for {args.device!r}; "
            f"traced controllers: {known}"
        )
        return 1
    for trace in traces:
        print(trace.render())
    print()
    for metric, value in dynamo.traces.metrics(args.device).rows():
        print(f"{metric}: {value}")
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """Profile one scenario: per-phase wall-time + cProfile hot spots.

    The phase breakdown splits the run's wall-clock between the fleet
    physics step (``FleetDriver.physics_wall_s``) and the four control
    stages, whose durations every :class:`TickTrace` already records;
    everything else (event dispatch, RPC fabric, telemetry) lands in
    ``other``.
    """
    import cProfile
    import io
    import pstats
    import time as time_module

    from repro.state.worlds import (
        build_chaos_world,
        build_quickstart_world,
        build_sized_world,
    )

    backend_kwargs = dict(
        execution_backend=args.execution_backend, shards=args.shards
    )
    if args.scenario == "quickstart":
        if args.servers is not None:
            world = build_sized_world(
                servers=args.servers,
                seed=args.seed,
                physics_backend=args.physics_backend,
                control_backend=args.control_backend,
                **backend_kwargs,
            )
        else:
            world = build_quickstart_world(
                seed=args.seed,
                physics_backend=args.physics_backend,
                control_backend=args.control_backend,
                **backend_kwargs,
            )
        end_s = hours(args.duration_h)
    else:
        if args.servers is not None:
            print("profile: --servers applies to the quickstart scenario only")
            return 1
        world = build_chaos_world(
            args.scenario,
            seed=args.seed,
            physics_backend=args.physics_backend,
            control_backend=args.control_backend,
            **backend_kwargs,
        )
        end_s = world.extras["end_s"]
    if args.execution_backend == "sharded":
        return _profile_sharded(world, args, end_s)
    profiler = cProfile.Profile()
    t0 = time_module.perf_counter()
    profiler.enable()
    world.run_until(end_s)
    profiler.disable()
    wall_s = time_module.perf_counter() - t0
    print(
        f"profiled {args.scenario!r} ({args.physics_backend} backend) "
        f"to t={world.now_s:.1f}s: wall {wall_s:.3f} s"
    )
    print()
    traces = world.dynamo.traces.latest()
    phases = [
        ("physics", world.driver.physics_wall_s),
        ("sense", sum(t.sense_duration_s for t in traces)),
        ("aggregate", sum(t.aggregate_duration_s for t in traces)),
        ("decide", sum(t.decide_duration_s for t in traces)),
        ("actuate", sum(t.actuate_duration_s for t in traces)),
    ]
    phases.append(("other", max(wall_s - sum(w for _, w in phases), 0.0)))
    print(f"{'phase':<10} {'wall_s':>8} {'share':>7}")
    for name, phase_wall in phases:
        share = 100.0 * phase_wall / wall_s if wall_s > 0 else 0.0
        print(f"{name:<10} {phase_wall:>8.3f} {share:>6.1f}%")
    print()
    _print_fallback_report(world)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(f"top {args.top} functions by cumulative time:")
    print(stream.getvalue().rstrip())
    return 0


def _profile_sharded(world, args: argparse.Namespace, end_s: float) -> int:
    """Per-shard wall-time breakdown for the sharded backend.

    cProfile is skipped here: the interesting time is spent in forked
    worker processes it cannot see.  Instead the parent's phase
    accounting (shard step, aggregate exchange, coordinator decide) and
    each worker's compute-vs-waiting split are reported directly.
    """
    import time as time_module

    t0 = time_module.perf_counter()
    with world as sharded:
        sharded.run_until(end_s)
        wall_s = time_module.perf_counter() - t0
        stats = sharded.worker_stats()
        phase_wall = dict(sharded.wall)
        now_s = sharded.now_s
    print(
        f"profiled {args.scenario!r} (sharded x{args.shards}) "
        f"to t={now_s:.1f}s: wall {wall_s:.3f} s"
    )
    print()
    phases = [
        ("shard step", phase_wall["shard_step_s"]),
        ("aggregate exchange", phase_wall["exchange_s"]),
        ("coordinator decide", phase_wall["coordinator_s"]),
    ]
    phases.append(
        ("other", max(wall_s - sum(w for _, w in phases), 0.0))
    )
    print(f"{'phase':<20} {'wall_s':>8} {'share':>7}")
    for name, phase_s in phases:
        share = 100.0 * phase_s / wall_s if wall_s > 0 else 0.0
        print(f"{name:<20} {phase_s:>8.3f} {share:>6.1f}%")
    print()
    print(f"{'shard':>5} {'step_s':>8} {'waiting_s':>9} {'busy':>6}")
    for entry in stats:
        step_s = entry["step_wall_s"]
        wait_s = entry["wait_wall_s"]
        total = step_s + wait_s
        busy = 100.0 * step_s / total if total > 0 else 0.0
        print(
            f"{entry['shard']:>5} {step_s:>8.3f} {wait_s:>9.3f} "
            f"{busy:>5.1f}%"
        )
    return 0


def _print_fallback_report(world) -> None:
    """Per-tick scalar-fallback counts for both vectorized lanes.

    Physics: servers stepped individually because a chaos fault knocked
    them off the packed arrays.  Control: endpoint calls served on the
    scalar lane inside a batched broadcast, plus whole-group fallbacks
    (global fault rates armed).  Silent on fully scalar worlds.
    """
    stepper = world.driver.stepper
    transport = world.dynamo.transport
    lines = []
    if stepper is not None and getattr(stepper, "step_count", 0):
        per_tick = stepper.fallback_server_steps / stepper.step_count
        lines.append(
            f"physics    {stepper.fallback_server_steps:>8d} fallback "
            f"server-steps over {stepper.step_count} ticks "
            f"({per_tick:.2f}/tick)"
        )
    if transport.group_rounds:
        fast = transport.group_fast_endpoint_calls
        slow = transport.group_fallback_endpoint_calls
        rounds = transport.group_rounds
        lines.append(
            f"control    {slow:>8d} scalar-lane endpoint calls over "
            f"{rounds} group rounds ({slow / rounds:.2f}/round, "
            f"{fast} fast), {transport.group_full_fallbacks} full "
            "group fallbacks"
        )
    if lines:
        print("scalar fallbacks by lane:")
        for line in lines:
            print(f"  {line}")
        print()


def _run_health(args: argparse.Namespace) -> int:
    from repro.chaos import CHAOS_SCENARIOS
    from repro.core.agent import agent_endpoint
    from repro.core.failover import FailoverController
    from repro.core.remote import controller_endpoint
    from repro.economics.scenarios import ECON_SCENARIOS, run_econ_day
    from repro.errors import ConfigurationError

    if args.scenario == "quickstart":
        dynamo, _, _ = _quickstart_deployment(args.seed, args.duration_h)
    elif args.scenario in ECON_SCENARIOS:
        world = run_econ_day(
            args.scenario, seed=args.seed, duration_s=hours(args.duration_h)
        )
        dynamo = world.dynamo
    else:
        run = CHAOS_SCENARIOS[args.scenario](seed=args.seed)
        run.run()
        dynamo = run.dynamo
    try:
        controller = dynamo.controller(args.device)
    except ConfigurationError:
        known = ", ".join(
            sorted(c.name for c in dynamo.hierarchy.all_controllers)
        )
        print(f"no controller for {args.device!r}; known: {known}")
        return 1
    instance = (
        controller.active
        if isinstance(controller, FailoverController)
        else controller
    )
    machine = getattr(instance, "modes", None)
    now_s = dynamo.engine.clock.now
    mode = machine.mode.value if machine is not None else "n/a"
    print(f"{args.device}: mode={mode}")
    if machine is not None:
        print(
            f"invalid streak={machine.consecutive_invalid} "
            f"valid streak={machine.consecutive_valid} "
            f"degraded entries={machine.degraded_entries} "
            f"safe entries={machine.safe_entries} "
            f"deferred uncaps={machine.deferred_uncaps}"
        )
        for time_s, from_mode, to_mode in machine.transitions:
            print(f"  t={time_s:.1f}s {from_mode} -> {to_mode}")
    last_trace = getattr(instance, "last_trace", None)
    if last_trace is not None and last_trace.pulls_attempted:
        measured = last_trace.pulls_attempted - last_trace.pulls_failed
        print(
            f"sensing coverage={last_trace.coverage_fraction:.0%} "
            f"(last cycle: {measured}/{last_trace.pulls_attempted} measured, "
            f"{last_trace.pulls_stale} stale, "
            f"{last_trace.pulls_estimated} estimated, "
            f"{last_trace.disaggregated} disaggregated)"
        )
    if hasattr(instance, "server_ids"):
        endpoints = [agent_endpoint(s) for s in instance.server_ids]
    else:
        endpoints = [
            controller_endpoint(child.name)
            for child in getattr(instance, "children", [])
        ]
    quarantined = dynamo.health.quarantined_endpoints(now_s)
    print(
        f"endpoint health ({len(endpoints)} endpoints, "
        f"{len(quarantined)} quarantined):"
    )
    for endpoint in sorted(endpoints):
        stats = dynamo.health.stats(endpoint)
        line = (
            stats.render(now_s)
            if stats is not None
            else f"{endpoint} no calls recorded"
        )
        if dynamo.resilient_transport is not None:
            line += f" breaker={dynamo.resilient_transport.breaker_state(endpoint)}"
        print(f"  {line}")
    governor = dynamo.economics
    if governor is not None:
        summary = governor.ledger.summary()
        print(
            f"economics: score={governor.last_score:.2f} "
            f"deferring={'yes' if governor.deferring else 'no'} "
            f"cost=${summary['cost']:.2f} "
            f"carbon={summary['carbon_kg']:.1f} kgCO2 "
            f"deferred={summary['deferred_energy_kwh']:.2f} kWh "
            f"sla_misses={summary['sla_deadline_misses']}"
        )
    return 0


def _run_attribute(args: argparse.Namespace) -> int:
    """Per-service power attribution for one leaf device.

    Runs the chosen scenario, then renders where the device's power is
    going by service — measured, stale, and disaggregated readings
    alike, each weighted by its confidence — from the leaf controller's
    reading cache and fitted service models.
    """
    from repro.chaos import CHAOS_SCENARIOS
    from repro.core.failover import FailoverController
    from repro.errors import ConfigurationError
    from repro.estimation import attribute_leaf, render_attribution

    if args.scenario == "quickstart":
        dynamo, _, _ = _quickstart_deployment(args.seed, args.duration_h)
    else:
        run = CHAOS_SCENARIOS[args.scenario](seed=args.seed)
        run.run()
        dynamo = run.dynamo
    leaves = ", ".join(sorted(dynamo.hierarchy.leaf_controllers))
    try:
        controller = dynamo.controller(args.device)
    except ConfigurationError:
        print(f"no controller for {args.device!r}; leaf devices: {leaves}")
        return 1
    instance = (
        controller.active
        if isinstance(controller, FailoverController)
        else controller
    )
    if not hasattr(instance, "server_ids"):
        print(
            f"{args.device!r} is not a leaf device (attribution needs "
            f"per-server readings); leaf devices: {leaves}"
        )
        return 1
    print(render_attribution(args.device, attribute_leaf(instance)))
    return 0


def _run_econ(args: argparse.Namespace) -> int:
    """Run an economics scenario and render its cost/carbon scorecard.

    ``--compare`` runs the governed day and the price-blind day on the
    same seed and renders them side by side, plus the savings delta;
    the exit code then also requires the governed run to introduce no
    extra breaker trips or SLA-deadline misses.
    """
    from repro.economics import (
        build_econ_scorecard,
        render_econ_scorecard,
        run_econ_day,
    )

    duration_s = None if args.hours is None else hours(args.hours)
    modes = [not args.blind]
    if args.compare:
        modes = [True, False]
    scores = []
    for governed in modes:
        world = run_econ_day(
            args.scenario,
            seed=args.seed,
            governed=governed,
            duration_s=duration_s,
            physics_backend=args.physics_backend,
            control_backend=args.control_backend,
        )
        scores.append(build_econ_scorecard(world))
    print(render_econ_scorecard(*scores))
    failed = any(s.breaker_trips for s in scores)
    if args.compare:
        governed_score, blind = scores
        print(
            f"delta (governed - blind): "
            f"${governed_score.cost - blind.cost:+.2f}, "
            f"{governed_score.carbon_kg - blind.carbon_kg:+.1f} kgCO2, "
            f"{governed_score.energy_kwh - blind.energy_kwh:+.1f} kWh"
        )
        safety_ok = (
            governed_score.breaker_trips <= blind.breaker_trips
            and governed_score.sla_deadline_misses
            <= blind.sla_deadline_misses
        )
        print(
            "safety: "
            + (
                "no additional trips or SLA-deadline misses"
                if safety_ok
                else "GOVERNED RUN ADDED TRIPS OR SLA MISSES"
            )
        )
        failed = failed or not safety_ok
    return 1 if failed else 0


def _run_signals(args: argparse.Namespace) -> int:
    """Summarize a named price/carbon series for scenario authoring."""
    from repro.economics.signals import (
        SIGNALS,
        get_signal,
        render_signal_summary,
        summarize_signal,
    )

    if args.name == "list":
        for name in sorted(SIGNALS):
            signal = SIGNALS[name]
            low, high = signal.bounds()
            print(f"{name}: {low:g}..{high:g} {signal.unit}")
        return 0
    signal = get_signal(args.name)
    summary = summarize_signal(
        signal,
        duration_s=hours(args.duration_h),
        interval_s=args.interval_s,
        window_s=hours(args.window_h),
    )
    print(render_signal_summary(summary))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Host the long-running session service until interrupted."""
    from repro.serve import ServeApp, ServeServer
    from repro.serve.sessions import SessionManager

    app = ServeApp(
        SessionManager(
            max_sessions=args.max_sessions,
            default_control_backend=args.control_backend,
        )
    )
    server = ServeServer(app, host=args.host, port=args.port)
    print(
        f"serving on http://{args.host}:{args.port} "
        f"(max {args.max_sessions} sessions); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except OSError as exc:
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    return 0


_RUNNERS = {
    "quickstart": _run_quickstart,
    "ashburn": _run_ashburn,
    "altoona": _run_altoona,
    "hadoop": _run_hadoop,
    "mixedrow": _run_mixedrow,
    "cascade": _run_cascade,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamo (ISCA 2016) reproduction scenarios",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available scenarios")
    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("scenario", choices=SCENARIOS)
    run.add_argument("--servers", type=int, default=150)
    run.add_argument("--duration-h", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--no-dynamo",
        action="store_true",
        help="cascade scenario only: run without Dynamo",
    )
    run.add_argument(
        "--physics-backend",
        default="scalar",
        choices=PHYSICS_BACKENDS,
        help="quickstart scenario only: fleet physics implementation",
    )
    run.add_argument(
        "--control-backend",
        default="scalar",
        choices=CONTROL_BACKENDS,
        help="quickstart scenario only: control-plane dispatch "
        "(vectorized requires --physics-backend vectorized)",
    )
    run.add_argument(
        "--execution-backend",
        default="single",
        choices=EXECUTION_BACKENDS,
        help="quickstart scenario only: in-process or sharded "
        "multi-process execution (sharded requires both vectorized "
        "backends)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes for --execution-backend sharded",
    )
    chaos = sub.add_parser("chaos", help="fault-injection scenarios")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_sub.add_parser("list", help="list chaos scenarios")
    chaos_run = chaos_sub.add_parser(
        "run", help="run a chaos scenario twice and score it"
    )
    from repro.chaos.scenarios import CHAOS_SCENARIOS

    chaos_run.add_argument(
        "scenario",
        nargs="?",
        default=None,
        choices=sorted(CHAOS_SCENARIOS),
        help="scenario to run (optional with --resume)",
    )
    chaos_run.add_argument("--seed", type=int, default=7)
    chaos_run.add_argument(
        "--once",
        action="store_true",
        help="single run, skipping the replay-determinism check",
    )
    chaos_run.add_argument(
        "--resume",
        metavar="SNAPSHOT",
        default=None,
        help="continue a campaign from a mid-campaign snapshot file",
    )
    snapshot = sub.add_parser(
        "snapshot", help="world checkpoint/restore and fork sweeps"
    )
    snapshot_sub = snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )
    snap_save = snapshot_sub.add_parser(
        "save", help="run a world to a point in time and checkpoint it"
    )
    snap_save.add_argument(
        "--scenario",
        default="quickstart",
        choices=["quickstart", *sorted(CHAOS_SCENARIOS)],
    )
    snap_save.add_argument("--seed", type=int, default=0)
    snap_save.add_argument(
        "--at", type=float, default=60.0, help="capture time (sim seconds)"
    )
    snap_save.add_argument("--out", required=True, help="snapshot file path")
    snap_save.add_argument(
        "--physics-backend",
        default="scalar",
        choices=PHYSICS_BACKENDS,
        help="fleet physics implementation baked into the recipe",
    )
    snap_save.add_argument(
        "--control-backend",
        default="scalar",
        choices=CONTROL_BACKENDS,
        help="control-plane dispatch baked into the recipe",
    )
    snap_save.add_argument(
        "--no-traces",
        action="store_true",
        help="drop per-tick traces for a smaller file (fingerprints of "
        "resumed runs then differ in the trace section)",
    )
    snap_restore = snapshot_sub.add_parser(
        "restore", help="restore a snapshot, optionally run further"
    )
    snap_restore.add_argument("path")
    snap_restore.add_argument(
        "--until",
        type=float,
        default=None,
        help="run to this absolute sim time after restoring",
    )
    snap_diff = snapshot_sub.add_parser(
        "diff", help="compare two snapshots section by section"
    )
    snap_diff.add_argument("a")
    snap_diff.add_argument("b")
    snap_sweep = snapshot_sub.add_parser(
        "sweep", help="fork a snapshot into divergent branches and run them"
    )
    snap_sweep.add_argument("path")
    snap_sweep.add_argument("--branches", type=int, default=8)
    snap_sweep.add_argument(
        "--horizon", type=float, default=300.0, help="sim seconds per branch"
    )
    snap_sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (0 or 1 = serial)",
    )
    snap_sweep.add_argument(
        "--json", default=None, help="also write results to this JSON file"
    )
    from repro.economics.scenarios import ECON_SCENARIOS
    from repro.economics.signals import SIGNALS

    trace = sub.add_parser(
        "trace", help="per-tick control-cycle traces for one controller"
    )
    trace.add_argument("device", help="controller/device name, e.g. rpp0.0")
    trace.add_argument(
        "--scenario",
        default="quickstart",
        choices=[
            "quickstart",
            *sorted(CHAOS_SCENARIOS),
            *sorted(ECON_SCENARIOS),
        ],
        help="scenario to run before dumping traces",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--duration-h", type=float, default=0.25)
    trace.add_argument(
        "--last", type=int, default=20, help="show the most recent N ticks"
    )
    profile = sub.add_parser(
        "profile",
        help="per-phase wall-time breakdown and cProfile hot spots",
    )
    profile.add_argument(
        "scenario",
        nargs="?",
        default="quickstart",
        choices=["quickstart", *sorted(CHAOS_SCENARIOS)],
        help="scenario to profile (default: quickstart)",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--duration-h",
        type=float,
        default=0.25,
        help="quickstart scenario only: simulated duration",
    )
    profile.add_argument(
        "--physics-backend",
        default="scalar",
        choices=PHYSICS_BACKENDS,
        help="fleet physics implementation to profile",
    )
    profile.add_argument(
        "--control-backend",
        default="scalar",
        choices=CONTROL_BACKENDS,
        help="control-plane dispatch to profile",
    )
    profile.add_argument(
        "--servers",
        type=int,
        default=None,
        metavar="N",
        help="quickstart scenario only: profile a parametric-size "
        "world with N servers instead of the 36-server quickstart",
    )
    profile.add_argument(
        "--execution-backend",
        default="single",
        choices=EXECUTION_BACKENDS,
        help="in-process or sharded multi-process execution; sharded "
        "prints a per-shard wall-time breakdown instead of cProfile",
    )
    profile.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes for --execution-backend sharded",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        help="cProfile rows to print (cumulative-time order)",
    )
    health = sub.add_parser(
        "health",
        help="operating mode and endpoint health for one controller",
    )
    health.add_argument("device", help="controller/device name, e.g. rpp0.0")
    health.add_argument(
        "--scenario",
        default="quickstart",
        choices=[
            "quickstart",
            *sorted(CHAOS_SCENARIOS),
            *sorted(ECON_SCENARIOS),
        ],
        help="scenario to run before reporting health",
    )
    health.add_argument("--seed", type=int, default=0)
    health.add_argument("--duration-h", type=float, default=0.25)
    attribute = sub.add_parser(
        "attribute",
        help="per-service power attribution for one leaf device",
    )
    attribute.add_argument(
        "device", help="leaf controller/device name, e.g. rpp0"
    )
    attribute.add_argument(
        "--scenario",
        default="sensor-blackout-50",
        choices=["quickstart", *sorted(CHAOS_SCENARIOS)],
        help="scenario to run before attributing power",
    )
    attribute.add_argument("--seed", type=int, default=7)
    attribute.add_argument("--duration-h", type=float, default=0.25)
    econ = sub.add_parser(
        "econ",
        help="run an economics scenario and print its cost/carbon "
        "scorecard",
    )
    econ.add_argument(
        "scenario",
        nargs="?",
        default="price-spike-day",
        choices=sorted(ECON_SCENARIOS),
        help="economics scenario (default: price-spike-day)",
    )
    econ.add_argument("--seed", type=int, default=0)
    econ.add_argument(
        "--hours",
        type=float,
        default=None,
        help="simulated hours (default: the scenario's full day)",
    )
    econ.add_argument(
        "--blind",
        action="store_true",
        help="run the price-blind baseline (metering-only governor)",
    )
    econ.add_argument(
        "--compare",
        action="store_true",
        help="run governed and price-blind on the same seed and render "
        "both columns plus the savings delta",
    )
    econ.add_argument(
        "--physics-backend",
        default="scalar",
        choices=PHYSICS_BACKENDS,
        help="fleet physics implementation",
    )
    econ.add_argument(
        "--control-backend",
        default="scalar",
        choices=CONTROL_BACKENDS,
        help="control-plane dispatch",
    )
    signals = sub.add_parser(
        "signals",
        help="summarize a price/carbon series (or 'list' to enumerate)",
    )
    signals.add_argument(
        "name",
        choices=["list", *sorted(SIGNALS)],
        help="signal name, or 'list' to enumerate the registry",
    )
    signals.add_argument(
        "--duration-h",
        type=float,
        default=24.0,
        help="summary horizon in simulated hours",
    )
    signals.add_argument(
        "--interval-s",
        type=float,
        default=300.0,
        help="sampling interval in seconds",
    )
    signals.add_argument(
        "--window-h",
        type=float,
        default=1.0,
        help="rolling window for cheapest/dirtiest-window detection",
    )
    serve = sub.add_parser(
        "serve", help="host live simulation sessions over HTTP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8640)
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="concurrent session cap (create returns 409 beyond it)",
    )
    serve.add_argument(
        "--control-backend",
        default="scalar",
        choices=CONTROL_BACKENDS,
        help="default control-plane dispatch for scenario sessions "
        "whose spec omits control_backend",
    )
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name in SCENARIOS:
            print(name)
        return 0
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "snapshot":
        return _run_snapshot(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "health":
        return _run_health(args)
    if args.command == "attribute":
        return _run_attribute(args)
    if args.command == "econ":
        return _run_econ(args)
    if args.command == "signals":
        return _run_signals(args)
    if args.command == "serve":
        return _run_serve(args)
    return _RUNNERS[args.scenario](args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Operational failures exit nonzero with a one-line message on
    stderr instead of a traceback: snapshot-file problems (missing,
    corrupted, wrong schema version) exit 2, any other library error
    exits 1.  Tracebacks still surface for genuine bugs
    (non-:class:`~repro.errors.ReproError` exceptions).
    """
    from repro.errors import (
        ReproError,
        SnapshotError,
        SnapshotIntegrityError,
        SnapshotVersionError,
    )

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except FileNotFoundError as exc:
        print(f"repro: file not found: {exc.filename or exc}", file=sys.stderr)
        return 2
    except SnapshotVersionError as exc:
        print(
            f"repro: incompatible snapshot: {exc}\n"
            "repro: re-capture it with 'repro snapshot save' from this "
            "version of the code",
            file=sys.stderr,
        )
        return 2
    except SnapshotIntegrityError as exc:
        print(
            f"repro: corrupted snapshot: {exc}\n"
            "repro: the file was truncated or edited after capture; "
            "re-capture or restore from a good copy",
            file=sys.stderr,
        )
        return 2
    except SnapshotError as exc:
        print(f"repro: snapshot error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
