"""Command-line interface: run scenarios and inspect results.

Usage::

    python -m repro list
    python -m repro run quickstart
    python -m repro run ashburn --duration-h 2
    python -m repro run altoona
    python -m repro run hadoop --servers 100 --duration-h 6
    python -m repro run cascade
    python -m repro chaos list
    python -m repro chaos run sb-outage --seed 7
    python -m repro trace rpp0.0 --scenario quickstart --last 10
    python -m repro trace sb0.0 --scenario sb-outage --seed 7
    python -m repro health rpp0 --scenario flaky-fabric-recovery --seed 7

Each scenario prints a short report; exit code is 0 when the run's
safety invariant (no breaker trips) holds.  ``chaos run`` additionally
executes the scenario twice and requires byte-identical injection
timelines (the replay-determinism contract).  ``trace`` runs a scenario
and prints one controller's per-tick sense→aggregate→decide→actuate
:class:`~repro.telemetry.tracing.TickTrace` records plus their
aggregated metrics.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.multidc import build_region
from repro.analysis.scenarios import (
    altoona_outage_recovery,
    ashburn_load_test,
    mixed_service_row,
    prineville_hadoop_turbo,
)
from repro.units import hours, to_kilowatts

SCENARIOS = ("quickstart", "ashburn", "altoona", "hadoop", "mixedrow", "cascade")


def _quickstart_deployment(seed: int, duration_h: float):
    """Build, run, and return the quickstart deployment pieces."""
    from repro import (
        DataCenterSpec,
        Dynamo,
        FleetDriver,
        RngStreams,
        ServiceAllocation,
        SimulationEngine,
        build_datacenter,
        plan_quotas,
        populate_fleet,
    )

    engine = SimulationEngine()
    topology = build_datacenter(
        DataCenterSpec(msb_count=1, sbs_per_msb=2, rpps_per_sb=2, racks_per_rpp=3)
    )
    plan_quotas(topology)
    rng = RngStreams(seed)
    fleet = populate_fleet(
        topology,
        [ServiceAllocation("web", 24), ServiceAllocation("cache", 12)],
        rng,
    )
    dynamo = Dynamo(engine, topology, fleet, rng_streams=rng.fork("dynamo"))
    driver = FleetDriver(engine, topology, fleet)
    driver.start()
    dynamo.start()
    engine.run_until(hours(duration_h))
    return dynamo, driver, topology


def _run_quickstart(args: argparse.Namespace) -> int:
    dynamo, driver, topology = _quickstart_deployment(
        args.seed, args.duration_h
    )
    print(
        f"ran {args.duration_h} h: power {to_kilowatts(topology.total_power_w()):.1f} KW, "
        f"{dynamo.total_cap_events()} cap events, {len(driver.trips)} trips"
    )
    return 1 if driver.trips else 0


def _run_ashburn(args: argparse.Namespace) -> int:
    scenario = ashburn_load_test(server_count=args.servers, seed=args.seed)
    scenario.start()
    scenario.run_until(hours(8) + hours(args.duration_h))
    controller = scenario.dynamo.leaf_controller("rpp0")
    print(
        f"PDU peak {to_kilowatts(controller.aggregate_series.max()):.1f} KW, "
        f"{controller.cap_events} cap / {controller.uncap_events} uncap "
        f"events, {len(scenario.driver.trips)} trips"
    )
    return 1 if scenario.driver.trips else 0


def _run_altoona(args: argparse.Namespace) -> int:
    scenario = altoona_outage_recovery(seed=args.seed)
    scenario.start()
    scenario.run_until(hours(14) + 600.0)
    sb = scenario.dynamo.controller("sb0")
    capped_rows = [
        n
        for n, leaf in scenario.dynamo.hierarchy.leaf_controllers.items()
        if leaf.cap_events > 0
    ]
    print(
        f"SB peak {to_kilowatts(sb.aggregate_series.max()):.1f} KW / "
        f"{to_kilowatts(sb.device.rated_power_w):.0f} KW, rows capped "
        f"{sorted(capped_rows)}, {len(scenario.driver.trips)} trips"
    )
    return 1 if scenario.driver.trips else 0


def _run_hadoop(args: argparse.Namespace) -> int:
    scenario = prineville_hadoop_turbo(
        server_count=args.servers, seed=args.seed
    )
    scenario.start()
    scenario.run_until(hours(args.duration_h))
    sb = scenario.dynamo.controller("sb0")
    print(
        f"SB mean {to_kilowatts(sb.aggregate_series.mean()):.1f} / rating "
        f"{to_kilowatts(scenario.extras['sb_rating_w']):.1f} KW, "
        f"{sb.uncap_events} capping episodes, "
        f"{len(scenario.driver.trips)} trips"
    )
    return 1 if scenario.driver.trips else 0


def _run_mixedrow(args: argparse.Namespace) -> int:
    scenario = mixed_service_row(seed=args.seed)
    controller = scenario.dynamo.leaf_controller("rpp0")
    scenario.start()
    trigger_on = hours(13) + 50 * 60
    scenario.engine.schedule_at(
        trigger_on, lambda: controller.set_contractual_limit_w(95_000.0)
    )
    scenario.engine.schedule_at(
        hours(14) + 120, lambda: controller.clear_contractual_limit()
    )
    scenario.run_until(hours(14) + 600)
    capped_cache = sum(
        1 for s in scenario.extras["cache_servers"] if s.rapl.capped
    )
    print(
        f"{controller.cap_events} cap events; cache servers capped: "
        f"{capped_cache} (must be 0); trips {len(scenario.driver.trips)}"
    )
    return 1 if (scenario.driver.trips or capped_cache) else 0


def _run_cascade(args: argparse.Namespace) -> int:
    region = build_region(with_dynamo=not args.no_dynamo, seed=args.seed)
    region.start()
    region.engine.run_until(300.0)
    region.fail_site("dc0")
    region.engine.run_until(1200.0)
    tripped = region.tripped_sites()
    print(
        f"site dc0 failed at t=300 s; cascaded sites: {tripped or 'none'}"
    )
    return 1 if tripped else 0


def _run_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import CHAOS_SCENARIOS, build_scorecard, render_scorecard

    if args.chaos_command == "list":
        for name in sorted(CHAOS_SCENARIOS):
            print(name)
        return 0

    builder = CHAOS_SCENARIOS[args.scenario]
    fingerprints: list[str] = []
    score = None
    for _ in range(1 if args.once else 2):
        run = builder(seed=args.seed)
        run.run()
        fingerprints.append(run.fingerprint())
        score = build_scorecard(run)
    assert score is not None
    print(render_scorecard(score))
    deterministic = len(set(fingerprints)) == 1
    if not args.once:
        print(
            "replay determinism: "
            + ("byte-identical timelines" if deterministic else "DIVERGED")
        )
        if not deterministic:
            print("--- run 1 ---", fingerprints[0], sep="\n")
            print("--- run 2 ---", fingerprints[1], sep="\n")
    return 0 if (deterministic and score.breaker_trips == 0) else 1


def _run_trace(args: argparse.Namespace) -> int:
    from repro.chaos import CHAOS_SCENARIOS

    if args.scenario == "quickstart":
        dynamo, _, _ = _quickstart_deployment(args.seed, args.duration_h)
    else:
        run = CHAOS_SCENARIOS[args.scenario](seed=args.seed)
        run.run()
        dynamo = run.dynamo
    traces = dynamo.traces.for_controller(args.device, args.last)
    if not traces:
        known = ", ".join(dynamo.traces.controllers()) or "none"
        print(
            f"no traces recorded for {args.device!r}; "
            f"traced controllers: {known}"
        )
        return 1
    for trace in traces:
        print(trace.render())
    print()
    for metric, value in dynamo.traces.metrics(args.device).rows():
        print(f"{metric}: {value}")
    return 0


def _run_health(args: argparse.Namespace) -> int:
    from repro.chaos import CHAOS_SCENARIOS
    from repro.core.agent import agent_endpoint
    from repro.core.failover import FailoverController
    from repro.core.remote import controller_endpoint
    from repro.errors import ConfigurationError

    if args.scenario == "quickstart":
        dynamo, _, _ = _quickstart_deployment(args.seed, args.duration_h)
    else:
        run = CHAOS_SCENARIOS[args.scenario](seed=args.seed)
        run.run()
        dynamo = run.dynamo
    try:
        controller = dynamo.controller(args.device)
    except ConfigurationError:
        known = ", ".join(
            sorted(c.name for c in dynamo.hierarchy.all_controllers)
        )
        print(f"no controller for {args.device!r}; known: {known}")
        return 1
    instance = (
        controller.active
        if isinstance(controller, FailoverController)
        else controller
    )
    machine = getattr(instance, "modes", None)
    now_s = dynamo.engine.clock.now
    mode = machine.mode.value if machine is not None else "n/a"
    print(f"{args.device}: mode={mode}")
    if machine is not None:
        print(
            f"invalid streak={machine.consecutive_invalid} "
            f"valid streak={machine.consecutive_valid} "
            f"degraded entries={machine.degraded_entries} "
            f"safe entries={machine.safe_entries} "
            f"deferred uncaps={machine.deferred_uncaps}"
        )
        for time_s, from_mode, to_mode in machine.transitions:
            print(f"  t={time_s:.1f}s {from_mode} -> {to_mode}")
    if hasattr(instance, "server_ids"):
        endpoints = [agent_endpoint(s) for s in instance.server_ids]
    else:
        endpoints = [
            controller_endpoint(child.name)
            for child in getattr(instance, "children", [])
        ]
    quarantined = dynamo.health.quarantined_endpoints(now_s)
    print(
        f"endpoint health ({len(endpoints)} endpoints, "
        f"{len(quarantined)} quarantined):"
    )
    for endpoint in sorted(endpoints):
        stats = dynamo.health.stats(endpoint)
        line = (
            stats.render(now_s)
            if stats is not None
            else f"{endpoint} no calls recorded"
        )
        if dynamo.resilient_transport is not None:
            line += f" breaker={dynamo.resilient_transport.breaker_state(endpoint)}"
        print(f"  {line}")
    return 0


_RUNNERS = {
    "quickstart": _run_quickstart,
    "ashburn": _run_ashburn,
    "altoona": _run_altoona,
    "hadoop": _run_hadoop,
    "mixedrow": _run_mixedrow,
    "cascade": _run_cascade,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamo (ISCA 2016) reproduction scenarios",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available scenarios")
    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("scenario", choices=SCENARIOS)
    run.add_argument("--servers", type=int, default=150)
    run.add_argument("--duration-h", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--no-dynamo",
        action="store_true",
        help="cascade scenario only: run without Dynamo",
    )
    chaos = sub.add_parser("chaos", help="fault-injection scenarios")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_sub.add_parser("list", help="list chaos scenarios")
    chaos_run = chaos_sub.add_parser(
        "run", help="run a chaos scenario twice and score it"
    )
    from repro.chaos.scenarios import CHAOS_SCENARIOS

    chaos_run.add_argument("scenario", choices=sorted(CHAOS_SCENARIOS))
    chaos_run.add_argument("--seed", type=int, default=7)
    chaos_run.add_argument(
        "--once",
        action="store_true",
        help="single run, skipping the replay-determinism check",
    )
    trace = sub.add_parser(
        "trace", help="per-tick control-cycle traces for one controller"
    )
    trace.add_argument("device", help="controller/device name, e.g. rpp0.0")
    trace.add_argument(
        "--scenario",
        default="quickstart",
        choices=["quickstart", *sorted(CHAOS_SCENARIOS)],
        help="scenario to run before dumping traces",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--duration-h", type=float, default=0.25)
    trace.add_argument(
        "--last", type=int, default=20, help="show the most recent N ticks"
    )
    health = sub.add_parser(
        "health",
        help="operating mode and endpoint health for one controller",
    )
    health.add_argument("device", help="controller/device name, e.g. rpp0.0")
    health.add_argument(
        "--scenario",
        default="quickstart",
        choices=["quickstart", *sorted(CHAOS_SCENARIOS)],
        help="scenario to run before reporting health",
    )
    health.add_argument("--seed", type=int, default=0)
    health.add_argument("--duration-h", type=float, default=0.25)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in SCENARIOS:
            print(name)
        return 0
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "health":
        return _run_health(args)
    return _RUNNERS[args.scenario](args)


if __name__ == "__main__":
    sys.exit(main())
