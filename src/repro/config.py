"""Central configuration dataclasses with defaults taken from the paper.

Every tunable in the reproduction lives here so experiments can be described
as configuration deltas.  The defaults reproduce the deployment the paper
describes:

* leaf controllers pull power every 3 s; upper controllers every 9 s (3x),
* the three-band algorithm caps at 99% of the breaker limit, targets 95%,
  and uncaps below a configurable lower threshold,
* the high-bucket-first allocator uses 20 W buckets,
* RAPL capping settles in roughly 2 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThreeBandConfig:
    """Thresholds for the three-band capping/uncapping algorithm (Fig 10).

    All three values are fractions of the device power limit.  The paper
    uses a capping threshold of 99% of the breaker limit and a capping
    target "conservatively chosen to be 5% below the breaker limit".
    """

    capping_threshold: float = 0.99
    capping_target: float = 0.95
    uncapping_threshold: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 < self.uncapping_threshold < self.capping_target:
            raise ConfigurationError(
                "uncapping threshold must lie strictly below the capping target"
            )
        if not self.capping_target < self.capping_threshold <= 1.0:
            raise ConfigurationError(
                "capping target must lie strictly below the capping threshold"
            )


@dataclass(frozen=True)
class OperatingModeConfig:
    """Degraded-mode state machine (NORMAL → DEGRADED → SAFE) knobs.

    A controller escalates after consecutive invalid cycles: DEGRADED
    defers uncapping and widens alerting; SAFE additionally applies a
    conservative fail-safe cap at the capping target.  Recovery walks
    back one level per ``recovery_valid_cycles`` consecutive valid
    cycles (hysteresis, so one good cycle amid a storm does not bounce
    the posture).
    """

    enabled: bool = True
    degraded_after_invalid_cycles: int = 3
    safe_after_invalid_cycles: int = 6
    recovery_valid_cycles: int = 5

    def __post_init__(self) -> None:
        if self.degraded_after_invalid_cycles < 1:
            raise ConfigurationError(
                "degraded escalation threshold must be >= 1 invalid cycle"
            )
        if self.safe_after_invalid_cycles <= self.degraded_after_invalid_cycles:
            raise ConfigurationError(
                "safe escalation threshold must exceed the degraded threshold"
            )
        if self.recovery_valid_cycles < 1:
            raise ConfigurationError(
                "recovery hysteresis must be >= 1 valid cycle"
            )


@dataclass(frozen=True)
class EstimationConfig:
    """Online power-disaggregation for degraded sensing (WattScope-style).

    When enabled, a leaf controller whose pull-failure fraction exceeds
    ``ControllerConfig.max_reading_failure_fraction`` no longer aborts
    the cycle outright.  Instead it distributes the device-metering
    residual (breaker-side aggregate minus the sum of measured servers)
    across the dark servers, weighted by per-service utilisation→power
    models fitted from healthy readings, and keeps capping against an
    uncertainty-inflated total in the SENSOR_DEGRADED posture.  Only
    when coverage drops below ``safe_coverage`` does the controller give
    up the cycle and let the legacy invalid-cycle escalation reach SAFE.

    Disabled by default: the paper's 20%-abort rule stays the reference
    behaviour, and fully healthy runs are bit-identical either way.
    """

    enabled: bool = False
    #: Below this measured+stale coverage the estimate is not trusted:
    #: the cycle is invalid and the controller escalates toward SAFE.
    safe_coverage: float = 0.40
    #: EWMA smoothing for the per-service mean-power models and their
    #: relative fit error.
    ewma_alpha: float = 0.2
    #: Aggregate margin per uncertain watt: the sensed total grows by
    #: ``inflation * sum(power * (1 - confidence))`` over uncertain
    #: readings, so degraded sensing can only over-cap, never under-cap.
    uncertainty_inflation: float = 1.5
    #: Confidence floor for model-estimated and stale readings.
    min_confidence: float = 0.05
    #: Last-resort per-server estimate when no model data exists.
    default_power_w: float = 200.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.safe_coverage <= 1.0:
            raise ConfigurationError(
                "safe coverage must be within [0, 1]"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                "estimation EWMA alpha must be within (0, 1]"
            )
        if self.uncertainty_inflation < 0.0:
            raise ConfigurationError(
                "uncertainty inflation cannot be negative"
            )
        if not 0.0 <= self.min_confidence < 1.0:
            raise ConfigurationError(
                "minimum confidence must be within [0, 1)"
            )
        if self.default_power_w <= 0.0:
            raise ConfigurationError(
                "default estimated power must be positive"
            )


@dataclass(frozen=True)
class EconomicsConfig:
    """Price/carbon-aware headroom shaping (the economics subsystem).

    When enabled, an :class:`~repro.economics.governor.EconomicGovernor`
    periodically scores the moment's electricity price and grid carbon
    intensity, and during expensive/dirty windows shapes *deferrable*
    demand: batch workloads are deferred (utilization ceiling + Turbo
    disabled) and leaf controllers receive tightened advisory three-band
    configs via ``set_band_config``.  Shaping is advisory only — bands
    are scaled by at most ``max_shaping`` and never loosened, SAFE /
    SENSOR_DEGRADED postures take precedence, and deferral is bounded by
    SLA deadline floors.

    Disabled by default: economics-off runs are bit-identical to runs
    built before the subsystem existed.
    """

    enabled: bool = False
    #: How often the governor re-scores the signals and re-shapes.
    governor_interval_s: float = 60.0
    #: Named entries in :data:`repro.economics.signals.SIGNALS`.
    price_signal: str = "price-diurnal"
    carbon_signal: str = "carbon-diurnal"
    #: Relative weights of the normalized price and carbon scores in the
    #: composite (renormalized to sum to 1).
    price_weight: float = 0.6
    carbon_weight: float = 0.4
    #: Composite score in [0, 1] above which shaping begins.
    shape_threshold: float = 0.55
    #: Deepest fractional cut water-filling may take from the fleet
    #: demand budget; also the floor on advisory band scaling (bands
    #: never scale below ``1 - max_shaping`` of baseline).
    max_shaping: float = 0.25
    #: Utilization ceiling applied to deferrable batch workloads while
    #: their priority group is being shaped.
    defer_ceiling: float = 0.40
    #: SLA deadline window for deferred batch work.
    sla_deadline_s: float = 86400.0
    #: At most this fraction of a deadline window may be spent deferred;
    #: beyond it the governor force-releases and counts a deadline miss.
    sla_max_defer_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.governor_interval_s <= 0:
            raise ConfigurationError("governor interval must be positive")
        if not self.price_signal or not self.carbon_signal:
            raise ConfigurationError("signal names cannot be empty")
        if self.price_weight < 0 or self.carbon_weight < 0:
            raise ConfigurationError("signal weights cannot be negative")
        if self.price_weight + self.carbon_weight <= 0:
            raise ConfigurationError("at least one signal weight must be > 0")
        if not 0.0 <= self.shape_threshold < 1.0:
            raise ConfigurationError("shape threshold must be within [0, 1)")
        if not 0.0 < self.max_shaping < 1.0:
            raise ConfigurationError("max shaping must be within (0, 1)")
        if not 0.0 < self.defer_ceiling <= 1.0:
            raise ConfigurationError("defer ceiling must be within (0, 1]")
        if self.sla_deadline_s <= 0:
            raise ConfigurationError("SLA deadline window must be positive")
        if not 0.0 < self.sla_max_defer_fraction <= 1.0:
            raise ConfigurationError(
                "SLA max defer fraction must be within (0, 1]"
            )


@dataclass(frozen=True)
class CallPolicyConfig:
    """Per-call resilience policy: deadline, retries, backoff.

    Backoff delays follow ``base * multiplier**(retry-1)`` capped at
    ``backoff_max_s`` with a deterministic jitter of up to
    ``±jitter_fraction`` drawn from the simulation RNG, so two runs of
    the same seed retry on the identical schedule.
    """

    deadline_s: float = 1.0
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 1.0
    jitter_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ConfigurationError("call deadline must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter fraction must be within [0, 1)")


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Per-endpoint circuit-breaker thresholds.

    The breaker trips on either ``consecutive_failure_threshold``
    attempt failures in a row or a failure rate of at least
    ``failure_rate_threshold`` over the last ``window_size`` attempts
    (once ``min_samples`` have been seen).  While open it rejects calls
    until ``open_duration_s`` elapses, then half-opens and lets one
    probe through.  The default zero open window means the very next
    call probes: a tripped endpoint loses its retry burst but recovery
    is detected on the first post-repair call — the breaker never makes
    a healed endpoint look dead.
    """

    consecutive_failure_threshold: int = 12
    failure_rate_threshold: float = 0.6
    window_size: int = 40
    min_samples: int = 25
    open_duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.consecutive_failure_threshold < 1:
            raise ConfigurationError(
                "consecutive failure threshold must be >= 1"
            )
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ConfigurationError(
                "failure rate threshold must be within (0, 1]"
            )
        if self.window_size < self.min_samples or self.min_samples < 1:
            raise ConfigurationError(
                "breaker window must hold at least min_samples (>= 1) attempts"
            )
        if self.open_duration_s < 0:
            raise ConfigurationError("open duration cannot be negative")


@dataclass(frozen=True)
class ResilienceConfig:
    """The RPC resilience layer between controllers and the transport."""

    enabled: bool = True
    call: CallPolicyConfig = field(default_factory=CallPolicyConfig)
    breaker: CircuitBreakerConfig = field(default_factory=CircuitBreakerConfig)
    #: Quarantine an endpoint after this many full (closed → open)
    #: breaker trips; 0 disables quarantining.
    quarantine_after_opens: int = 3
    quarantine_duration_s: float = 120.0

    def __post_init__(self) -> None:
        if self.quarantine_after_opens < 0:
            raise ConfigurationError("quarantine trip count cannot be negative")
        if self.quarantine_duration_s < 0:
            raise ConfigurationError("quarantine duration cannot be negative")


@dataclass(frozen=True)
class ControllerConfig:
    """Timing and robustness parameters for Dynamo controllers."""

    leaf_pull_interval_s: float = 3.0
    upper_pull_interval_s: float = 9.0
    rpc_timeout_s: float = 1.0
    max_reading_failure_fraction: float = 0.20
    #: Serve a cached last-known-good reading for a failed pull when it
    #: is at most this old (stale-tolerant sensing); 0 disables the
    #: cache and failed pulls go straight to neighbour estimation.
    reading_cache_ttl_s: float = 0.0
    three_band: ThreeBandConfig = field(default_factory=ThreeBandConfig)
    mode: OperatingModeConfig = field(default_factory=OperatingModeConfig)
    estimation: EstimationConfig = field(default_factory=EstimationConfig)

    def __post_init__(self) -> None:
        if self.reading_cache_ttl_s < 0:
            raise ConfigurationError("reading cache TTL cannot be negative")
        if self.leaf_pull_interval_s <= 2.0:
            # Figure 9: RAPL takes ~2 s to settle; sampling faster than
            # that yields unstable readings.
            raise ConfigurationError(
                "leaf pull interval must exceed the 2 s RAPL settling time"
            )
        if self.upper_pull_interval_s < self.leaf_pull_interval_s:
            raise ConfigurationError(
                "upper-level pull interval must be >= the leaf pull interval"
            )
        if not 0.0 <= self.max_reading_failure_fraction <= 1.0:
            raise ConfigurationError(
                "max reading failure fraction must be within [0, 1]"
            )


@dataclass(frozen=True)
class BucketConfig:
    """High-bucket-first allocation parameters (Section III-C3).

    The paper finds bucket sizes between 10 and 30 W work well and deploys
    20 W buckets.
    """

    bucket_width_w: float = 20.0

    def __post_init__(self) -> None:
        if self.bucket_width_w <= 0:
            raise ConfigurationError("bucket width must be positive")


@dataclass(frozen=True)
class RaplConfig:
    """Behaviour of the simulated RAPL power-limiting module."""

    settling_time_s: float = 2.0
    min_limit_w: float = 50.0
    enforcement_slack_w: float = 1.0

    def __post_init__(self) -> None:
        if self.settling_time_s <= 0:
            raise ConfigurationError("settling time must be positive")
        if self.min_limit_w < 0:
            raise ConfigurationError("minimum RAPL limit cannot be negative")


@dataclass(frozen=True)
class AgentConfig:
    """Per-server Dynamo agent parameters.

    The watchdog fields govern the restart policy: an agent that keeps
    failing health checks is restarted with exponential backoff
    (``base * 2**(n-1)`` seconds after its n-th consecutive restart,
    capped at ``watchdog_backoff_max_s``) and at most
    ``watchdog_restart_budget`` restarts per
    ``watchdog_budget_window_s`` window, so a crash-looping agent cannot
    consume the watchdog forever.
    """

    rapl: RaplConfig = field(default_factory=RaplConfig)
    sensor_noise_fraction: float = 0.005
    watchdog_interval_s: float = 30.0
    watchdog_backoff_base_s: float = 30.0
    watchdog_backoff_max_s: float = 480.0
    watchdog_restart_budget: int = 8
    watchdog_budget_window_s: float = 900.0

    def __post_init__(self) -> None:
        if self.watchdog_backoff_base_s < 0 or self.watchdog_backoff_max_s < 0:
            raise ConfigurationError("watchdog backoff times cannot be negative")
        if self.watchdog_restart_budget < 1:
            raise ConfigurationError("watchdog restart budget must be >= 1")
        if self.watchdog_budget_window_s <= 0:
            raise ConfigurationError("watchdog budget window must be positive")


#: Physics backends the fleet driver can step servers with.
PHYSICS_BACKENDS = ("scalar", "vectorized")

#: Control-plane backends (agent sensing and RAPL actuation).
CONTROL_BACKENDS = ("scalar", "vectorized")

#: Execution backends: one process, or a sharded worker-process fleet.
EXECUTION_BACKENDS = ("single", "sharded")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet physics stepping and control-plane dispatch behaviour.

    ``physics_backend`` selects how the driver advances server state
    each tick: ``"scalar"`` steps each :class:`~repro.server.server.Server`
    object in Python (the reference implementation), ``"vectorized"``
    packs per-server state into structure-of-arrays and advances the
    whole fleet with numpy ops.  The two backends are bit-identical by
    contract (enforced by the parity tests); vectorized is faster from a
    few hundred servers up.  ``prefetch_draws`` is the per-server block
    size of pre-drawn workload-noise normals in the vectorized backend;
    it trades refill frequency against rewind cost on foreign draws and
    has no effect on results.

    ``control_backend`` does the same for the control plane:
    ``"vectorized"`` packs per-agent state into an
    :class:`~repro.core.agent_batch.AgentBatch` and dispatches the leaf
    controllers' ``read_power``/``set_cap`` fan-outs as batched array
    operations, with per-endpoint scalar fallback preserving chaos and
    resilience semantics draw-for-draw.  It requires the vectorized
    physics backend (batched reads load straight from the stepper's
    power array).

    ``execution_backend`` selects the process topology: ``"single"``
    runs everything in one process; ``"sharded"`` partitions the fleet
    across ``shards`` persistent worker processes, each stepping and
    leaf-controlling its own slice (see :mod:`repro.sharding`), with
    compact per-shard aggregates flowing to the upper controllers in
    the parent.  Sharded execution requires both vectorized backends
    and is bit-identical to single-process by contract.
    """

    physics_backend: str = "scalar"
    prefetch_draws: int = 64
    control_backend: str = "scalar"
    execution_backend: str = "single"
    #: Worker-process count for ``execution_backend="sharded"``.
    shards: int = 1
    #: Whether leaf controllers can read device/breaker-side metering
    #: (``PowerDevice.power_w``).  The disaggregation estimator needs it
    #: for the aggregate residual; with metering unavailable an enabled
    #: estimator is detached and degraded sensing falls back to the
    #: paper's abort-and-alert rule.
    device_metering: bool = True

    def __post_init__(self) -> None:
        if self.physics_backend not in PHYSICS_BACKENDS:
            known = ", ".join(PHYSICS_BACKENDS)
            raise ConfigurationError(
                f"unknown physics backend {self.physics_backend!r}; "
                f"known: {known}"
            )
        if self.prefetch_draws < 1:
            raise ConfigurationError("prefetch block must hold >= 1 draw")
        if self.control_backend not in CONTROL_BACKENDS:
            known = ", ".join(CONTROL_BACKENDS)
            raise ConfigurationError(
                f"unknown control backend {self.control_backend!r}; "
                f"known: {known}"
            )
        if (
            self.control_backend == "vectorized"
            and self.physics_backend != "vectorized"
        ):
            raise ConfigurationError(
                "vectorized control requires the vectorized physics "
                "backend (batched sensing reads the stepper's buffers)"
            )
        if self.execution_backend not in EXECUTION_BACKENDS:
            known = ", ".join(EXECUTION_BACKENDS)
            raise ConfigurationError(
                f"unknown execution backend {self.execution_backend!r}; "
                f"known: {known}"
            )
        if self.shards < 1:
            raise ConfigurationError("shard count must be >= 1")
        if self.execution_backend == "sharded" and (
            self.physics_backend != "vectorized"
            or self.control_backend != "vectorized"
        ):
            raise ConfigurationError(
                "sharded execution requires physics_backend='vectorized' "
                "and control_backend='vectorized' (workers step and sense "
                "their shard through the packed arrays)"
            )


@dataclass(frozen=True)
class SnapshotConfig:
    """World checkpoint/restore behaviour.

    ``include_traces`` controls whether per-tick control-cycle traces
    ride along in a snapshot.  Dropping them keeps snapshot files small
    for fork sweeps but makes resumed-run fingerprints differ from an
    uninterrupted run in the trace section, so bit-exact verification
    keeps it on.  ``fork_stream`` names the RNG namespace branch seeds
    are derived from in :func:`repro.state.fork.fork_world`.
    """

    include_traces: bool = True
    fork_stream: str = "branch"

    def __post_init__(self) -> None:
        if not self.fork_stream:
            raise ConfigurationError("fork stream name cannot be empty")


@dataclass(frozen=True)
class DynamoConfig:
    """Top-level configuration for a Dynamo deployment."""

    controller: ControllerConfig = field(default_factory=ControllerConfig)
    bucket: BucketConfig = field(default_factory=BucketConfig)
    agent: AgentConfig = field(default_factory=AgentConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    snapshot: SnapshotConfig = field(default_factory=SnapshotConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)
    economics: EconomicsConfig = field(default_factory=EconomicsConfig)
    # The paper skips rack-level controllers in the Facebook deployment
    # (footnote 2): leaf controllers sit at the RPP / PDU-breaker level.
    leaf_level: str = "rpp"
    enable_backup_controllers: bool = True


DEFAULT_CONFIG = DynamoConfig()
