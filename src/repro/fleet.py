"""Fleet construction and simulation driving.

Glues the substrates together: builds servers (platform + workload) under
a power topology, attaches them as device loads, and steps the whole
physical world — servers and breakers — on a fixed interval, underneath
whatever controllers are (or are not) running.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.config import PHYSICS_BACKENDS, AgentConfig
from repro.core.coordinator import PRIORITY_FLEET_STEP
from repro.errors import ConfigurationError
from repro.power.device import DeviceLevel, PowerDevice
from repro.power.topology import PowerTopology
from repro.server.platform import HASWELL_2015, ServerPlatform
from repro.server.rapl import RaplModule
from repro.server.server import Server
from repro.server.vectorized import VectorizedFleetStepper
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess
from repro.simulation.rng import RngStreams
from repro.workloads.registry import make_workload


@dataclass(frozen=True)
class ServiceAllocation:
    """How many servers of one service to place, and on what hardware."""

    service: str
    count: int
    platform: ServerPlatform = HASWELL_2015
    turbo_enabled: bool = False

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError("service count cannot be negative")


@dataclass
class Fleet:
    """All servers of a deployment, indexed by id.

    Lookups that used to scan every server — ``by_service``,
    ``capped_servers``, ``total_power_w`` — are served from indexes:
    a lazily built service map, a capped set maintained by RAPL
    limit-change listeners, and (on the vectorized backend) a reduction
    over the packed power array.  The indexes guard on fleet size so
    worlds that assemble ``servers`` by direct dict assignment stay
    correct; they are rebuilt on the first query after membership
    changes.
    """

    servers: dict[str, Server] = field(default_factory=dict)

    # Index state (plain class attributes, not dataclass fields).
    _service_index = None
    _service_index_len = -1
    _capped_ids = None
    _capped_ids_len = -1
    #: Set by the driver when the vectorized backend is active.
    _stepper = None

    def by_service(self, service: str) -> list[Server]:
        """Servers running one service."""
        index = self._service_index
        if index is None or self._service_index_len != len(self.servers):
            index = {}
            for s in self.servers.values():
                index.setdefault(s.service, []).append(s)
            self._service_index = index
            self._service_index_len = len(self.servers)
        return list(index.get(service, ()))

    def server(self, server_id: str) -> Server:
        """Look up one server."""
        try:
            return self.servers[server_id]
        except KeyError:
            raise ConfigurationError(f"no server {server_id!r}") from None

    @property
    def server_ids(self) -> list[str]:
        """All server identifiers."""
        return list(self.servers)

    def total_power_w(self) -> float:
        """Instantaneous fleet power."""
        if self._stepper is not None and len(self.servers) == self._stepper._n:
            return self._stepper.total_power()
        return sum(s.power_w() for s in self.servers.values())

    def capped_servers(self) -> list[Server]:
        """Servers currently holding a RAPL limit (cap-time order)."""
        capped = self._capped_ids
        if capped is None or self._capped_ids_len != len(self.servers):
            capped = {}
            for sid, s in self.servers.items():
                rapl = s.rapl
                if getattr(rapl, "_fleet_capped_owner", None) is not self:
                    rapl._fleet_capped_owner = self

                    def _hook(r: RaplModule, sid: str = sid) -> None:
                        self._on_limit_change(sid, r)

                    rapl.add_limit_listener(_hook)
                if rapl.capped:
                    capped[sid] = None
            self._capped_ids = capped
            self._capped_ids_len = len(self.servers)
        return [self.servers[sid] for sid in capped]

    def _on_limit_change(self, server_id: str, rapl: RaplModule) -> None:
        capped = self._capped_ids
        if capped is None:
            return
        if rapl.capped:
            capped[server_id] = None
        else:
            capped.pop(server_id, None)


def populate_fleet(
    topology: PowerTopology,
    allocations: list[ServiceAllocation],
    rng_streams: RngStreams,
    *,
    attach_level: DeviceLevel | None = None,
    agent_config: AgentConfig | None = None,
) -> Fleet:
    """Create servers and attach them round-robin under the topology.

    Servers are attached to devices at ``attach_level`` (default: the
    deepest level present — racks when the topology has them, otherwise
    RPPs), cycling across those devices so every leaf sees a mix of
    services, which is what the paper's rows look like (Figure 15's RPP
    carries web, cache, and feed servers together).
    """
    attach_points = _attach_points(topology, attach_level)
    fleet = Fleet()
    agent_config = agent_config or AgentConfig()
    slot = 0
    for allocation in allocations:
        for i in range(allocation.count):
            server_id = f"{allocation.service}-{i:04d}"
            if server_id in fleet.servers:
                raise ConfigurationError(f"duplicate server id {server_id!r}")
            server_rng = rng_streams.stream(f"server.{server_id}")
            workload = make_workload(allocation.service, server_rng)
            server = Server(
                server_id,
                allocation.platform,
                workload,
                agent_config=agent_config,
                rng=rng_streams.stream(f"sensor.{server_id}"),
                turbo_enabled=allocation.turbo_enabled,
            )
            device = attach_points[slot % len(attach_points)]
            device.attach_load(server_id, server.power_w)
            fleet.servers[server_id] = server
            slot += 1
    return fleet


def _attach_points(
    topology: PowerTopology, attach_level: DeviceLevel | None
) -> list[PowerDevice]:
    if attach_level is not None:
        points = topology.devices_at_level(attach_level)
        if not points:
            raise ConfigurationError(
                f"topology has no devices at level {attach_level.value!r}"
            )
        return points
    racks = topology.devices_at_level(DeviceLevel.RACK)
    if racks:
        return racks
    rpps = topology.devices_at_level(DeviceLevel.RPP)
    if rpps:
        return rpps
    raise ConfigurationError("topology has no rack- or RPP-level devices")


@dataclass(frozen=True)
class BreakerTrip:
    """One breaker trip observed by the driver."""

    time_s: float
    device_name: str
    level: str


class FleetDriver:
    """Steps the physical world: server power dynamics and breakers.

    Runs at a finer interval than the controllers (1 s by default) so
    RAPL settling transients and breaker thermal integration are resolved
    between control cycles.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        topology: PowerTopology,
        fleet: Fleet,
        *,
        step_interval_s: float = 1.0,
        physics_backend: str = "scalar",
        prefetch_draws: int = 64,
    ) -> None:
        if step_interval_s <= 0:
            raise ConfigurationError("step interval must be positive")
        if physics_backend not in PHYSICS_BACKENDS:
            known = ", ".join(PHYSICS_BACKENDS)
            raise ConfigurationError(
                f"unknown physics backend {physics_backend!r}; known: {known}"
            )
        self._topology = topology
        self._fleet = fleet
        self._dt = step_interval_s
        self.trips: list[BreakerTrip] = []
        #: Wall-clock seconds spent stepping server physics (feeds the
        #: per-phase breakdown of ``python -m repro profile``).
        self.physics_wall_s = 0.0
        self._backend = physics_backend
        #: Sharded execution: called between the physics step and the
        #: breaker observation.  The hook exchanges each shard's freshly
        #: stepped power rows through shared memory so every process
        #: observes the full fleet's power — breaker thermal state stays
        #: bitwise replicated across parent and workers.
        self.shard_sync: Callable[[], None] | None = None
        self._stepper: VectorizedFleetStepper | None = None
        if physics_backend == "vectorized":
            self._stepper = VectorizedFleetStepper(
                fleet, prefetch_draws=prefetch_draws
            )
            self._stepper.install_device_caches(topology)
            fleet._stepper = self._stepper
        self._process = PeriodicProcess(
            engine,
            step_interval_s,
            self._step,
            label="fleet-driver",
            priority=PRIORITY_FLEET_STEP,
        )

    @property
    def physics_backend(self) -> str:
        """Which stepping implementation this driver uses."""
        return self._backend

    @property
    def stepper(self) -> VectorizedFleetStepper | None:
        """The vectorized stepper, or None on the scalar backend."""
        return self._stepper

    def sync_physics(self) -> None:
        """Flush any speculative RNG prefetch to the logical position.

        Must run before generator states are read externally (snapshot
        capture); a no-op on the scalar backend.
        """
        if self._stepper is not None:
            self._stepper.sync()

    def start(self, phase: float = 0.0) -> None:
        """Begin stepping the world."""
        self._process.start(phase)

    def stop(self) -> None:
        """Stop stepping."""
        self._process.stop()

    def _step(self, now_s: float) -> None:
        t0 = time.perf_counter()
        if self._stepper is not None:
            self._stepper.step(now_s, self._dt)
        else:
            for server in self._fleet.servers.values():
                server.step(now_s, self._dt)
        self.physics_wall_s += time.perf_counter() - t0
        if self.shard_sync is not None:
            self.shard_sync()
        for device in self._topology.observe_breakers(self._dt, now_s):
            self.trips.append(
                BreakerTrip(
                    time_s=now_s,
                    device_name=device.name,
                    level=device.level.value,
                )
            )

    @property
    def tripped(self) -> bool:
        """Whether any breaker has tripped so far."""
        return bool(self.trips)

    @property
    def process(self) -> PeriodicProcess:
        """The stepping schedule (for snapshot capture/re-arming)."""
        return self._process

    def snapshot_state(self) -> dict:
        """Serializable trip history (the schedule is captured apart)."""
        return {
            "trips": [
                {
                    "time_s": t.time_s,
                    "device_name": t.device_name,
                    "level": t.level,
                }
                for t in self.trips
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore trip history in place."""
        self.trips = [
            BreakerTrip(
                time_s=float(t["time_s"]),
                device_name=str(t["device_name"]),
                level=str(t["level"]),
            )
            for t in state["trips"]
        ]
