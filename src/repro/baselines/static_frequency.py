"""Static worst-case capping: the pre-Dynamo approach (Section IV-D).

Before Dynamo, the search cluster limited every server's clock frequency
so that the *worst-case* aggregate peak stayed within the breaker limit —
a static cap sized for a peak that rarely happens, permanently costing
performance.  We reproduce it as a fixed RAPL limit applied once to every
server: ``cap = device_budget / n_servers`` less a safety margin.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fleet import Fleet
from repro.server.server import Server


def static_cap_for_budget(
    budget_w: float,
    server_count: int,
    *,
    safety_margin_fraction: float = 0.02,
) -> float:
    """The per-server static cap that makes worst-case peak fit budget."""
    if budget_w <= 0:
        raise ConfigurationError("budget must be positive")
    if server_count <= 0:
        raise ConfigurationError("need at least one server")
    if not 0.0 <= safety_margin_fraction < 1.0:
        raise ConfigurationError("safety margin must be in [0, 1)")
    return budget_w * (1.0 - safety_margin_fraction) / server_count


class StaticFrequencyCap:
    """Applies a permanent per-server cap sized for worst-case peaks."""

    def __init__(self, servers: list[Server], budget_w: float) -> None:
        if not servers:
            raise ConfigurationError("need at least one server")
        self.servers = list(servers)
        self.budget_w = budget_w
        self.cap_w = static_cap_for_budget(budget_w, len(servers))

    @classmethod
    def for_fleet(cls, fleet: Fleet, budget_w: float) -> "StaticFrequencyCap":
        """Build over an entire fleet."""
        return cls(list(fleet.servers.values()), budget_w)

    def apply(self) -> float:
        """Set the static cap on every server; returns the cap used.

        Servers whose platform minimum exceeds the computed cap get the
        platform minimum (the real deployment would simply not place that
        hardware in the cluster).
        """
        for server in self.servers:
            cap = max(self.cap_w, server.platform.effective_min_cap_w())
            server.rapl.set_limit(cap)
        return self.cap_w

    def remove(self) -> None:
        """Lift the static caps (the with-Dynamo configuration)."""
        for server in self.servers:
            server.rapl.clear_limit()

    def worst_case_peak_w(self) -> float:
        """Aggregate worst-case power under the static caps."""
        total = 0.0
        for server in self.servers:
            limit = server.rapl.limit_w
            peak = server.power_model.peak_power_w(turbo=server.turbo.enabled)
            total += min(peak, limit) if limit is not None else peak
        return total
