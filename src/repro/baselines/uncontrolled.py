"""No power management: the trip-exposure baseline."""

from __future__ import annotations

from repro.fleet import Fleet, FleetDriver
from repro.power.topology import PowerTopology
from repro.simulation.engine import SimulationEngine


class UncontrolledBaseline:
    """Runs the physical world with no capping whatsoever.

    Useful as the counterfactual in surge experiments: with the same
    stimulus, does a breaker trip when Dynamo is absent?
    """

    def __init__(
        self,
        engine: SimulationEngine,
        topology: PowerTopology,
        fleet: Fleet,
        *,
        step_interval_s: float = 1.0,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.fleet = fleet
        self.driver = FleetDriver(
            engine, topology, fleet, step_interval_s=step_interval_s
        )

    def start(self) -> None:
        """Start the physical simulation (nothing else to start)."""
        self.driver.start()

    def stop(self) -> None:
        """Stop the physical simulation."""
        self.driver.stop()

    @property
    def trips(self):
        """Breaker trips observed so far."""
        return self.driver.trips
