"""Leaf-only capping: hierarchical coordination removed.

Prior work mostly capped at server or ensemble level in isolation.  This
baseline runs Dynamo's leaf controllers but *no upper-level controllers*:
each leaf keeps its own device safe, yet nothing protects the SB or MSB
when power is oversubscribed above the leaf level — every RPP can sit
happily under its 190 KW while their sum overloads the 1.25 MW SB.  The
ablation benches use it to show why the paper's key insight (coordinated,
data center-wide management) is necessary.
"""

from __future__ import annotations

from repro.config import DynamoConfig
from repro.core.agent import DynamoAgent
from repro.core.coordinator import PRIORITY_LEAF
from repro.core.hierarchy import build_controller_hierarchy
from repro.core.priority import PriorityPolicy
from repro.fleet import Fleet
from repro.power.topology import PowerTopology
from repro.rpc.transport import RpcTransport
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess
from repro.simulation.rng import RngStreams
from repro.telemetry.alerts import AlertSink


class LeafOnlyCapping:
    """Dynamo's leaf controllers without the coordinating upper levels."""

    def __init__(
        self,
        engine: SimulationEngine,
        topology: PowerTopology,
        fleet: Fleet,
        *,
        config: DynamoConfig | None = None,
        rng_streams: RngStreams | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or DynamoConfig()
        self.alerts = AlertSink()
        rng_streams = rng_streams or RngStreams(0)
        self.transport = RpcTransport(rng_streams.stream("rpc"))
        self.agents = {
            server_id: DynamoAgent(server, self.transport, clock=engine.clock)
            for server_id, server in fleet.servers.items()
        }
        hierarchy = build_controller_hierarchy(
            topology,
            self.transport,
            config=self.config,
            policy=PriorityPolicy(),
            alerts=self.alerts,
        )
        # Keep only the leaves; upper controllers are discarded unstarted.
        self.leaf_controllers = hierarchy.leaf_controllers
        self._processes = [
            PeriodicProcess(
                engine,
                controller.config.leaf_pull_interval_s,
                controller.tick,
                label=f"leafonly.{controller.name}",
                priority=PRIORITY_LEAF,
            )
            for controller in self.leaf_controllers.values()
        ]

    def start(self) -> None:
        """Start the leaf control cycles."""
        for process in self._processes:
            process.start(phase=process.interval_s)

    def stop(self) -> None:
        """Stop the leaf control cycles."""
        for process in self._processes:
            process.stop()
