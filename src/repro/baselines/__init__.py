"""Baseline power-management strategies Dynamo is compared against.

* :class:`UncontrolledBaseline` — no power management at all; quantifies
  trip exposure under surges (what Dynamo's 18 prevented outages would
  have been).
* :class:`StaticFrequencyCap` — the pre-Dynamo search-cluster approach:
  clamp every server so *worst-case* aggregate peak fits the budget,
  permanently sacrificing performance (Section IV-D).
* :class:`LeafOnlyCapping` — leaf controllers without upper-level
  coordination, the strawman that fails when power is oversubscribed
  above the leaf level (all RPPs within limits, SB still over).
* :class:`OracleCapping` — physically unrealizable instantaneous,
  perfectly informed capping; an upper bound for capping quality.
"""

from repro.baselines.local_only import LeafOnlyCapping
from repro.baselines.oracle import OracleCapping
from repro.baselines.static_frequency import StaticFrequencyCap, static_cap_for_budget
from repro.baselines.uncontrolled import UncontrolledBaseline

__all__ = [
    "LeafOnlyCapping",
    "OracleCapping",
    "StaticFrequencyCap",
    "UncontrolledBaseline",
    "static_cap_for_budget",
]
