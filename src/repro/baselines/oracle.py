"""Oracle capping: instantaneous, perfectly informed — an upper bound.

The oracle sees true server power with zero sampling delay, zero RPC
cost, and zero RAPL settling: each step it checks every protected device
top-down and, where the aggregate exceeds the capping target, scales all
downstream servers proportionally so the device lands exactly on target.
No real system achieves this; benches use it to bound how much of the
remaining performance gap is Dynamo's design vs physics.
"""

from __future__ import annotations

from repro.config import ThreeBandConfig
from repro.fleet import Fleet
from repro.power.topology import PowerTopology
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess


class OracleCapping:
    """Instantaneous proportional capping with perfect knowledge."""

    def __init__(
        self,
        engine: SimulationEngine,
        topology: PowerTopology,
        fleet: Fleet,
        *,
        interval_s: float = 1.0,
        band: ThreeBandConfig | None = None,
    ) -> None:
        self.topology = topology
        self.fleet = fleet
        self._band = band or ThreeBandConfig()
        self.cap_events = 0
        self._process = PeriodicProcess(
            engine, interval_s, self._tick, label="oracle", priority=9
        )

    def start(self) -> None:
        """Begin oracle control."""
        self._process.start(phase=self._process.interval_s)

    def stop(self) -> None:
        """Stop oracle control."""
        self._process.stop()

    def _tick(self, now_s: float) -> None:
        for device in self.topology.iter_devices():
            power = device.power_w()
            limit = device.rated_power_w
            if power <= limit * self._band.capping_threshold:
                continue
            target = limit * self._band.capping_target
            scale = target / power
            self.cap_events += 1
            for server_id in device.iter_load_ids():
                server = self.fleet.servers.get(server_id)
                if server is None:
                    continue
                new_limit = max(
                    server.power_w() * scale,
                    server.platform.effective_min_cap_w(),
                )
                server.rapl.set_limit(new_limit)
                # Oracle enforcement is instantaneous: snap RAPL to the
                # target rather than letting it settle.
                server.rapl.step(server.power_w(), 1e9)
