"""The resilience layer between controllers and the RPC transport.

The paper's controllers make every RPC exactly once and treat any
failure as a failed pull.  That is fine for sensing (estimation covers
it) but fragile for actuation and for a genuinely flaky fabric.  This
module wraps any :class:`~repro.rpc.transport.Transport` with:

* a **call policy** — per-call deadline (checked against the drawn
  latency; simulation time does not advance), bounded retries, and
  deterministic jittered exponential backoff drawn from a dedicated
  simulation RNG stream, so a seeded run retries on a byte-identical
  schedule;
* a per-endpoint **circuit breaker** (closed → open → half-open)
  tripping on consecutive-failure and failure-rate thresholds, so a
  dead endpoint stops consuming retry budget;
* a :class:`~repro.core.health.HealthRegistry` feed — every attempt,
  retry, trip, and fast-fail is recorded, and persistently bad
  endpoints are quarantined.

On the happy path the wrapper is invisible by construction: one inner
call, no extra RNG draws, the result passed straight through.  Failure
handling, not failure-free behaviour, is where it differs — which is
what keeps golden-fingerprint parity with the unwrapped transport.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import CallPolicyConfig, CircuitBreakerConfig
from repro.errors import RpcError, RpcTimeoutError
from repro.rpc.transport import (
    GroupCapResult,
    GroupReadResult,
    Handler,
    Transport,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> rpc)
    from repro.core.health import HealthRegistry


class BreakerState(enum.Enum):
    """Circuit-breaker state."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-endpoint circuit breaker.

    Trips from CLOSED on either ``consecutive_failure_threshold``
    attempt failures in a row or a failure rate of at least
    ``failure_rate_threshold`` over the last ``window_size`` attempts
    (with at least ``min_samples`` seen).  While OPEN, calls are
    rejected until ``open_duration_s`` has elapsed; the next call then
    half-opens the breaker and runs as a probe — success closes and
    resets, failure re-opens (a re-open, distinct from a full trip).
    """

    def __init__(
        self, config: CircuitBreakerConfig | None = None, *, name: str = ""
    ) -> None:
        self.config = config or CircuitBreakerConfig()
        self.name = name
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: float | None = None
        #: Full CLOSED → OPEN trips (what quarantining counts).
        self.opens = 0
        #: HALF_OPEN probe failures sending the breaker back to OPEN.
        self.reopens = 0
        self._window: deque[bool] = deque(maxlen=self.config.window_size)

    def allow(self, now_s: float) -> bool:
        """Whether a call may proceed at ``now_s`` (may half-open)."""
        if self.state is BreakerState.OPEN:
            assert self.opened_at_s is not None
            if now_s - self.opened_at_s >= self.config.open_duration_s:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True

    def record_success(self, now_s: float) -> None:
        """A successful attempt: close (from a probe) and reset history."""
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self.opened_at_s = None
            self._window.clear()
        else:
            self._window.append(True)

    def record_failure(self, now_s: float) -> bool:
        """A failed attempt; returns True on a full CLOSED → OPEN trip."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: back to OPEN for another window.
            self.state = BreakerState.OPEN
            self.opened_at_s = now_s
            self.reopens += 1
            return False
        if self.state is BreakerState.CLOSED:
            self._window.append(False)
            if (
                self.consecutive_failures
                >= self.config.consecutive_failure_threshold
                or self._rate_tripped()
            ):
                self.state = BreakerState.OPEN
                self.opened_at_s = now_s
                self.opens += 1
                return True
        return False

    def _rate_tripped(self) -> bool:
        if len(self._window) < self.config.min_samples:
            return False
        failures = sum(1 for ok in self._window if not ok)
        return (
            failures / len(self._window) >= self.config.failure_rate_threshold
        )

    def snapshot_state(self) -> dict:
        """Serializable breaker state including the attempt window."""
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_at_s": self.opened_at_s,
            "opens": self.opens,
            "reopens": self.reopens,
            "window": list(self._window),
        }

    def restore_state(self, state: dict) -> None:
        """Restore breaker state in place."""
        self.state = BreakerState(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        opened = state["opened_at_s"]
        self.opened_at_s = None if opened is None else float(opened)
        self.opens = int(state["opens"])
        self.reopens = int(state["reopens"])
        self._window = deque(
            (bool(ok) for ok in state["window"]),
            maxlen=self.config.window_size,
        )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state.value}, "
            f"opens={self.opens})"
        )


class ResilientTransport:
    """A :class:`Transport` wrapper adding deadline/retry/breaker/health.

    Registration, endpoint listing, and the failure injector delegate to
    the wrapped transport — the resilient layer changes only how calls
    fail, never how endpoints are wired.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        policy: CallPolicyConfig | None = None,
        breaker: CircuitBreakerConfig | None = None,
        health: "HealthRegistry | None" = None,
        rng: np.random.Generator | None = None,
        clock=None,
    ) -> None:
        self._inner = inner
        self.policy = policy or CallPolicyConfig()
        self.breaker_config = breaker or CircuitBreakerConfig()
        if health is None:
            from repro.core.health import HealthRegistry

            health = HealthRegistry()
        self.health = health
        self._rng = rng
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Total backoff delay accounted (not slept: RPC timescales sit
        #: far below the 3 s control cycle, like call latency itself).
        self.backoff_waited_s = 0.0
        self.injector = inner.injector

    # ------------------------------------------------------------------
    # Transport delegation
    # ------------------------------------------------------------------

    @property
    def inner(self) -> Transport:
        """The wrapped transport."""
        return self._inner

    @property
    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        return self._inner.endpoints

    def register(self, endpoint: str, handler: Handler) -> None:
        """Register (or replace) the handler for ``endpoint``."""
        self._inner.register(endpoint, handler)

    def unregister(self, endpoint: str) -> None:
        """Remove an endpoint."""
        self._inner.unregister(endpoint)

    # ------------------------------------------------------------------
    # Breakers
    # ------------------------------------------------------------------

    def breaker(self, endpoint: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker for one endpoint."""
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = self._breakers[endpoint] = CircuitBreaker(
                self.breaker_config, name=endpoint
            )
        return breaker

    def breaker_state(self, endpoint: str) -> str:
        """Breaker state name for one endpoint ("closed" if never used)."""
        breaker = self._breakers.get(endpoint)
        return breaker.state.value if breaker else BreakerState.CLOSED.value

    def _now(self) -> float:
        return float(self._clock.now) if self._clock is not None else 0.0

    def backoff_delay_s(self, retry_index: int) -> float:
        """The (jittered) backoff before retry ``retry_index`` (1-based).

        Deterministic: the exponential schedule comes from the policy,
        the jitter from the dedicated RNG stream — same seed, same
        delays.  Without an RNG the schedule is purely exponential.
        """
        delay = min(
            self.policy.backoff_max_s,
            self.policy.backoff_base_s
            * self.policy.backoff_multiplier ** (retry_index - 1),
        )
        if self._rng is not None and self.policy.jitter_fraction > 0.0:
            spread = self.policy.jitter_fraction * (
                2.0 * float(self._rng.random()) - 1.0
            )
            delay *= 1.0 + spread
        return delay

    # ------------------------------------------------------------------
    # The resilient call path
    # ------------------------------------------------------------------

    def call(self, endpoint: str, method: str, payload: Any = None) -> Any:
        """One logical call: quarantine gate → breaker gate → attempts.

        Raises:
            RpcError: all attempts failed, the breaker is open, or the
                endpoint is quarantined.
            RpcTimeoutError: the final attempt exceeded the deadline or
                hit an injected timeout.
        """
        batch = getattr(self._inner, "_batch", None)
        if batch is not None:
            # A direct resilient call takes the endpoint off the batched
            # fast lane: flush its pending fast-path successes into the
            # breaker/health record first so the state this call sees is
            # what sequential scalar calls would have built.
            batch.materialize_pending(endpoint, self)
        now_s = self._now()
        if self.health.is_quarantined(endpoint, now_s):
            self.health.record_fast_fail(endpoint)
            raise RpcError(f"endpoint {endpoint!r} is quarantined")
        breaker = self.breaker(endpoint)
        if not breaker.allow(now_s):
            self.health.record_fast_fail(endpoint)
            raise RpcError(f"circuit open for endpoint {endpoint!r}")
        # A half-open breaker gets exactly one probe, not a retry burst.
        attempts = (
            1
            if breaker.state is BreakerState.HALF_OPEN
            else max(1, self.policy.max_attempts)
        )
        last_exc: RpcError | None = None
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                delay = self.backoff_delay_s(attempt - 1)
                self.backoff_waited_s += delay
                self.health.record_retry(endpoint, delay)
            try:
                result = self._inner.call(endpoint, method, payload)
                latency = getattr(self._inner, "last_call_latency_s", 0.0)
                if latency > self.policy.deadline_s:
                    # The reply came back after the caller gave up: the
                    # handler's side effects stand, the result does not.
                    raise RpcTimeoutError(
                        f"call to {endpoint!r} exceeded the "
                        f"{self.policy.deadline_s:g} s deadline"
                    )
            except RpcError as exc:
                last_exc = exc
                tripped = breaker.record_failure(now_s)
                self.health.record_failure(endpoint, now_s)
                if tripped:
                    self.health.record_breaker_open(endpoint, now_s)
                if breaker.state is BreakerState.OPEN:
                    break
            else:
                breaker.record_success(now_s)
                self.health.record_success(
                    endpoint, now_s, latency, retried=attempt > 1
                )
                return result
        assert last_exc is not None
        raise last_exc

    def broadcast(
        self, endpoints: list[str], method: str, payload: Any = None
    ) -> tuple[dict[str, Any], dict[str, Exception]]:
        """Fan out through the resilient call path per endpoint."""
        results: dict[str, Any] = {}
        failures: dict[str, Exception] = {}
        for endpoint in endpoints:
            try:
                results[endpoint] = self.call(endpoint, method, payload)
            except RpcError as exc:
                failures[endpoint] = exc
        return results, failures

    # ------------------------------------------------------------------
    # Batched broadcast fast path (control_backend="vectorized")
    # ------------------------------------------------------------------

    def _strike_resilient(
        self, pos: dict[str, int], fast: "np.ndarray", now_s: float
    ) -> None:
        """Drop endpoints with resilience state to the scalar lane.

        Any endpoint with an existing breaker (whatever its state) or an
        active quarantine goes through :meth:`call` at its original
        position, so breaker transitions, fast-fails, and health records
        happen exactly as in the sequential broadcast.  An endpoint that
        has been materialized once therefore stays on the scalar lane —
        a performance choice only, never a semantic one.
        """
        for endpoint in self._breakers:
            p = pos.get(endpoint)
            if p is not None:
                fast[p] = False
        for endpoint in self.health.quarantined_endpoints(now_s):
            p = pos.get(endpoint)
            if p is not None:
                fast[p] = False

    def _settle_fast_lane(
        self,
        endpoints: list[str],
        rows: "np.ndarray",
        fast: "np.ndarray",
        latencies: "np.ndarray",
        now_s: float,
    ) -> list[int]:
        """Credit fast-lane successes; handle the deadline cold path.

        Returns the positions demoted to failures by the deadline check.
        With the default 1.0 s deadline against a 2 ms exponential
        latency the overrun probability per call is e^-500 — the branch
        exists for configured tight deadlines.  (The scalar path would
        burn its remaining retry attempts before giving up; the batched
        path records a single failure — a documented divergence on this
        practically-unreachable branch.)
        """
        demoted: list[int] = []
        if not fast.any():
            return demoted
        batch = self._inner._batch
        over = fast & (latencies > self.policy.deadline_s)
        if over.any():
            for p in np.flatnonzero(over):
                endpoint = endpoints[int(p)]
                batch.materialize_pending(endpoint, self)
                breaker = self.breaker(endpoint)
                tripped = breaker.record_failure(now_s)
                self.health.record_failure(endpoint, now_s)
                if tripped:
                    self.health.record_breaker_open(endpoint, now_s)
                fast[p] = False
                demoted.append(int(p))
        batch.fast_successes[rows[fast]] += 1
        return demoted

    def group_read_power(
        self, endpoints: list[str]
    ) -> GroupReadResult | None:
        """Batched ``read_power`` through the resilience gates.

        Besides the raw transport's fallback triggers, endpoints with an
        existing breaker or active quarantine take the scalar lane.
        Fast-lane successes are credited to the batch's pending counters
        and materialized into breaker/health state only when the
        endpoint first leaves the fast path.
        """
        inner = self._inner
        if not hasattr(inner, "_group_plan"):
            return None
        plan = inner._group_plan(endpoints)
        if plan is None:
            return None
        if not inner._group_allowed():
            inner.group_full_fallbacks += 1
            return None
        now_s = self._now()
        fast = inner._group_fast_mask(plan, plan.sense_ok)
        self._strike_resilient(plan.pos, fast, now_s)
        result = inner._execute_group_read(
            endpoints,
            plan.rows,
            fast,
            lambda endpoint: self.call(endpoint, "read_power", None),
        )
        demoted = self._settle_fast_lane(
            endpoints, plan.rows, result.fast_mask, result.latencies, now_s
        )
        for p in demoted:
            result.failures[endpoints[p]] = RpcTimeoutError(
                f"call to {endpoints[p]!r} exceeded the "
                f"{self.policy.deadline_s:g} s deadline"
            )
        return result

    def group_set_cap(
        self, items: list[tuple[str, str, float | None]]
    ) -> GroupCapResult | None:
        """Batched ``set_cap`` through the resilience gates."""
        inner = self._inner
        if not hasattr(inner, "_execute_group_cap"):
            return None
        if getattr(inner, "_batch", None) is None:
            return None
        if not inner._group_allowed():
            inner.group_full_fallbacks += 1
            return None
        now_s = self._now()
        blocked = set(self._breakers)
        blocked.update(self.health.quarantined_endpoints(now_s))
        result = inner._execute_group_cap(items, blocked, self.call)
        demoted = self._settle_fast_lane(
            result.endpoints,
            result.rows,
            result.fast_mask,
            result.latencies,
            now_s,
        )
        for p in demoted:
            result.status[p] = "error"
        return result

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable resilience state.

        Captures the jitter RNG (a world-internal stream not reachable
        through the root :class:`~repro.simulation.rng.RngStreams`),
        per-endpoint breakers in insertion order, and the backoff
        accounting.  The :class:`~repro.core.health.HealthRegistry` is
        captured separately (it is shared with the controllers).
        """
        return {
            "rng": (
                None if self._rng is None else self._rng.bit_generator.state
            ),
            "backoff_waited_s": self.backoff_waited_s,
            "breakers": {
                endpoint: breaker.snapshot_state()
                for endpoint, breaker in self._breakers.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore resilience state; breakers are recreated lazily."""
        if self._rng is not None and state["rng"] is not None:
            self._rng.bit_generator.state = state["rng"]
        self.backoff_waited_s = float(state["backoff_waited_s"])
        self._breakers = {}
        for endpoint, breaker_state in state["breakers"].items():
            self.breaker(endpoint).restore_state(breaker_state)

    def __repr__(self) -> str:
        return (
            f"ResilientTransport(breakers={len(self._breakers)}, "
            f"policy=attempts<={self.policy.max_attempts})"
        )
