"""Simulated RPC transport with latency accounting and failure injection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import RpcError, RpcTimeoutError


@dataclass
class FailureInjector:
    """Controls which RPCs fail and how.

    Attributes:
        failure_probability: chance any call raises :class:`RpcError`.
        timeout_probability: chance any call raises
            :class:`RpcTimeoutError` instead of completing.
        down_endpoints: endpoints that always fail (crashed agents,
            partitioned hosts).
    """

    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    down_endpoints: set[str] = field(default_factory=set)

    def take_down(self, endpoint: str) -> None:
        """Mark an endpoint unreachable."""
        self.down_endpoints.add(endpoint)

    def restore(self, endpoint: str) -> None:
        """Mark an endpoint reachable again."""
        self.down_endpoints.discard(endpoint)

    def check(self, endpoint: str, rng: np.random.Generator) -> None:
        """Raise if this call should fail."""
        if endpoint in self.down_endpoints:
            raise RpcError(f"endpoint {endpoint!r} is down")
        if self.timeout_probability > 0.0 and rng.random() < self.timeout_probability:
            raise RpcTimeoutError(f"call to {endpoint!r} timed out")
        if self.failure_probability > 0.0 and rng.random() < self.failure_probability:
            raise RpcError(f"call to {endpoint!r} failed")


Handler = Callable[[str, Any], Any]


class RpcTransport:
    """Name-addressed request/response fabric.

    Endpoints register a handler ``(method, payload) -> response``.
    Callers invoke :meth:`call`.  Latency is drawn per call and summed
    into counters for diagnostics, but simulation time is not advanced:
    RPC latency (sub-millisecond in production) is far below the 3 s
    control cycle, so modelling it as instantaneous preserves control
    behaviour while keeping controllers synchronous and simple.
    """

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        injector: FailureInjector | None = None,
        mean_latency_s: float = 0.002,
    ) -> None:
        self._handlers: dict[str, Handler] = {}
        self._rng = rng or np.random.default_rng(0)
        self.injector = injector or FailureInjector()
        self._mean_latency_s = mean_latency_s
        self.calls_made = 0
        self.calls_failed = 0
        self.total_latency_s = 0.0

    def register(self, endpoint: str, handler: Handler) -> None:
        """Register (or replace) the handler for ``endpoint``."""
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        """Remove an endpoint (server decommissioned)."""
        self._handlers.pop(endpoint, None)

    @property
    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        return list(self._handlers)

    def call(self, endpoint: str, method: str, payload: Any = None) -> Any:
        """Invoke ``method`` on ``endpoint``; may raise RpcError.

        Raises:
            RpcError: endpoint unknown, down, or injected failure.
            RpcTimeoutError: injected timeout.
        """
        self.calls_made += 1
        self.total_latency_s += self._rng.exponential(self._mean_latency_s)
        try:
            self.injector.check(endpoint, self._rng)
            handler = self._handlers.get(endpoint)
            if handler is None:
                raise RpcError(f"no endpoint registered as {endpoint!r}")
            return handler(method, payload)
        except RpcError:
            self.calls_failed += 1
            raise

    def broadcast(
        self, endpoints: list[str], method: str, payload: Any = None
    ) -> tuple[dict[str, Any], dict[str, Exception]]:
        """Call every endpoint; collect successes and failures separately.

        This is the leaf controller's "broadcast power pull": one logical
        fan-out whose partial failures the caller must handle.
        """
        results: dict[str, Any] = {}
        failures: dict[str, Exception] = {}
        for endpoint in endpoints:
            try:
                results[endpoint] = self.call(endpoint, method, payload)
            except RpcError as exc:
                failures[endpoint] = exc
        return results, failures

    def mean_latency_s(self) -> float:
        """Average per-call latency drawn so far."""
        if self.calls_made == 0:
            return 0.0
        return self.total_latency_s / self.calls_made
