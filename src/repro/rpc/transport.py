"""Simulated RPC transport with latency accounting and failure injection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import RpcError, RpcTimeoutError


@dataclass
class EndpointFaults:
    """Per-endpoint fault rates layered on top of the global ones.

    Attributes:
        failure_probability: extra chance a call to this endpoint raises
            :class:`RpcError`.
        timeout_probability: extra chance a call to this endpoint raises
            :class:`RpcTimeoutError`.
        extra_latency_mean_s: mean of an exponential extra-latency draw
            added to the call's accounted latency (a latency spike).
    """

    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    extra_latency_mean_s: float = 0.0


@dataclass
class FailureInjector:
    """Controls which RPCs fail and how.

    Global probabilities apply to every call; per-endpoint rates
    (installed via :meth:`set_endpoint_faults`, typically by the chaos
    orchestrator) compose with them, so a flaky fabric and a targeted
    injection can coexist.

    Attributes:
        failure_probability: chance any call raises :class:`RpcError`.
        timeout_probability: chance any call raises
            :class:`RpcTimeoutError` instead of completing.
        down_endpoints: endpoints that always fail (crashed agents,
            partitioned hosts).
        endpoint_faults: per-endpoint failure/timeout/latency overrides.
    """

    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    down_endpoints: set[str] = field(default_factory=set)
    endpoint_faults: dict[str, EndpointFaults] = field(default_factory=dict)

    def take_down(self, endpoint: str) -> None:
        """Mark an endpoint unreachable."""
        self.down_endpoints.add(endpoint)

    def restore(self, endpoint: str) -> None:
        """Mark an endpoint reachable again."""
        self.down_endpoints.discard(endpoint)

    def set_endpoint_faults(
        self,
        endpoint: str,
        *,
        failure_probability: float | None = None,
        timeout_probability: float | None = None,
        extra_latency_mean_s: float | None = None,
    ) -> EndpointFaults:
        """Install (or update) per-endpoint fault rates.

        Only the keyword arguments given are changed, so successive
        injections against the same endpoint compose.
        """
        faults = self.endpoint_faults.setdefault(endpoint, EndpointFaults())
        if failure_probability is not None:
            faults.failure_probability = float(failure_probability)
        if timeout_probability is not None:
            faults.timeout_probability = float(timeout_probability)
        if extra_latency_mean_s is not None:
            faults.extra_latency_mean_s = float(extra_latency_mean_s)
        return faults

    def clear_endpoint_faults(self, endpoint: str) -> None:
        """Remove all per-endpoint rates for ``endpoint``."""
        self.endpoint_faults.pop(endpoint, None)

    def check(self, endpoint: str, rng: np.random.Generator) -> None:
        """Raise if this call should fail."""
        if endpoint in self.down_endpoints:
            raise RpcError(f"endpoint {endpoint!r} is down")
        faults = self.endpoint_faults.get(endpoint)
        timeout_p = self.timeout_probability
        failure_p = self.failure_probability
        if faults is not None:
            # Independent hazards compose: surviving the call means
            # surviving both the global and the endpoint-specific risk.
            timeout_p = 1.0 - (1.0 - timeout_p) * (1.0 - faults.timeout_probability)
            failure_p = 1.0 - (1.0 - failure_p) * (1.0 - faults.failure_probability)
        # Layered chaos injections may push an individual rate outside
        # [0, 1] (e.g. two faults both writing 0.8); the composed hazard
        # handed to the RNG must stay a probability.
        timeout_p = min(1.0, max(0.0, timeout_p))
        failure_p = min(1.0, max(0.0, failure_p))
        if timeout_p > 0.0 and rng.random() < timeout_p:
            raise RpcTimeoutError(f"call to {endpoint!r} timed out")
        if failure_p > 0.0 and rng.random() < failure_p:
            raise RpcError(f"call to {endpoint!r} failed")

    def extra_latency_s(self, endpoint: str, rng: np.random.Generator) -> float:
        """Injected extra latency for one call to ``endpoint``."""
        faults = self.endpoint_faults.get(endpoint)
        if faults is None or faults.extra_latency_mean_s <= 0.0:
            return 0.0
        return float(rng.exponential(faults.extra_latency_mean_s))


Handler = Callable[[str, Any], Any]


@runtime_checkable
class Transport(Protocol):
    """Structural surface shared by the raw and resilient transports.

    Controllers, agents, and RPC services program against this so a
    deployment can interpose :class:`~repro.rpc.resilient.ResilientTransport`
    (retries, circuit breakers, health tracking) without any of them
    changing.
    """

    injector: FailureInjector

    @property
    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        ...

    def register(self, endpoint: str, handler: Handler) -> None:
        """Register (or replace) the handler for ``endpoint``."""
        ...

    def unregister(self, endpoint: str) -> None:
        """Remove an endpoint."""
        ...

    def call(self, endpoint: str, method: str, payload: Any = None) -> Any:
        """Invoke ``method`` on ``endpoint``; may raise RpcError."""
        ...

    def broadcast(
        self, endpoints: list[str], method: str, payload: Any = None
    ) -> tuple[dict[str, Any], dict[str, Exception]]:
        """Call every endpoint; collect successes and failures."""
        ...


class RpcTransport:
    """Name-addressed request/response fabric.

    Endpoints register a handler ``(method, payload) -> response``.
    Callers invoke :meth:`call`.  Latency is drawn per call and summed
    into counters for diagnostics, but simulation time is not advanced:
    RPC latency (sub-millisecond in production) is far below the 3 s
    control cycle, so modelling it as instantaneous preserves control
    behaviour while keeping controllers synchronous and simple.
    """

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        injector: FailureInjector | None = None,
        mean_latency_s: float = 0.002,
    ) -> None:
        self._handlers: dict[str, Handler] = {}
        self._rng = rng or np.random.default_rng(0)
        self.injector = injector or FailureInjector()
        self._mean_latency_s = mean_latency_s
        self.calls_made = 0
        self.calls_failed = 0
        self.total_latency_s = 0.0
        #: Latency drawn for the most recent call — the resilience
        #: layer's deadline check reads this, since calls are
        #: synchronous and simulation time does not advance.
        self.last_call_latency_s = 0.0

    def register(self, endpoint: str, handler: Handler) -> None:
        """Register (or replace) the handler for ``endpoint``."""
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        """Remove an endpoint (server decommissioned)."""
        self._handlers.pop(endpoint, None)

    @property
    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        return list(self._handlers)

    def call(self, endpoint: str, method: str, payload: Any = None) -> Any:
        """Invoke ``method`` on ``endpoint``; may raise RpcError.

        Raises:
            RpcError: endpoint unknown, down, or injected failure.
            RpcTimeoutError: injected timeout.
        """
        self.calls_made += 1
        latency = self._rng.exponential(self._mean_latency_s)
        latency += self.injector.extra_latency_s(endpoint, self._rng)
        self.last_call_latency_s = float(latency)
        self.total_latency_s += latency
        try:
            self.injector.check(endpoint, self._rng)
            handler = self._handlers.get(endpoint)
            if handler is None:
                raise RpcError(f"no endpoint registered as {endpoint!r}")
            return handler(method, payload)
        except RpcError:
            self.calls_failed += 1
            raise

    def broadcast(
        self, endpoints: list[str], method: str, payload: Any = None
    ) -> tuple[dict[str, Any], dict[str, Exception]]:
        """Call every endpoint; collect successes and failures separately.

        This is the leaf controller's "broadcast power pull": one logical
        fan-out whose partial failures the caller must handle.
        """
        results: dict[str, Any] = {}
        failures: dict[str, Exception] = {}
        for endpoint in endpoints:
            try:
                results[endpoint] = self.call(endpoint, method, payload)
            except RpcError as exc:
                failures[endpoint] = exc
        return results, failures

    def mean_latency_s(self) -> float:
        """Average per-call latency drawn so far."""
        if self.calls_made == 0:
            return 0.0
        return self.total_latency_s / self.calls_made

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable transport state.

        Captures the latency RNG in place (this generator is forked off
        the world's internal stream family and is not reachable through
        the root :class:`~repro.simulation.rng.RngStreams`), the call
        counters, and the failure injector's live fault tables.  The
        handler registry is wiring, rebuilt by the world recipe.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "calls_made": self.calls_made,
            "calls_failed": self.calls_failed,
            "total_latency_s": self.total_latency_s,
            "last_call_latency_s": self.last_call_latency_s,
            "injector": {
                "failure_probability": self.injector.failure_probability,
                "timeout_probability": self.injector.timeout_probability,
                "down_endpoints": sorted(self.injector.down_endpoints),
                "endpoint_faults": {
                    endpoint: {
                        "failure_probability": faults.failure_probability,
                        "timeout_probability": faults.timeout_probability,
                        "extra_latency_mean_s": faults.extra_latency_mean_s,
                    }
                    for endpoint, faults in sorted(
                        self.injector.endpoint_faults.items()
                    )
                },
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore transport counters, RNG state, and fault tables."""
        self._rng.bit_generator.state = state["rng"]
        self.calls_made = int(state["calls_made"])
        self.calls_failed = int(state["calls_failed"])
        self.total_latency_s = float(state["total_latency_s"])
        self.last_call_latency_s = float(state["last_call_latency_s"])
        injector = state["injector"]
        self.injector.failure_probability = float(
            injector["failure_probability"]
        )
        self.injector.timeout_probability = float(
            injector["timeout_probability"]
        )
        self.injector.down_endpoints = set(injector["down_endpoints"])
        self.injector.endpoint_faults = {
            endpoint: EndpointFaults(
                failure_probability=float(faults["failure_probability"]),
                timeout_probability=float(faults["timeout_probability"]),
                extra_latency_mean_s=float(faults["extra_latency_mean_s"]),
            )
            for endpoint, faults in injector["endpoint_faults"].items()
        }
