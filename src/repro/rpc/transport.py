"""Simulated RPC transport with latency accounting and failure injection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import RpcError, RpcTimeoutError


@dataclass
class EndpointFaults:
    """Per-endpoint fault rates layered on top of the global ones.

    Attributes:
        failure_probability: extra chance a call to this endpoint raises
            :class:`RpcError`.
        timeout_probability: extra chance a call to this endpoint raises
            :class:`RpcTimeoutError`.
        extra_latency_mean_s: mean of an exponential extra-latency draw
            added to the call's accounted latency (a latency spike).
    """

    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    extra_latency_mean_s: float = 0.0


@dataclass
class FailureInjector:
    """Controls which RPCs fail and how.

    Global probabilities apply to every call; per-endpoint rates
    (installed via :meth:`set_endpoint_faults`, typically by the chaos
    orchestrator) compose with them, so a flaky fabric and a targeted
    injection can coexist.

    Attributes:
        failure_probability: chance any call raises :class:`RpcError`.
        timeout_probability: chance any call raises
            :class:`RpcTimeoutError` instead of completing.
        down_endpoints: endpoints that always fail (crashed agents,
            partitioned hosts).
        endpoint_faults: per-endpoint failure/timeout/latency overrides.
    """

    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    down_endpoints: set[str] = field(default_factory=set)
    endpoint_faults: dict[str, EndpointFaults] = field(default_factory=dict)

    def take_down(self, endpoint: str) -> None:
        """Mark an endpoint unreachable."""
        self.down_endpoints.add(endpoint)

    def restore(self, endpoint: str) -> None:
        """Mark an endpoint reachable again."""
        self.down_endpoints.discard(endpoint)

    def set_endpoint_faults(
        self,
        endpoint: str,
        *,
        failure_probability: float | None = None,
        timeout_probability: float | None = None,
        extra_latency_mean_s: float | None = None,
    ) -> EndpointFaults:
        """Install (or update) per-endpoint fault rates.

        Only the keyword arguments given are changed, so successive
        injections against the same endpoint compose.
        """
        faults = self.endpoint_faults.setdefault(endpoint, EndpointFaults())
        if failure_probability is not None:
            faults.failure_probability = float(failure_probability)
        if timeout_probability is not None:
            faults.timeout_probability = float(timeout_probability)
        if extra_latency_mean_s is not None:
            faults.extra_latency_mean_s = float(extra_latency_mean_s)
        return faults

    def clear_endpoint_faults(self, endpoint: str) -> None:
        """Remove all per-endpoint rates for ``endpoint``."""
        self.endpoint_faults.pop(endpoint, None)

    def check(self, endpoint: str, rng: np.random.Generator) -> None:
        """Raise if this call should fail."""
        if endpoint in self.down_endpoints:
            raise RpcError(f"endpoint {endpoint!r} is down")
        faults = self.endpoint_faults.get(endpoint)
        timeout_p = self.timeout_probability
        failure_p = self.failure_probability
        if faults is not None:
            # Independent hazards compose: surviving the call means
            # surviving both the global and the endpoint-specific risk.
            timeout_p = 1.0 - (1.0 - timeout_p) * (1.0 - faults.timeout_probability)
            failure_p = 1.0 - (1.0 - failure_p) * (1.0 - faults.failure_probability)
        # Layered chaos injections may push an individual rate outside
        # [0, 1] (e.g. two faults both writing 0.8); the composed hazard
        # handed to the RNG must stay a probability.
        timeout_p = min(1.0, max(0.0, timeout_p))
        failure_p = min(1.0, max(0.0, failure_p))
        if timeout_p > 0.0 and rng.random() < timeout_p:
            raise RpcTimeoutError(f"call to {endpoint!r} timed out")
        if failure_p > 0.0 and rng.random() < failure_p:
            raise RpcError(f"call to {endpoint!r} failed")

    def extra_latency_s(self, endpoint: str, rng: np.random.Generator) -> float:
        """Injected extra latency for one call to ``endpoint``."""
        faults = self.endpoint_faults.get(endpoint)
        if faults is None or faults.extra_latency_mean_s <= 0.0:
            return 0.0
        return float(rng.exponential(faults.extra_latency_mean_s))


Handler = Callable[[str, Any], Any]


class GroupReadResult:
    """Outcome of one batched ``read_power`` broadcast.

    Fast-lane endpoints have their sensed power in ``powers`` (and drawn
    latency in ``latencies``) at their broadcast position, flagged in
    ``fast_mask``.  Scalar-lane endpoints land in ``results`` /
    ``failures`` exactly as a plain :meth:`RpcTransport.broadcast`
    would record them, in broadcast order.
    """

    __slots__ = (
        "endpoints",
        "rows",
        "fast_mask",
        "powers",
        "latencies",
        "results",
        "failures",
    )

    def __init__(
        self,
        endpoints: list[str],
        rows: np.ndarray,
        fast_mask: np.ndarray,
        powers: np.ndarray,
        latencies: np.ndarray,
        results: dict[str, Any],
        failures: dict[str, Exception],
    ) -> None:
        self.endpoints = endpoints
        self.rows = rows
        self.fast_mask = fast_mask
        self.powers = powers
        self.latencies = latencies
        self.results = results
        self.failures = failures


class GroupCapResult:
    """Outcome of one batched ``set_cap`` fan-out.

    ``status`` holds one entry per item, in item order:

    * ``"ok"`` — the cap/uncap was applied (including the
      clamped-to-platform-minimum case, which the scalar controller also
      records as applied);
    * ``"error"`` — the call raised :class:`~repro.errors.RpcError`;
    * ``"noop"`` — the call returned without success or message (cannot
      happen with agent handlers; kept for parity with the scalar loop,
      which records neither a success nor a failure).
    """

    __slots__ = ("endpoints", "rows", "fast_mask", "latencies", "status")

    def __init__(
        self,
        endpoints: list[str],
        rows: np.ndarray,
        fast_mask: np.ndarray,
        latencies: np.ndarray,
        status: list[str],
    ) -> None:
        self.endpoints = endpoints
        self.rows = rows
        self.fast_mask = fast_mask
        self.latencies = latencies
        self.status = status


class _GroupPlan:
    """Cached static eligibility for one broadcast endpoint list.

    Keyed on the identity of the caller's endpoint list (controllers
    cache theirs) plus the transport's registration generation, so a
    registry change invalidates the plan.
    """

    __slots__ = ("endpoints", "generation", "rows", "sense_ok", "cap_ok", "pos")

    def __init__(
        self,
        endpoints: list[str],
        generation: int,
        rows: np.ndarray,
        sense_ok: np.ndarray,
        cap_ok: np.ndarray,
        pos: dict[str, int],
    ) -> None:
        self.endpoints = endpoints
        self.generation = generation
        self.rows = rows
        self.sense_ok = sense_ok
        self.cap_ok = cap_ok
        self.pos = pos


@runtime_checkable
class Transport(Protocol):
    """Structural surface shared by the raw and resilient transports.

    Controllers, agents, and RPC services program against this so a
    deployment can interpose :class:`~repro.rpc.resilient.ResilientTransport`
    (retries, circuit breakers, health tracking) without any of them
    changing.
    """

    injector: FailureInjector

    @property
    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        ...

    def register(self, endpoint: str, handler: Handler) -> None:
        """Register (or replace) the handler for ``endpoint``."""
        ...

    def unregister(self, endpoint: str) -> None:
        """Remove an endpoint."""
        ...

    def call(self, endpoint: str, method: str, payload: Any = None) -> Any:
        """Invoke ``method`` on ``endpoint``; may raise RpcError."""
        ...

    def broadcast(
        self, endpoints: list[str], method: str, payload: Any = None
    ) -> tuple[dict[str, Any], dict[str, Exception]]:
        """Call every endpoint; collect successes and failures."""
        ...


class RpcTransport:
    """Name-addressed request/response fabric.

    Endpoints register a handler ``(method, payload) -> response``.
    Callers invoke :meth:`call`.  Latency is drawn per call and summed
    into counters for diagnostics, but simulation time is not advanced:
    RPC latency (sub-millisecond in production) is far below the 3 s
    control cycle, so modelling it as instantaneous preserves control
    behaviour while keeping controllers synchronous and simple.
    """

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        injector: FailureInjector | None = None,
        mean_latency_s: float = 0.002,
    ) -> None:
        self._handlers: dict[str, Handler] = {}
        self._rng = rng or np.random.default_rng(0)
        self.injector = injector or FailureInjector()
        self._mean_latency_s = mean_latency_s
        self.calls_made = 0
        self.calls_failed = 0
        self.total_latency_s = 0.0
        #: Latency drawn for the most recent call — the resilience
        #: layer's deadline check reads this, since calls are
        #: synchronous and simulation time does not advance.
        self.last_call_latency_s = 0.0
        #: The attached :class:`~repro.core.agent_batch.AgentBatch`
        #: (``control_backend="vectorized"`` worlds only).
        self._batch: Any = None
        self._registry_generation = 0
        self._group_plans: dict[int, _GroupPlan] = {}
        #: Diagnostics: endpoint calls served on the batched fast lane,
        #: endpoint calls dropped to the per-endpoint scalar lane, and
        #: whole-group fallbacks (global fault rates armed).
        self.group_fast_endpoint_calls = 0
        self.group_fallback_endpoint_calls = 0
        self.group_full_fallbacks = 0
        #: Group dispatches executed (one sense or cap round per leaf).
        self.group_rounds = 0
        #: Sharded execution: when not None, group latency draws are
        #: *deferred* — each fast-lane segment records only its draw
        #: count here and returns zero latencies.  A shard worker runs
        #: its pure leaf ticks this way before the RPC token arrives,
        #: then replays the recorded segments against the token's RNG
        #: (see :meth:`replay_deferred_draws`).
        self._deferred_segments: list[int] | None = None

    # ------------------------------------------------------------------
    # Deferred latency draws (sharded execution)
    # ------------------------------------------------------------------

    def begin_deferred_draws(self) -> None:
        """Start recording group latency draws instead of performing them."""
        self._deferred_segments = []

    def end_deferred_draws(self) -> list[int]:
        """Stop recording; returns the per-segment draw counts."""
        segments = self._deferred_segments
        self._deferred_segments = None
        return segments if segments is not None else []

    def replay_deferred_draws(self, segments: list[int]) -> float:
        """Re-run recorded segments against the (token-loaded) live RNG.

        Each fast-lane segment draws its latencies through the same
        ``exponential(mean, size=count)`` call and left-to-right
        accounting the inline path uses, so RNG state and latency
        counters land bitwise where the single-process run puts them.
        Returns the worst latency drawn (the caller verifies it stayed
        under the call deadline — the deferred tick assumed no
        deadline demotion happened).
        """
        worst = 0.0
        for count in segments:
            latencies = self._draw_group_latencies(count)
            if count:
                worst = max(worst, float(latencies.max()))
        return worst

    def attach_batch(self, batch: Any) -> None:
        """Attach the agent batch enabling the group fast path."""
        self._batch = batch
        self._group_plans.clear()

    def register(self, endpoint: str, handler: Handler) -> None:
        """Register (or replace) the handler for ``endpoint``."""
        self._handlers[endpoint] = handler
        self._registry_generation += 1

    def unregister(self, endpoint: str) -> None:
        """Remove an endpoint (server decommissioned)."""
        self._handlers.pop(endpoint, None)
        self._registry_generation += 1

    @property
    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        return list(self._handlers)

    def call(self, endpoint: str, method: str, payload: Any = None) -> Any:
        """Invoke ``method`` on ``endpoint``; may raise RpcError.

        Raises:
            RpcError: endpoint unknown, down, or injected failure.
            RpcTimeoutError: injected timeout.
        """
        self.calls_made += 1
        latency = self._rng.exponential(self._mean_latency_s)
        latency += self.injector.extra_latency_s(endpoint, self._rng)
        self.last_call_latency_s = float(latency)
        self.total_latency_s += latency
        try:
            self.injector.check(endpoint, self._rng)
            handler = self._handlers.get(endpoint)
            if handler is None:
                raise RpcError(f"no endpoint registered as {endpoint!r}")
            return handler(method, payload)
        except RpcError:
            self.calls_failed += 1
            raise

    def broadcast(
        self, endpoints: list[str], method: str, payload: Any = None
    ) -> tuple[dict[str, Any], dict[str, Exception]]:
        """Call every endpoint; collect successes and failures separately.

        This is the leaf controller's "broadcast power pull": one logical
        fan-out whose partial failures the caller must handle.
        """
        results: dict[str, Any] = {}
        failures: dict[str, Exception] = {}
        for endpoint in endpoints:
            try:
                results[endpoint] = self.call(endpoint, method, payload)
            except RpcError as exc:
                failures[endpoint] = exc
        return results, failures

    def mean_latency_s(self) -> float:
        """Average per-call latency drawn so far."""
        if self.calls_made == 0:
            return 0.0
        return self.total_latency_s / self.calls_made

    # ------------------------------------------------------------------
    # Batched broadcast fast path (control_backend="vectorized")
    # ------------------------------------------------------------------
    #
    # RNG usage contract: a fast-lane run of k endpoints draws its
    # latencies as one `rng.exponential(mean, size=k)`, which yields the
    # same sequence as k scalar per-call draws; fast-lane endpoints have
    # no armed faults, so `injector.check` would consume zero draws for
    # them (composed probability 0) and `extra_latency_s` none either.
    # Scalar-lane endpoints are dispatched through `call()` at their
    # original broadcast positions.  Net effect: the transport RNG
    # consumes draws in exactly the per-endpoint order of the
    # sequential broadcast.

    def _group_allowed(self) -> bool:
        """Whether any group fast path may run under the global injector.

        Global fault rates make `injector.check` draw for *every* call,
        so batching anything would shift the draw sequence; the whole
        group falls back to the sequential scalar broadcast instead.
        """
        injector = self.injector
        return (
            injector.failure_probability == 0.0
            and injector.timeout_probability == 0.0
        )

    def _group_plan(self, endpoints: list[str]) -> _GroupPlan | None:
        batch = self._batch
        if batch is None:
            return None
        key = id(endpoints)
        plan = self._group_plans.get(key)
        if (
            plan is not None
            and plan.endpoints is endpoints
            and plan.generation == self._registry_generation
        ):
            return plan
        n = len(endpoints)
        rows = np.full(n, -1, dtype=np.intp)
        sense_ok = np.zeros(n, dtype=bool)
        cap_ok = np.zeros(n, dtype=bool)
        pos: dict[str, int] = {}
        for p, endpoint in enumerate(endpoints):
            pos[endpoint] = p
            row = batch.row_for_endpoint.get(endpoint)
            if row is None or endpoint not in self._handlers:
                continue
            rows[p] = row
            cap_ok[p] = True
            sense_ok[p] = True
        plan = _GroupPlan(
            endpoints, self._registry_generation, rows, sense_ok, cap_ok, pos
        )
        self._group_plans[key] = plan
        return plan

    def _group_fast_mask(
        self, plan: _GroupPlan, static_ok: np.ndarray
    ) -> np.ndarray:
        """Static eligibility refined by per-call endpoint state.

        Crashed agents and endpoints with *any* armed per-endpoint fault
        (down, failure/timeout rate, or latency spike) drop to the
        scalar lane so their draws and exceptions happen exactly where
        the sequential broadcast would put them.  So do rows whose
        on-board sensor is currently missing or replaced (chaos sensor
        faults swap ``server.sensor`` live): ``sense_batchable`` is
        re-read on every call, not baked into the plan.
        """
        fast = static_ok.copy()
        fast &= self._batch.healthy[plan.rows]
        fast &= self._batch.sense_batchable[plan.rows]
        injector = self.injector
        for endpoint in injector.down_endpoints:
            p = plan.pos.get(endpoint)
            if p is not None:
                fast[p] = False
        for endpoint in injector.endpoint_faults:
            p = plan.pos.get(endpoint)
            if p is not None:
                fast[p] = False
        return fast

    def _draw_group_latencies(self, count: int) -> np.ndarray:
        """`count` per-call latency draws with scalar-identical accounting."""
        if self._deferred_segments is not None:
            # Sharded pure path: record the segment, draw nothing.  The
            # counters and RNG are settled at replay time against the
            # relayed token state.
            self._deferred_segments.append(count)
            return np.zeros(count)
        self.calls_made += count
        latencies = self._rng.exponential(self._mean_latency_s, size=count)
        # Left-to-right accumulation (cumsum seeded with the running
        # total) is bitwise-identical to `total += float(l)` per call.
        self.total_latency_s = float(
            np.cumsum(np.concatenate(([self.total_latency_s], latencies)))[-1]
        )
        self.last_call_latency_s = float(latencies[-1])
        return latencies

    def _execute_group_read(
        self,
        endpoints: list[str],
        rows: np.ndarray,
        fast: np.ndarray,
        scalar_call: Callable[[str], Any],
    ) -> GroupReadResult:
        self.group_rounds += 1
        n = len(endpoints)
        powers = np.zeros(n)
        latencies = np.zeros(n)
        results: dict[str, Any] = {}
        failures: dict[str, Exception] = {}
        batch = self._batch
        flips = np.flatnonzero(np.diff(fast)) + 1
        bounds = [0, *flips.tolist(), n]
        for k in range(len(bounds) - 1):
            i, j = bounds[k], bounds[k + 1]
            if i == j:
                continue
            if fast[i]:
                latencies[i:j] = self._draw_group_latencies(j - i)
                powers[i:j] = batch.read_power(rows[i:j])
                self.group_fast_endpoint_calls += j - i
            else:
                for p in range(i, j):
                    endpoint = endpoints[p]
                    self.group_fallback_endpoint_calls += 1
                    try:
                        results[endpoint] = scalar_call(endpoint)
                    except RpcError as exc:
                        failures[endpoint] = exc
        return GroupReadResult(
            endpoints, rows, fast, powers, latencies, results, failures
        )

    def _execute_group_cap(
        self,
        items: list[tuple[str, str, float | None]],
        blocked: set[str] | None,
        scalar_call: Callable[..., Any],
    ) -> GroupCapResult:
        from repro.core.messages import CapRequest

        self.group_rounds += 1
        batch = self._batch
        injector = self.injector
        n = len(items)
        rows = np.full(n, -1, dtype=np.intp)
        fast = np.zeros(n, dtype=bool)
        is_uncap = np.zeros(n, dtype=bool)
        healthy = batch.healthy
        for p, (endpoint, _server_id, limit_w) in enumerate(items):
            is_uncap[p] = limit_w is None
            row = batch.row_for_endpoint.get(endpoint)
            if row is None or endpoint not in self._handlers:
                continue
            if (
                endpoint in injector.down_endpoints
                or endpoint in injector.endpoint_faults
            ):
                continue
            if blocked is not None and endpoint in blocked:
                continue
            if not healthy[row]:
                continue
            rows[p] = row
            fast[p] = True
        latencies = np.zeros(n)
        status: list[str] = ["noop"] * n
        # Segment on both lane and cap/uncap so each fast run issues one
        # homogeneous batch.set_cap.
        key = fast.astype(np.int8) * 2 + is_uncap.astype(np.int8)
        flips = np.flatnonzero(np.diff(key)) + 1
        bounds = [0, *flips.tolist(), n]
        for k in range(len(bounds) - 1):
            i, j = bounds[k], bounds[k + 1]
            if i == j:
                continue
            if fast[i]:
                latencies[i:j] = self._draw_group_latencies(j - i)
                if is_uncap[i]:
                    batch.set_cap(rows[i:j], None)
                else:
                    limits = np.array(
                        [items[p][2] for p in range(i, j)], dtype=float
                    )
                    batch.set_cap(rows[i:j], limits)
                status[i:j] = ["ok"] * (j - i)
                self.group_fast_endpoint_calls += j - i
            else:
                for p in range(i, j):
                    endpoint, server_id, limit_w = items[p]
                    self.group_fallback_endpoint_calls += 1
                    request = CapRequest(server_id=server_id, limit_w=limit_w)
                    try:
                        response = scalar_call(endpoint, "set_cap", request)
                    except RpcError:
                        status[p] = "error"
                    else:
                        if limit_w is None or (
                            response.success or response.message
                        ):
                            status[p] = "ok"
        return GroupCapResult(
            [endpoint for endpoint, _sid, _limit in items],
            rows,
            fast,
            latencies,
            status,
        )

    def group_read_power(
        self, endpoints: list[str]
    ) -> GroupReadResult | None:
        """Batched ``read_power`` broadcast, or None to use the scalar path.

        Requires an attached agent batch and no armed global fault
        rates; per-endpoint faults, crashed agents, and sensor-less
        servers drop individually to the scalar lane inside the group.
        """
        plan = self._group_plan(endpoints)
        if plan is None:
            return None
        if not self._group_allowed():
            self.group_full_fallbacks += 1
            return None
        fast = self._group_fast_mask(plan, plan.sense_ok)
        return self._execute_group_read(
            endpoints,
            plan.rows,
            fast,
            lambda endpoint: self.call(endpoint, "read_power", None),
        )

    def group_set_cap(
        self, items: list[tuple[str, str, float | None]]
    ) -> GroupCapResult | None:
        """Batched ``set_cap`` fan-out, or None to use the scalar path.

        ``items`` is ``(endpoint, server_id, limit_w-or-None)`` in the
        caller's actuation order, which the fast lane preserves.
        """
        if self._batch is None:
            return None
        if not self._group_allowed():
            self.group_full_fallbacks += 1
            return None
        return self._execute_group_cap(items, None, self.call)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable transport state.

        Captures the latency RNG in place (this generator is forked off
        the world's internal stream family and is not reachable through
        the root :class:`~repro.simulation.rng.RngStreams`), the call
        counters, and the failure injector's live fault tables.  The
        handler registry is wiring, rebuilt by the world recipe.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "calls_made": self.calls_made,
            "calls_failed": self.calls_failed,
            "total_latency_s": self.total_latency_s,
            "last_call_latency_s": self.last_call_latency_s,
            "injector": {
                "failure_probability": self.injector.failure_probability,
                "timeout_probability": self.injector.timeout_probability,
                "down_endpoints": sorted(self.injector.down_endpoints),
                "endpoint_faults": {
                    endpoint: {
                        "failure_probability": faults.failure_probability,
                        "timeout_probability": faults.timeout_probability,
                        "extra_latency_mean_s": faults.extra_latency_mean_s,
                    }
                    for endpoint, faults in sorted(
                        self.injector.endpoint_faults.items()
                    )
                },
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore transport counters, RNG state, and fault tables."""
        self._rng.bit_generator.state = state["rng"]
        self.calls_made = int(state["calls_made"])
        self.calls_failed = int(state["calls_failed"])
        self.total_latency_s = float(state["total_latency_s"])
        self.last_call_latency_s = float(state["last_call_latency_s"])
        injector = state["injector"]
        self.injector.failure_probability = float(
            injector["failure_probability"]
        )
        self.injector.timeout_probability = float(
            injector["timeout_probability"]
        )
        self.injector.down_endpoints = set(injector["down_endpoints"])
        self.injector.endpoint_faults = {
            endpoint: EndpointFaults(
                failure_probability=float(faults["failure_probability"]),
                timeout_probability=float(faults["timeout_probability"]),
                extra_latency_mean_s=float(faults["extra_latency_mean_s"]),
            )
            for endpoint, faults in injector["endpoint_faults"].items()
        }
