"""Communication substrate: a simulated Thrift-like RPC fabric.

The paper uses Thrift RPC between controllers and agents because it is
efficient and proven at the scale of many thousands of servers.  Here the
fabric is simulated: calls are synchronous (their latency is tracked but
is negligible against the 3 s control cycle), and an injector can fail or
time out calls per-endpoint to exercise Dynamo's estimation and
alerting paths.

:mod:`repro.rpc.resilient` layers a call policy (deadline, bounded
retries with deterministic backoff) and per-endpoint circuit breakers on
top of any :class:`Transport`, feeding per-endpoint health history.
"""

from repro.rpc.resilient import BreakerState, CircuitBreaker, ResilientTransport
from repro.rpc.service import RequestHandler, RpcService
from repro.rpc.transport import FailureInjector, RpcTransport, Transport

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FailureInjector",
    "RequestHandler",
    "ResilientTransport",
    "RpcService",
    "RpcTransport",
    "Transport",
]
