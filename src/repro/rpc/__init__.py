"""Communication substrate: a simulated Thrift-like RPC fabric.

The paper uses Thrift RPC between controllers and agents because it is
efficient and proven at the scale of many thousands of servers.  Here the
fabric is simulated: calls are synchronous (their latency is tracked but
is negligible against the 3 s control cycle), and an injector can fail or
time out calls per-endpoint to exercise Dynamo's estimation and
alerting paths.
"""

from repro.rpc.service import RequestHandler, RpcService
from repro.rpc.transport import FailureInjector, RpcTransport

__all__ = [
    "FailureInjector",
    "RequestHandler",
    "RpcService",
    "RpcTransport",
]
