"""Request-handler framing for RPC services.

A tiny dispatch layer so components expose named methods over the
transport without hand-writing ``if method == ...`` ladders.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import RpcError
from repro.rpc.transport import Transport

RequestHandler = Callable[[Any], Any]


class RpcService:
    """A named endpoint with method-level dispatch."""

    def __init__(self, transport: Transport, endpoint: str) -> None:
        self._transport = transport
        self.endpoint = endpoint
        self._methods: dict[str, RequestHandler] = {}
        transport.register(endpoint, self._dispatch)

    def method(self, name: str, handler: RequestHandler) -> None:
        """Register a method handler."""
        self._methods[name] = handler

    def _dispatch(self, method: str, payload: Any) -> Any:
        handler = self._methods.get(method)
        if handler is None:
            raise RpcError(
                f"endpoint {self.endpoint!r} has no method {method!r}"
            )
        return handler(payload)

    def shutdown(self) -> None:
        """Deregister from the transport."""
        self._transport.unregister(self.endpoint)
