"""repro — a from-scratch reproduction of Dynamo (ISCA 2016).

Dynamo is Facebook's data center-wide power management system: a
hierarchy of power controllers mirroring the power delivery topology,
agents on every server reading power and enforcing RAPL caps, the
three-band capping algorithm, priority-group/high-bucket-first
performance-aware capping, and punish-offender-first coordination
between levels.

Quickstart::

    from repro import (
        DataCenterSpec, Dynamo, FleetDriver, RngStreams,
        ServiceAllocation, SimulationEngine, build_datacenter,
        plan_quotas, populate_fleet,
    )

    engine = SimulationEngine()
    topology = build_datacenter(DataCenterSpec(msb_count=1, sbs_per_msb=1,
                                               rpps_per_sb=2, racks_per_rpp=2))
    plan_quotas(topology)
    rng = RngStreams(seed=42)
    fleet = populate_fleet(topology, [ServiceAllocation("web", 40)], rng)
    dynamo = Dynamo(engine, topology, fleet, rng_streams=rng.fork("dynamo"))
    FleetDriver(engine, topology, fleet).start()
    dynamo.start()
    engine.run_until(600.0)
"""

from repro.config import (
    AgentConfig,
    BucketConfig,
    ControllerConfig,
    DynamoConfig,
    RaplConfig,
    ThreeBandConfig,
)
from repro.core.dynamo import Dynamo
from repro.errors import ReproError
from repro.fleet import Fleet, FleetDriver, ServiceAllocation, populate_fleet
from repro.power.builder import DataCenterSpec, build_datacenter
from repro.power.oversubscription import plan_quotas
from repro.power.topology import PowerTopology
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams

__version__ = "1.0.0"

__all__ = [
    "AgentConfig",
    "BucketConfig",
    "ControllerConfig",
    "DataCenterSpec",
    "Dynamo",
    "DynamoConfig",
    "Fleet",
    "FleetDriver",
    "PowerTopology",
    "RaplConfig",
    "ReproError",
    "RngStreams",
    "ServiceAllocation",
    "SimulationEngine",
    "ThreeBandConfig",
    "build_datacenter",
    "plan_quotas",
    "populate_fleet",
    "__version__",
]
