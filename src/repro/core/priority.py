"""Service priority groups and SLA power floors (Section III-C3).

Services are categorized into predefined priority groups; when a leaf
controller must shed power it drains the *lowest* priority group first,
moving upward only if lower groups cannot absorb the whole cut.  Each
group's SLA sets the lowest allowable per-server power cap, so even the
lowest-priority servers are never pushed below a usable floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.registry import SERVICE_SPECS, ServiceSpec


@dataclass(frozen=True)
class PriorityAssignment:
    """Resolved priority data for one server."""

    server_id: str
    service: str
    priority_group: int
    sla_min_cap_w: float


class PriorityPolicy:
    """Maps services to priority groups and SLA floors.

    Defaults come from the shared service registry; deployments can
    override or register extra services (the paper's operators tune
    priorities per cluster).
    """

    def __init__(
        self, specs: dict[str, ServiceSpec] | None = None
    ) -> None:
        self._specs: dict[str, ServiceSpec] = dict(
            specs if specs is not None else SERVICE_SPECS
        )

    def register(self, spec: ServiceSpec) -> None:
        """Add or replace a service spec."""
        self._specs[spec.name] = spec

    def spec(self, service: str) -> ServiceSpec:
        """Spec for a service.

        Unknown services get a conservative default: priority 1 with a
        150 W floor — treating surprise services as cappable but not
        freely so, and logging is the deployment's job.
        """
        if service in self._specs:
            return self._specs[service]
        return ServiceSpec(service, priority_group=1, sla_min_cap_w=150.0)

    def priority_group(self, service: str) -> int:
        """Priority group index (lower = capped first)."""
        return self.spec(service).priority_group

    def sla_min_cap_w(self, service: str) -> float:
        """Lowest allowable power cap for servers of this service."""
        return self.spec(service).sla_min_cap_w

    def groups_ascending(self, services: list[str]) -> list[int]:
        """Distinct priority groups present, lowest (cap-first) first."""
        return sorted({self.priority_group(s) for s in services})

    def assign(self, server_id: str, service: str) -> PriorityAssignment:
        """Resolve one server's priority data."""
        spec = self.spec(service)
        return PriorityAssignment(
            server_id=server_id,
            service=service,
            priority_group=spec.priority_group,
            sla_min_cap_w=spec.sla_min_cap_w,
        )

    def validate(self) -> None:
        """Sanity-check registered specs."""
        for spec in self._specs.values():
            if spec.sla_min_cap_w < 0:
                raise ConfigurationError(
                    f"service {spec.name!r} has negative SLA floor"
                )
            if spec.priority_group < 0:
                raise ConfigurationError(
                    f"service {spec.name!r} has negative priority group"
                )
