"""The Dynamo facade: attach the whole system to a datacenter and run it.

Wires together everything Section III describes: one agent per server on
a shared RPC fabric, a controller hierarchy mirroring the power topology
(leaves at the RPP level by default), the consolidated coordinator
scheduling all controller cycles, and the agent watchdog.  Experiments
construct a :class:`Dynamo`, call :meth:`start`, and run the engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import DynamoConfig
from repro.core.agent import DynamoAgent
from repro.core.agent_batch import AgentBatch
from repro.core.coordinator import ControllerCoordinator
from repro.core.failover import FailoverController
from repro.core.hierarchy import (
    ControllerHierarchy,
    build_controller_hierarchy,
)
from repro.core.health import HealthRegistry
from repro.core.leaf_controller import LeafPowerController
from repro.core.upper_controller import UpperLevelPowerController
from repro.core.priority import PriorityPolicy
from repro.core.watchdog import AgentWatchdog
from repro.fleet import Fleet
from repro.power.topology import PowerTopology
from repro.rpc.resilient import ResilientTransport
from repro.rpc.transport import FailureInjector, RpcTransport, Transport
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams
from repro.telemetry.alerts import AlertSink
from repro.telemetry.tracing import TraceBuffer

if TYPE_CHECKING:
    from repro.economics.governor import EconomicGovernor


class Dynamo:
    """A complete Dynamo deployment over one datacenter."""

    def __init__(
        self,
        engine: SimulationEngine,
        topology: PowerTopology,
        fleet: Fleet,
        *,
        config: DynamoConfig | None = None,
        policy: PriorityPolicy | None = None,
        rng_streams: RngStreams | None = None,
        injector: FailureInjector | None = None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.fleet = fleet
        self.config = config or DynamoConfig()
        self.policy = policy or PriorityPolicy()
        self.alerts = AlertSink()
        #: Shared per-tick trace ring for every controller in the
        #: deployment (the ``repro trace`` / chaos-scorecard feed).
        self.traces = TraceBuffer()
        rng_streams = rng_streams or RngStreams(0)
        self.transport = RpcTransport(
            rng_streams.stream("rpc"), injector=injector
        )
        resilience = self.config.resilience
        #: Per-endpoint success/failure/latency history plus quarantine
        #: policy, fed by the resilient transport.
        self.health = HealthRegistry(
            quarantine_after_opens=resilience.quarantine_after_opens,
            quarantine_duration_s=resilience.quarantine_duration_s,
        )
        self.resilient_transport: ResilientTransport | None = None
        #: What controllers call through: the resilience layer (deadline,
        #: retries, breakers) when enabled, the raw fabric otherwise.
        #: Agents always register on the raw transport — registration is
        #: pass-through either way.
        self.controller_transport: Transport = self.transport
        if resilience.enabled:
            self.resilient_transport = ResilientTransport(
                self.transport,
                policy=resilience.call,
                breaker=resilience.breaker,
                health=self.health,
                rng=rng_streams.stream("rpc.resilience"),
                clock=engine.clock,
            )
            self.controller_transport = self.resilient_transport
        self.agents: dict[str, DynamoAgent] = {
            server_id: DynamoAgent(server, self.transport, clock=engine.clock)
            for server_id, server in fleet.servers.items()
        }
        #: The batched control plane (``enable_vectorized_control``);
        #: None while the deployment runs the scalar reference path.
        self.agent_batch: AgentBatch | None = None
        #: The economic governor, when one is attached
        #: (:class:`~repro.economics.governor.EconomicGovernor` sets
        #: this at construction); None for plain deployments.
        self.economics: EconomicGovernor | None = None
        self.hierarchy: ControllerHierarchy = build_controller_hierarchy(
            topology,
            self.controller_transport,
            config=self.config,
            policy=self.policy,
            alerts=self.alerts,
            tracer=self.traces,
        )
        if not self.config.fleet.device_metering:
            # Without breaker/device metering there is no aggregate
            # residual to disaggregate: detach any configured estimator
            # so degraded sensing falls back to abort-and-alert.
            for instance in self._controller_instances():
                if isinstance(instance, LeafPowerController):
                    instance.disable_estimation()
        self.coordinator = ControllerCoordinator(engine, self.hierarchy)
        self.watchdog = AgentWatchdog(
            engine,
            list(self.agents.values()),
            interval_s=self.config.agent.watchdog_interval_s,
            backoff_base_s=self.config.agent.watchdog_backoff_base_s,
            backoff_max_s=self.config.agent.watchdog_backoff_max_s,
            restart_budget=self.config.agent.watchdog_restart_budget,
            budget_window_s=self.config.agent.watchdog_budget_window_s,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start all controller cycles and the watchdog."""
        self.coordinator.start()
        self.watchdog.start(phase=self.config.agent.watchdog_interval_s)

    def stop(self) -> None:
        """Stop all periodic activity."""
        self.coordinator.stop()
        self.watchdog.stop()

    # ------------------------------------------------------------------
    # Vectorized control plane
    # ------------------------------------------------------------------

    def enable_vectorized_control(self, driver) -> AgentBatch:
        """Switch the control plane onto the batched fast path.

        Packs per-agent state into an :class:`AgentBatch` aligned with
        the fleet driver's vectorized stepper, attaches it to the raw
        transport (enabling the group broadcast dispatch) and to every
        leaf controller instance, including both halves of failover
        pairs.  Idempotent per deployment; requires
        ``physics_backend="vectorized"``.
        """
        if self.agent_batch is not None:
            return self.agent_batch
        stepper = getattr(driver, "stepper", None)
        if stepper is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "vectorized control requires the vectorized physics "
                "backend (no stepper on this fleet driver)"
            )
        batch = AgentBatch(
            self.agents,
            stepper,
            prefetch_draws=self.config.fleet.prefetch_draws,
        )
        self.agent_batch = batch
        self.transport.attach_batch(batch)
        for instance in self._controller_instances():
            if isinstance(instance, LeafPowerController):
                instance.attach_control_batch(batch)
        return batch

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------

    def enable_failover(self, device_name: str) -> FailoverController:
        """Wrap one controller in a primary/backup pair (Section III-E).

        Builds a backup instance of the controller protecting
        ``device_name``, wraps primary and backup in a
        :class:`FailoverController`, and swaps the pair into the
        hierarchy, its parent's child list, and the coordinator's tick
        dispatch.  Idempotent: a second call returns the existing pair.
        """
        existing = self.hierarchy.controller(device_name)
        if isinstance(existing, FailoverController):
            return existing
        if device_name in self.hierarchy.leaf_controllers:
            primary = self.hierarchy.leaf_controllers[device_name]
            assert isinstance(primary, LeafPowerController)
            backup = LeafPowerController(
                primary.device,
                primary.server_ids,
                self.controller_transport,
                config=self.config.controller,
                bucket=self.config.bucket,
                policy=self.policy,
                alerts=self.alerts,
                tracer=self.traces,
            )
            if self.agent_batch is not None:
                backup.attach_control_batch(self.agent_batch)
            if not self.config.fleet.device_metering:
                backup.disable_estimation()
            pair = FailoverController(primary, backup)
            self.hierarchy.leaf_controllers[device_name] = pair
        else:
            primary = self.hierarchy.upper_controllers[device_name]
            assert isinstance(primary, UpperLevelPowerController)
            backup = UpperLevelPowerController(
                primary.device,
                primary.children,
                config=self.config.controller,
                alerts=self.alerts,
                tracer=self.traces,
            )
            pair = FailoverController(primary, backup)
            self.hierarchy.upper_controllers[device_name] = pair
        self._replace_in_parents(device_name, pair)
        self.coordinator.replace_controller(device_name, pair)
        return pair

    def _replace_in_parents(self, device_name: str, pair) -> None:
        """Point every parent controller's child entry at the pair."""
        for upper in self.hierarchy.upper_controllers.values():
            for instance in (
                (upper.primary, upper.backup)
                if isinstance(upper, FailoverController)
                else (upper,)
            ):
                children = getattr(instance, "children", [])
                for i, child in enumerate(children):
                    if child.name == device_name and child is not pair:
                        children[i] = pair

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def controller(self, device_name: str):
        """The controller protecting one device."""
        return self.hierarchy.controller(device_name)

    def set_band_config(self, device_name: str, band_config) -> None:
        """Override one controller's three-band thresholds.

        The paper: "we can configure the capping and uncapping
        thresholds on a per-controller basis enabling customizable
        trade-offs between power-efficiency and performance at
        different levels of the power delivery hierarchy."  Routed
        through :meth:`~repro.core.controller.BaseController.replace_band`,
        which carries capping state over so a live controller does not
        lose track of caps it has in force — and which a
        :class:`FailoverController` forwards to both primary and backup.
        """
        self.hierarchy.controller(device_name).replace_band(band_config)

    def leaf_controller(self, device_name: str):
        """The leaf controller for one leaf device."""
        return self.hierarchy.leaf_controllers[device_name]

    def controllers_by_suite(self) -> dict[int, list[str]]:
        """Controller names grouped by suite (room).

        In production all controllers for a suite consolidate into one
        binary (~100 threads); this grouping is how a deployment would
        shard the hierarchy across those binaries.  Devices without a
        suite tag land in group -1.
        """
        groups: dict[int, list[str]] = {}
        for controller in self.hierarchy.all_controllers:
            suite = controller.device.suite
            groups.setdefault(-1 if suite is None else suite, []).append(
                controller.name
            )
        return {suite: sorted(names) for suite, names in groups.items()}

    def _controller_instances(self):
        """Every concrete controller instance (both halves of a pair)."""
        for controller in self.hierarchy.all_controllers:
            if isinstance(controller, FailoverController):
                yield controller.primary
                yield controller.backup
            else:
                yield controller

    def operating_modes(self) -> dict[str, str]:
        """Current operating posture per controller (active instance)."""
        modes: dict[str, str] = {}
        for controller in self.hierarchy.all_controllers:
            instance = (
                controller.active
                if isinstance(controller, FailoverController)
                else controller
            )
            machine = getattr(instance, "modes", None)
            if machine is not None:
                modes[controller.name] = machine.mode.value
        return modes

    def safe_mode_entries(self) -> int:
        """SAFE-mode entries across every controller instance."""
        return sum(
            machine.safe_entries
            for machine in (
                getattr(i, "modes", None) for i in self._controller_instances()
            )
            if machine is not None
        )

    def degraded_mode_entries(self) -> int:
        """DEGRADED-mode entries across every controller instance."""
        return sum(
            machine.degraded_entries
            for machine in (
                getattr(i, "modes", None) for i in self._controller_instances()
            )
            if machine is not None
        )

    def sensor_degraded_entries(self) -> int:
        """SENSOR_DEGRADED entries across every controller instance."""
        return sum(
            machine.sensor_degraded_entries
            for machine in (
                getattr(i, "modes", None) for i in self._controller_instances()
            )
            if machine is not None
        )

    def time_in_sensor_degraded_s(self, now_s: float) -> float:
        """Total time spent in SENSOR_DEGRADED, summed over instances."""
        from repro.core.health import OperatingMode

        return sum(
            machine.time_in_mode_s(OperatingMode.SENSOR_DEGRADED, now_s)
            for machine in (
                getattr(i, "modes", None) for i in self._controller_instances()
            )
            if machine is not None
        )

    def capped_server_count(self) -> int:
        """Servers currently under a RAPL cap, fleet-wide."""
        return len(self.fleet.capped_servers())

    def total_cap_events(self) -> int:
        """Capping activations across all controllers."""
        return sum(c.cap_events for c in self.hierarchy.all_controllers)

    def total_uncap_events(self) -> int:
        """Uncapping activations across all controllers."""
        return sum(c.uncap_events for c in self.hierarchy.all_controllers)

    def __repr__(self) -> str:
        return (
            f"Dynamo(devices={self.topology.device_count}, "
            f"servers={len(self.fleet.servers)}, "
            f"controllers={self.hierarchy.controller_count})"
        )
