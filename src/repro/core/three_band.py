"""The three-band power capping/uncapping algorithm (Figure 10).

Three thresholds partition the power axis under a device's limit:

* **capping threshold** (top band, ~99% of the breaker limit): when
  aggregated power exceeds it, cap down to the capping target.
* **capping target** (middle band, ~95% of the limit, "conservatively
  chosen to be 5% below the breaker limit for safety").
* **uncapping threshold** (bottom band): uncapping triggers only when
  power falls below it, eliminating cap/uncap oscillation.

The paper chose this deliberately simple hysteresis controller over
fancier alternatives because reliability at scale beats optimality
(Section VI, "Keep the design simple").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import ThreeBandConfig
from repro.errors import ConfigurationError


class BandAction(enum.Enum):
    """Decision of one control cycle."""

    CAP = "cap"
    UNCAP = "uncap"
    HOLD = "hold"


@dataclass(frozen=True)
class BandDecision:
    """The action plus the power cut it implies (0 unless capping)."""

    action: BandAction
    total_power_cut_w: float
    limit_w: float
    aggregated_power_w: float


class ThreeBandController:
    """Stateful three-band decision logic for one power device.

    The state is whether any capping from this controller is currently in
    force: uncapping is only meaningful while capped, and the HOLD band
    between uncapping threshold and capping threshold preserves whatever
    state the controller is in (the hysteresis).
    """

    def __init__(
        self,
        config: ThreeBandConfig | None = None,
        *,
        capping_active: bool = False,
    ) -> None:
        self.config = config or ThreeBandConfig()
        # ``capping_active`` seeds the hysteresis state so a threshold
        # swap on a live controller keeps caps-in-force accounted.
        self._capping_active = capping_active

    @property
    def capping_active(self) -> bool:
        """Whether this controller currently has caps in force."""
        return self._capping_active

    def thresholds_w(self, limit_w: float) -> tuple[float, float, float]:
        """(capping threshold, capping target, uncapping threshold) in W."""
        if limit_w <= 0:
            raise ConfigurationError("device limit must be positive")
        return (
            limit_w * self.config.capping_threshold,
            limit_w * self.config.capping_target,
            limit_w * self.config.uncapping_threshold,
        )

    def decide(self, aggregated_power_w: float, limit_w: float) -> BandDecision:
        """One control-cycle decision for the given aggregate and limit."""
        cap_at, target, uncap_at = self.thresholds_w(limit_w)
        return self.decide_absolute(
            aggregated_power_w, limit_w, cap_at, target, uncap_at
        )

    def decide_absolute(
        self,
        aggregated_power_w: float,
        limit_w: float,
        cap_at: float,
        target: float,
        uncap_at: float,
    ) -> BandDecision:
        """Decision against explicitly supplied band thresholds.

        Controllers under a *contractual* limit use this: the parent
        already embedded its safety margin when computing the limit, so
        the child targets the contractual value itself rather than
        discounting it again (compounded 0.95 x 0.95 margins would land
        the subtree below the parent's uncapping threshold and flap).
        """
        if aggregated_power_w > cap_at:
            self._capping_active = True
            return BandDecision(
                action=BandAction.CAP,
                total_power_cut_w=aggregated_power_w - target,
                limit_w=limit_w,
                aggregated_power_w=aggregated_power_w,
            )
        if self._capping_active and aggregated_power_w < uncap_at:
            self._capping_active = False
            return BandDecision(
                action=BandAction.UNCAP,
                total_power_cut_w=0.0,
                limit_w=limit_w,
                aggregated_power_w=aggregated_power_w,
            )
        return BandDecision(
            action=BandAction.HOLD,
            total_power_cut_w=0.0,
            limit_w=limit_w,
            aggregated_power_w=aggregated_power_w,
        )

    def reset(self) -> None:
        """Forget capping state (controller restart)."""
        self._capping_active = False

    def snapshot_state(self) -> dict:
        """Serializable hysteresis state."""
        return {"capping_active": self._capping_active}

    def restore_state(self, state: dict) -> None:
        """Restore hysteresis state in place."""
        self._capping_active = bool(state["capping_active"])
