"""Agent watchdog (Section III-E).

"A script periodically checks the health of an agent and restarts the
agents in case the agent crashes."  The watchdog sweeps all registered
agents on its interval and restarts any that report unhealthy.

Repeatedly failing agents are handled defensively: each consecutive
restart of the same agent doubles a per-agent backoff (``base * 2**(n-1)``
seconds, capped), and a restart budget per rolling window bounds how much
restarting one crash-looping agent can consume.  All outcomes are counted
— restarts, backoff deferrals, budget suppressions — and timestamped so
the chaos scorecard can measure time-to-recover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DynamoAgent
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess


@dataclass(frozen=True)
class RestartRecord:
    """One watchdog restart of one agent."""

    time_s: float
    server_id: str
    attempt: int


@dataclass
class _WatchState:
    """Per-agent restart bookkeeping."""

    consecutive_restarts: int = 0
    next_restart_s: float = 0.0
    window_start_s: float = 0.0
    window_restarts: int = 0


class AgentWatchdog:
    """Periodic health-check-and-restart sweep over a set of agents."""

    def __init__(
        self,
        engine: SimulationEngine,
        agents: list[DynamoAgent],
        *,
        interval_s: float = 30.0,
        priority: int = 30,
        backoff_base_s: float = 30.0,
        backoff_max_s: float = 480.0,
        restart_budget: int = 8,
        budget_window_s: float = 900.0,
    ) -> None:
        self._agents = list(agents)
        self._backoff_base_s = float(backoff_base_s)
        self._backoff_max_s = float(backoff_max_s)
        self._restart_budget = int(restart_budget)
        self._budget_window_s = float(budget_window_s)
        self._states: dict[str, _WatchState] = {}
        self.restarts = 0
        self.restarts_suppressed = 0
        self.backoff_deferrals = 0
        self.restart_log: list[RestartRecord] = []
        self._process = PeriodicProcess(
            engine,
            interval_s,
            self._sweep,
            label="agent-watchdog",
            priority=priority,
        )

    def add_agent(self, agent: DynamoAgent) -> None:
        """Register another agent to watch."""
        self._agents.append(agent)

    def start(self, phase: float = 0.0) -> None:
        """Begin sweeping."""
        self._process.start(phase)

    def stop(self) -> None:
        """Stop sweeping."""
        self._process.stop()

    def _sweep(self, now_s: float) -> None:
        for agent in self._agents:
            server_id = agent.server.server_id
            state = self._states.get(server_id)
            if agent.healthy:
                # A healthy sighting resets the backoff ladder; the
                # budget window keeps counting so flapping agents still
                # exhaust it.
                if state is not None:
                    state.consecutive_restarts = 0
                    state.next_restart_s = 0.0
                continue
            if state is None:
                state = _WatchState(window_start_s=now_s)
                self._states[server_id] = state
            if now_s - state.window_start_s >= self._budget_window_s:
                state.window_start_s = now_s
                state.window_restarts = 0
            if state.window_restarts >= self._restart_budget:
                self.restarts_suppressed += 1
                continue
            if now_s < state.next_restart_s:
                self.backoff_deferrals += 1
                continue
            agent.restart()
            state.consecutive_restarts += 1
            state.window_restarts += 1
            backoff = self._backoff_base_s * 2.0 ** (state.consecutive_restarts - 1)
            state.next_restart_s = now_s + min(backoff, self._backoff_max_s)
            self.restarts += 1
            self.restart_log.append(
                RestartRecord(
                    time_s=now_s,
                    server_id=server_id,
                    attempt=state.consecutive_restarts,
                )
            )

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable backoff ladders, budgets, and restart history."""
        return {
            "states": {
                server_id: {
                    "consecutive_restarts": s.consecutive_restarts,
                    "next_restart_s": s.next_restart_s,
                    "window_start_s": s.window_start_s,
                    "window_restarts": s.window_restarts,
                }
                for server_id, s in self._states.items()
            },
            "restarts": self.restarts,
            "restarts_suppressed": self.restarts_suppressed,
            "backoff_deferrals": self.backoff_deferrals,
            "restart_log": [
                {
                    "time_s": r.time_s,
                    "server_id": r.server_id,
                    "attempt": r.attempt,
                }
                for r in self.restart_log
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore watchdog bookkeeping.

        The sweep schedule itself (a :class:`PeriodicProcess`) is
        re-armed separately by the snapshot registry, which replays all
        pending events in original-sequence order.
        """
        self._states = {
            server_id: _WatchState(
                consecutive_restarts=int(s["consecutive_restarts"]),
                next_restart_s=float(s["next_restart_s"]),
                window_start_s=float(s["window_start_s"]),
                window_restarts=int(s["window_restarts"]),
            )
            for server_id, s in state["states"].items()
        }
        self.restarts = int(state["restarts"])
        self.restarts_suppressed = int(state["restarts_suppressed"])
        self.backoff_deferrals = int(state["backoff_deferrals"])
        self.restart_log = [
            RestartRecord(
                time_s=float(r["time_s"]),
                server_id=str(r["server_id"]),
                attempt=int(r["attempt"]),
            )
            for r in state["restart_log"]
        ]
    @property
    def process(self) -> PeriodicProcess:
        """The sweep schedule (for snapshot capture/re-arming)."""
        return self._process

    def consecutive_restarts(self, server_id: str) -> int:
        """Restarts of ``server_id`` since it was last seen healthy."""
        state = self._states.get(server_id)
        return 0 if state is None else state.consecutive_restarts

    def last_restart_time_s(self) -> float | None:
        """Time of the most recent restart, or None if none yet."""
        if not self.restart_log:
            return None
        return self.restart_log[-1].time_s

    @property
    def agent_count(self) -> int:
        """Number of agents under watch."""
        return len(self._agents)
