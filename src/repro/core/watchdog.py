"""Agent watchdog (Section III-E).

"A script periodically checks the health of an agent and restarts the
agents in case the agent crashes."  The watchdog sweeps all registered
agents on its interval and restarts any that report unhealthy, counting
restarts for observability.
"""

from __future__ import annotations

from repro.core.agent import DynamoAgent
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess


class AgentWatchdog:
    """Periodic health-check-and-restart sweep over a set of agents."""

    def __init__(
        self,
        engine: SimulationEngine,
        agents: list[DynamoAgent],
        *,
        interval_s: float = 30.0,
        priority: int = 30,
    ) -> None:
        self._agents = list(agents)
        self.restarts = 0
        self._process = PeriodicProcess(
            engine,
            interval_s,
            self._sweep,
            label="agent-watchdog",
            priority=priority,
        )

    def add_agent(self, agent: DynamoAgent) -> None:
        """Register another agent to watch."""
        self._agents.append(agent)

    def start(self, phase: float = 0.0) -> None:
        """Begin sweeping."""
        self._process.start(phase)

    def stop(self) -> None:
        """Stop sweeping."""
        self._process.stop()

    def _sweep(self, now_s: float) -> None:
        for agent in self._agents:
            if not agent.healthy:
                agent.restart()
                self.restarts += 1

    @property
    def agent_count(self) -> int:
        """Number of agents under watch."""
        return len(self._agents)
