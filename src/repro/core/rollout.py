"""Four-phase staged rollout of new agent/controller logic (Section VI).

"We use a four-phase staged roll-out for new changes to the agent or
control logic, so any serious issues will be captured in early phases
before going wide."

:class:`StagedRollout` models that process: a change is deployed to
increasing fractions of the fleet, with a health gate between phases.
If the gate fails, the rollout halts and already-updated agents are
rolled back.  Dynamo itself keeps running throughout — the point of the
process is that a bad change never reaches the whole fleet at once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.core.agent import DynamoAgent
from repro.errors import ConfigurationError


class RolloutState(enum.Enum):
    """Lifecycle of a staged rollout."""

    PENDING = "pending"
    IN_PROGRESS = "in_progress"
    COMPLETE = "complete"
    ROLLED_BACK = "rolled_back"


#: Fleet fraction deployed at the end of each phase.
DEFAULT_PHASES = (0.01, 0.10, 0.50, 1.0)

#: A health gate inspects the deployed agents and returns True when the
#: phase looks healthy enough to proceed.
HealthGate = Callable[[list[DynamoAgent]], bool]


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one rollout phase."""

    phase_index: int
    fleet_fraction: float
    agents_deployed: int
    healthy: bool


class StagedRollout:
    """Deploys a change across agents in gated phases.

    The *change* is a callable applied to each agent (e.g. swapping its
    version tag, flipping a feature flag); the *rollback* undoes it.
    Phases deploy to cumulative fleet fractions; after each phase the
    health gate runs over every agent deployed so far.
    """

    def __init__(
        self,
        agents: list[DynamoAgent],
        apply_change: Callable[[DynamoAgent], None],
        rollback_change: Callable[[DynamoAgent], None],
        health_gate: HealthGate,
        *,
        phases: tuple[float, ...] = DEFAULT_PHASES,
    ) -> None:
        if not agents:
            raise ConfigurationError("rollout needs at least one agent")
        if not phases or list(phases) != sorted(phases) or phases[-1] != 1.0:
            raise ConfigurationError(
                "phases must be ascending fractions ending at 1.0"
            )
        if any(not 0.0 < p <= 1.0 for p in phases):
            raise ConfigurationError("phase fractions must be in (0, 1]")
        self._agents = list(agents)
        self._apply = apply_change
        self._rollback = rollback_change
        self._gate = health_gate
        self._phases = phases
        self._deployed: list[DynamoAgent] = []
        self.state = RolloutState.PENDING
        self.results: list[PhaseResult] = []

    @property
    def deployed_count(self) -> int:
        """Agents currently running the new change."""
        return len(self._deployed)

    @property
    def deployed_fraction(self) -> float:
        """Fraction of the fleet currently on the new change."""
        return len(self._deployed) / len(self._agents)

    def run_phase(self) -> PhaseResult:
        """Deploy the next phase and evaluate its health gate.

        Returns the phase result; on gate failure the whole rollout is
        rolled back and the state becomes ROLLED_BACK.

        Raises:
            ConfigurationError: if the rollout already finished.
        """
        if self.state in (RolloutState.COMPLETE, RolloutState.ROLLED_BACK):
            raise ConfigurationError(f"rollout already {self.state.value}")
        self.state = RolloutState.IN_PROGRESS
        phase_index = len(self.results)
        target_fraction = self._phases[phase_index]
        target_count = max(1, round(target_fraction * len(self._agents)))
        while len(self._deployed) < target_count:
            agent = self._agents[len(self._deployed)]
            self._apply(agent)
            self._deployed.append(agent)
        healthy = bool(self._gate(list(self._deployed)))
        result = PhaseResult(
            phase_index=phase_index,
            fleet_fraction=target_fraction,
            agents_deployed=len(self._deployed),
            healthy=healthy,
        )
        self.results.append(result)
        if not healthy:
            self.abort()
        elif phase_index == len(self._phases) - 1:
            self.state = RolloutState.COMPLETE
        return result

    def run_all(self) -> RolloutState:
        """Run phases until completion or rollback."""
        while self.state not in (
            RolloutState.COMPLETE,
            RolloutState.ROLLED_BACK,
        ):
            self.run_phase()
        return self.state

    def abort(self) -> None:
        """Roll the change back everywhere it was deployed."""
        for agent in self._deployed:
            self._rollback(agent)
        self._deployed.clear()
        self.state = RolloutState.ROLLED_BACK
