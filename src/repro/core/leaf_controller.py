"""The leaf power controller (Section III-C).

One per leaf power device (an RPP or PDU breaker in the Facebook
deployment).  Every 3 s it:

1. **Pulls and aggregates** — broadcasts power-pull RPCs to all downstream
   agents.  Failed pulls are estimated from neighbouring servers running
   the same service (falling back to the last known reading, then to
   service metadata).  If more than 20% of pulls fail, the aggregation is
   invalid: the controller raises a human-intervention alert and takes no
   action this cycle (no false positives).
2. **Decides** — runs the three-band algorithm against the device's
   effective limit: the minimum of the physical breaker limit and any
   contractual limit imposed by its parent controller.
3. **Caps performance-aware** — distributes the total-power-cut across
   priority groups (lowest first) and within groups high-bucket-first,
   then sends per-server cap requests.  Uncap sends clear-limit requests
   to every server it capped.

Non-server loads on the same breaker (top-of-rack switches) are accounted
through the device's ``fixed_overhead_w`` — pulled directly when a reading
exists, estimated otherwise, exactly as the paper prescribes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from repro.config import BucketConfig, ControllerConfig
from repro.core.capping_plan import CappingPlan, build_capping_plan
from repro.core.messages import CapRequest, CapResponse, PowerReading
from repro.core.priority import PriorityPolicy
from repro.core.three_band import BandAction, ThreeBandController
from repro.core.thresholds import control_thresholds_w
from repro.errors import RpcError
from repro.power.device import PowerDevice
from repro.rpc.transport import RpcTransport
from repro.telemetry.alerts import AlertSink, Severity
from repro.telemetry.timeseries import TimeSeries


@dataclass(frozen=True)
class NonServerComponent:
    """A non-server load sharing the breaker (e.g. a ToR switch).

    The controller pulls power directly from the component when a
    ``source`` is available and falls back to ``estimate_w`` when not —
    exactly the paper's rule for non-server components.  Components are
    monitored, never capped.
    """

    name: str
    source: Callable[[], float] | None = None
    estimate_w: float = 0.0

    def power_w(self) -> float:
        """Current reading, or the static estimate."""
        if self.source is not None:
            return self.source()
        return self.estimate_w


class LeafPowerController:
    """Monitors and protects one leaf power device."""

    def __init__(
        self,
        device: PowerDevice,
        server_ids: list[str],
        transport: RpcTransport,
        *,
        config: ControllerConfig | None = None,
        bucket: BucketConfig | None = None,
        policy: PriorityPolicy | None = None,
        alerts: AlertSink | None = None,
        endpoint_prefix: str = "agent:",
        band=None,
    ) -> None:
        self.device = device
        self.server_ids = list(server_ids)
        self._transport = transport
        self.config = config or ControllerConfig()
        self._bucket = bucket or BucketConfig()
        self.policy = policy or PriorityPolicy()
        self.alerts = alerts or AlertSink()
        self._endpoint_prefix = endpoint_prefix
        # The decision policy is pluggable: the paper's three-band
        # algorithm by default, or e.g. the PI policy for studies.
        self.band = band or ThreeBandController(self.config.three_band)
        self._contractual_limit_w: float | None = None
        self._last_aggregate_w: float | None = None
        self._last_readings: dict[str, PowerReading] = {}
        self._capped_servers: dict[str, float] = {}
        self._components: list[NonServerComponent] = []
        # Telemetry for experiments.
        self.aggregate_series = TimeSeries(f"{device.name}.aggregate")
        self.capped_count_series = TimeSeries(f"{device.name}.capped")
        self.cap_events = 0
        self.uncap_events = 0
        self.invalid_cycles = 0

    # ------------------------------------------------------------------
    # Parent-controller interface
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Controller name (the protected device's name)."""
        return self.device.name

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Most recent valid power aggregation, or None before the first."""
        return self._last_aggregate_w

    @property
    def contractual_limit_w(self) -> float | None:
        """Limit imposed by the parent controller, if any."""
        return self._contractual_limit_w

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Parent imposes a (tighter) limit on this subtree."""
        self._contractual_limit_w = float(limit_w)

    def clear_contractual_limit(self) -> None:
        """Parent releases its contractual limit."""
        self._contractual_limit_w = None

    @property
    def effective_limit_w(self) -> float:
        """min(physical breaker limit, contractual limit)."""
        if self._contractual_limit_w is None:
            return self.device.rated_power_w
        return min(self.device.rated_power_w, self._contractual_limit_w)

    @property
    def capped_server_ids(self) -> list[str]:
        """Servers currently holding a cap from this controller."""
        return list(self._capped_servers)

    def add_component(self, component: NonServerComponent) -> None:
        """Register a monitored non-server load on this breaker."""
        self._components.append(component)

    @property
    def components(self) -> list[NonServerComponent]:
        """Monitored non-server components."""
        return list(self._components)

    # ------------------------------------------------------------------
    # Control cycle
    # ------------------------------------------------------------------

    def tick(self, now_s: float) -> BandAction:
        """One 3 s control cycle; returns the action taken."""
        readings = self._pull_and_estimate(now_s)
        if readings is None:
            self.invalid_cycles += 1
            return BandAction.HOLD
        aggregate = sum(r.power_w for r in readings) + self.device.fixed_overhead_w
        aggregate += sum(c.power_w() for c in self._components)
        self._last_aggregate_w = aggregate
        self.aggregate_series.append(now_s, aggregate)
        cap_at, target, uncap_at, limit = control_thresholds_w(
            self.band.config, self.device.rated_power_w, self._contractual_limit_w
        )
        decision = self.band.decide_absolute(
            aggregate, limit, cap_at, target, uncap_at
        )
        if decision.action is BandAction.CAP:
            plan = build_capping_plan(
                readings,
                decision.total_power_cut_w,
                self.policy,
                bucket=self._bucket,
            )
            self._apply_plan(plan, now_s)
            self.cap_events += 1
        elif decision.action is BandAction.UNCAP:
            self._uncap_all(now_s)
            self.uncap_events += 1
        self.capped_count_series.append(now_s, len(self._capped_servers))
        return decision.action

    # ------------------------------------------------------------------
    # Power pulling with failure estimation
    # ------------------------------------------------------------------

    def _pull_and_estimate(self, now_s: float) -> list[PowerReading] | None:
        endpoints = [self._endpoint_prefix + s for s in self.server_ids]
        results, failures = self._transport.broadcast(
            endpoints, "read_power", None
        )
        if self.server_ids and (
            len(failures) / len(self.server_ids)
            > self.config.max_reading_failure_fraction
        ):
            self.alerts.raise_alert(
                now_s,
                Severity.CRITICAL,
                self.name,
                f"power aggregation invalid: {len(failures)}/"
                f"{len(self.server_ids)} pulls failed; human intervention "
                "required",
            )
            return None
        readings: list[PowerReading] = []
        by_service_power: dict[str, list[float]] = defaultdict(list)
        for endpoint, reading in results.items():
            readings.append(reading)
            self._last_readings[reading.server_id] = reading
            by_service_power[reading.service].append(reading.power_w)
        for endpoint in failures:
            server_id = endpoint[len(self._endpoint_prefix):]
            readings.append(
                self._estimate_failed_reading(server_id, by_service_power, now_s)
            )
        return readings

    def _estimate_failed_reading(
        self,
        server_id: str,
        by_service_power: dict[str, list[float]],
        now_s: float,
    ) -> PowerReading:
        last = self._last_readings.get(server_id)
        service = last.service if last is not None else "unknown"
        neighbours = by_service_power.get(service, [])
        if neighbours:
            # Estimate from neighbouring servers running similar
            # workloads, the paper's primary fallback.
            power = sum(neighbours) / len(neighbours)
        elif last is not None:
            power = last.power_w
        else:
            # No metadata at all: a conservative generic server draw.
            power = 200.0
        return PowerReading(
            server_id=server_id,
            power_w=power,
            estimated=True,
            service=service,
            time_s=now_s,
        )

    # ------------------------------------------------------------------
    # Cap / uncap fan-out
    # ------------------------------------------------------------------

    def _apply_plan(self, plan: CappingPlan, now_s: float) -> None:
        if plan.unallocated_w > 1e-6:
            self.alerts.raise_alert(
                now_s,
                Severity.WARNING,
                self.name,
                f"{plan.unallocated_w:.0f} W of required cut could not be "
                "allocated: all servers at SLA floors",
            )
        for cut in plan.affected_servers:
            endpoint = self._endpoint_prefix + cut.server_id
            request = CapRequest(server_id=cut.server_id, limit_w=cut.cap_w)
            try:
                response: CapResponse = self._transport.call(
                    endpoint, "set_cap", request
                )
            except RpcError:
                # The server will be re-capped next cycle if still needed;
                # its power remains in the aggregate so safety converges.
                continue
            if response.success or response.message:
                self._capped_servers[cut.server_id] = cut.cap_w

    def _uncap_all(self, now_s: float) -> None:
        still_capped: dict[str, float] = {}
        for server_id in self._capped_servers:
            endpoint = self._endpoint_prefix + server_id
            request = CapRequest(server_id=server_id, limit_w=None)
            try:
                self._transport.call(endpoint, "set_cap", request)
            except RpcError:
                still_capped[server_id] = self._capped_servers[server_id]
        self._capped_servers = still_capped

    # ------------------------------------------------------------------
    # Validation against breaker readings
    # ------------------------------------------------------------------

    def validate_against_breaker(
        self, breaker_reading_w: float, *, tolerance_fraction: float = 0.10
    ) -> bool:
        """Compare the aggregate with a (coarse) breaker-side reading.

        The paper uses breaker readings only to validate the server-side
        aggregation (their sampling is minute-grained, far too slow for
        control).  Returns True when the two agree within tolerance;
        raises a WARNING alert otherwise.
        """
        if self._last_aggregate_w is None:
            return True
        if breaker_reading_w <= 0.0:
            return True
        drift = abs(self._last_aggregate_w - breaker_reading_w)
        if drift / breaker_reading_w <= tolerance_fraction:
            return True
        self.alerts.raise_alert(
            self.aggregate_series.latest()[0] if len(self.aggregate_series) else 0.0,
            Severity.WARNING,
            self.name,
            f"aggregate {self._last_aggregate_w:.0f} W drifts "
            f"{100 * drift / breaker_reading_w:.1f}% from breaker reading "
            f"{breaker_reading_w:.0f} W",
        )
        return False

    def __repr__(self) -> str:
        return (
            f"LeafPowerController({self.name!r}, servers={len(self.server_ids)}, "
            f"capped={len(self._capped_servers)})"
        )
