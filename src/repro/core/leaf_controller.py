"""The leaf power controller (Section III-C).

One per leaf power device (an RPP or PDU breaker in the Facebook
deployment).  Every 3 s it runs the shared control-cycle pipeline
(:class:`~repro.core.controller.BaseController`) with leaf-specific
stages:

1. **sense** — broadcasts power-pull RPCs to all downstream agents.
   Failed pulls are estimated from neighbouring servers running the same
   service (falling back to the last known reading, then to service
   metadata).  If more than 20% of pulls fail, the aggregation is
   invalid: the controller raises a human-intervention alert and takes
   no action this cycle (no false positives).  With the disaggregation
   estimator enabled (``ControllerConfig.estimation``), that hard abort
   softens: down to the ``safe_coverage`` floor the dark servers are
   reconstructed from the device-metering residual
   (:mod:`repro.estimation`), the cycle proceeds in the
   SENSOR_DEGRADED posture, and the aggregate is inflated by the
   estimates' uncertainty so capping can only err conservative.
2. **aggregate** — sums the readings plus fixed overhead and monitored
   non-server components.
3. **decide** (shared) — the three-band algorithm against the device's
   effective limit: the minimum of the physical breaker limit and any
   contractual limit imposed by its parent controller.
4. **actuate** — distributes the total-power-cut across priority groups
   (lowest first) and within groups high-bucket-first, then sends
   per-server cap requests.  Uncap sends clear-limit requests to every
   server it capped.

Non-server loads on the same breaker (top-of-rack switches) are accounted
through the device's ``fixed_overhead_w`` — pulled directly when a reading
exists, estimated otherwise, exactly as the paper prescribes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.config import BucketConfig, ControllerConfig
from repro.core.capping_plan import CappingPlan, build_capping_plan
from repro.core.controller import BaseController, DecisionPolicy
from repro.core.health import OperatingMode
from repro.core.messages import CapRequest, CapResponse, PowerReading
from repro.core.priority import PriorityPolicy
from repro.core.three_band import BandAction, BandDecision
from repro.core.thresholds import control_thresholds_w
from repro.errors import RpcError
from repro.estimation.disaggregator import (
    PowerDisaggregator,
    uncertainty_margin_w,
)
from repro.power.device import PowerDevice
from repro.rpc.transport import Transport
from repro.server.sensor import PowerSensor
from repro.telemetry.alerts import AlertSink, Severity
from repro.telemetry.timeseries import TimeSeries
from repro.telemetry.tracing import TraceBuffer, TraceBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent_batch import AgentBatch


class BatchedSense:
    """One cycle's sensed powers in packed form (vectorized control).

    Stands in for the scalar ``list[PowerReading]`` between sense and
    actuate: ``values``/``success_mask`` hold per-position sensed powers
    (position = index into the controller's ``server_ids``), while
    stale-cache hits and estimated readings stay materialized (they are
    few).  :meth:`readings` materializes the full scalar list — in the
    scalar reference order: successes by broadcast position, then stale,
    then estimated — which actuation's capping planner consumes.
    """

    __slots__ = (
        "controller",
        "now_s",
        "values",
        "success_mask",
        "scalar_readings",
        "stale_served",
        "estimated",
    )

    def __init__(
        self,
        controller: "LeafPowerController",
        now_s: float,
        values: np.ndarray,
        success_mask: np.ndarray,
        scalar_readings: dict[int, PowerReading],
        stale_served: list[PowerReading],
        estimated: list[PowerReading],
    ) -> None:
        self.controller = controller
        self.now_s = now_s
        self.values = values
        self.success_mask = success_mask
        self.scalar_readings = scalar_readings
        self.stale_served = stale_served
        self.estimated = estimated

    def total_power_w(self) -> float:
        """Sum of all sensed powers, bitwise-equal to the scalar sum.

        Left-to-right accumulation over the scalar reference order via
        cumsum (seeded implicitly at 0.0: ``0.0 + x == x`` for the
        non-negative powers involved).
        """
        parts = np.concatenate(
            (
                self.values[self.success_mask],
                [r.power_w for r in self.stale_served],
                [r.power_w for r in self.estimated],
            )
        )
        if parts.size == 0:
            return 0.0
        return float(np.cumsum(parts)[-1])

    def readings(self) -> list[PowerReading]:
        """Materialize the scalar reading list (the aggregation boundary)."""
        controller = self.controller
        out: list[PowerReading] = []
        for p in np.flatnonzero(self.success_mask):
            p = int(p)
            reading = self.scalar_readings.get(p)
            if reading is None:
                power = float(self.values[p])
                reading = PowerReading(
                    server_id=controller.server_ids[p],
                    power_w=power,
                    estimated=False,
                    service=controller._pos_service[p],
                    time_s=self.now_s,
                    breakdown=PowerSensor.breakdown_from_total(power),
                )
            out.append(reading)
        out.extend(self.stale_served)
        out.extend(self.estimated)
        return out


@dataclass(frozen=True)
class NonServerComponent:
    """A non-server load sharing the breaker (e.g. a ToR switch).

    The controller pulls power directly from the component when a
    ``source`` is available and falls back to ``estimate_w`` when not —
    exactly the paper's rule for non-server components.  Components are
    monitored, never capped.
    """

    name: str
    source: Callable[[], float] | None = None
    estimate_w: float = 0.0

    def power_w(self) -> float:
        """Current reading, or the static estimate."""
        if self.source is not None:
            return self.source()
        return self.estimate_w


class LeafPowerController(BaseController[list[PowerReading]]):
    """Monitors and protects one leaf power device."""

    KIND = "leaf"

    def __init__(
        self,
        device: PowerDevice,
        server_ids: list[str],
        transport: Transport,
        *,
        config: ControllerConfig | None = None,
        bucket: BucketConfig | None = None,
        policy: PriorityPolicy | None = None,
        alerts: AlertSink | None = None,
        endpoint_prefix: str = "agent:",
        band: DecisionPolicy | None = None,
        tracer: TraceBuffer | None = None,
    ) -> None:
        super().__init__(
            device, config=config, alerts=alerts, band=band, tracer=tracer
        )
        self.server_ids = list(server_ids)
        self._transport = transport
        self._bucket = bucket or BucketConfig()
        self.policy = policy or PriorityPolicy()
        self._endpoint_prefix = endpoint_prefix
        # Broadcast endpoints are rebuilt only when membership changes;
        # the per-pull sense buffers are reused across cycles (readings
        # never outlive a tick — see BaseController.control_cycle).
        self._endpoint_cache: list[str] = []
        self._endpoint_cache_key: tuple[str, ...] | None = None
        self._readings_buf: list[PowerReading] = []
        self._by_service_buf: defaultdict[str, list[float]] = defaultdict(list)
        self._last_readings: dict[str, PowerReading] = {}
        self._capped_servers: dict[str, float] = {}
        self._fail_safe_engaged = False
        # Disaggregation estimator (degraded-sensing subsystem).  Public
        # so the attribution CLI and serve views can inspect the fitted
        # models; None when estimation is disabled in config or the
        # fleet has no device metering (Dynamo detaches it then).
        self.estimator: PowerDisaggregator | None = (
            PowerDisaggregator(self.config.estimation)
            if self.config.estimation.enabled
            else None
        )
        # Device-metered total stashed at sense time on disaggregated
        # cycles, so aggregate() can report the signed estimation error
        # against the simulated ground truth.
        self._cycle_metered_w = 0.0
        # The most recent successful sense result (scalar list or
        # BatchedSense), for per-service attribution of the last cycle
        # including stale and disaggregated readings.
        self._last_sensed: "list[PowerReading] | BatchedSense | None" = None
        self._components: list[NonServerComponent] = []
        self._actuation_successes = 0
        self._actuation_failures = 0
        self.capped_count_series = TimeSeries(f"{device.name}.capped")
        # Vectorized control plane (attach_control_batch); when attached
        # the last-known-good reading cache lives in per-position arrays
        # instead of _last_readings, for both the batched fast path and
        # the whole-group fallback, so the two lanes share one cache.
        self._batch: "AgentBatch | None" = None
        self._pos_service: list[str] = []
        self._pos_of_server: dict[str, int] = {}
        self._svc_codes: np.ndarray | None = None
        self._svc_code_of: dict[str, int] = {}
        self._last_power: np.ndarray | None = None
        self._last_time: np.ndarray | None = None
        self._last_est: np.ndarray | None = None
        self._last_has: np.ndarray | None = None

    def attach_control_batch(self, batch: "AgentBatch") -> None:
        """Switch this controller's sense/actuate onto the batch path.

        Positions are indices into ``server_ids`` (= broadcast endpoint
        order).  Any existing last-known-good readings are migrated into
        the position-aligned cache arrays.
        """
        self._batch = batch
        n = len(self.server_ids)
        self._pos_of_server = {
            server_id: p for p, server_id in enumerate(self.server_ids)
        }
        self._pos_service = [
            batch.services[batch.row_for_server_id[server_id]]
            for server_id in self.server_ids
        ]
        code_of: dict[str, int] = {}
        codes = np.empty(n, dtype=np.int64)
        for p, service in enumerate(self._pos_service):
            codes[p] = code_of.setdefault(service, len(code_of))
        self._svc_codes = codes
        self._svc_code_of = code_of
        self._last_power = np.zeros(n)
        self._last_time = np.zeros(n)
        self._last_est = np.zeros(n, dtype=bool)
        self._last_has = np.zeros(n, dtype=bool)
        self._seed_last_cache()

    def _seed_last_cache(self) -> None:
        """Migrate the dict reading cache into the position arrays."""
        for server_id, reading in self._last_readings.items():
            p = self._pos_of_server.get(server_id)
            if p is None:
                continue
            self._last_power[p] = reading.power_w
            self._last_time[p] = reading.time_s
            self._last_est[p] = reading.estimated
            self._last_has[p] = True
        self._last_readings = {}

    def _cached_reading(self, p: int, *, stale: bool = False) -> PowerReading:
        """Materialize the cached reading at position ``p``.

        Breakdowns are deterministic functions of the sensed total, so a
        cached (power, estimated, time) triple reconstructs the original
        reading exactly: sensored readings get the standard split,
        estimated ones never carry a breakdown.
        """
        power = float(self._last_power[p])
        estimated = bool(self._last_est[p])
        return PowerReading(
            server_id=self.server_ids[p],
            power_w=power,
            estimated=estimated,
            service=self._pos_service[p],
            time_s=float(self._last_time[p]),
            breakdown=(
                None if estimated else PowerSensor.breakdown_from_total(power)
            ),
            stale=stale,
        )

    @property
    def capped_server_ids(self) -> list[str]:
        """Servers currently holding a cap from this controller."""
        return list(self._capped_servers)

    def _endpoints(self) -> list[str]:
        """Downstream agent endpoints, cached until membership changes."""
        key = tuple(self.server_ids)
        if key != self._endpoint_cache_key:
            self._endpoint_cache = [self._endpoint_prefix + s for s in key]
            self._endpoint_cache_key = key
        return self._endpoint_cache

    def disable_estimation(self) -> None:
        """Detach the disaggregation estimator.

        Called by Dynamo when the fleet reports no device metering
        (``FleetConfig.device_metering`` False): without a breaker-side
        reading there is no residual to disaggregate, so degraded
        sensing falls back to the paper's abort-and-alert rule.
        """
        self.estimator = None

    def add_component(self, component: NonServerComponent) -> None:
        """Register a monitored non-server load on this breaker."""
        self._components.append(component)

    @property
    def components(self) -> list[NonServerComponent]:
        """Monitored non-server components."""
        return list(self._components)

    # ------------------------------------------------------------------
    # Stage 1: power pulling with failure estimation
    # ------------------------------------------------------------------

    def sense(
        self, now_s: float, trace: TraceBuilder
    ) -> list[PowerReading] | None:
        """Pull every agent; cache/estimate failures; None when >20% failed.

        A failed pull is served from the last-known-good reading cache
        when that reading is at most ``reading_cache_ttl_s`` old (a real
        measurement, merely stale, beats neighbour estimation); expired
        or absent entries fall through to estimation.  Only pulls the
        cache could not resolve count against the paper's 20%
        invalid-aggregation rule.
        """
        if self._batch is not None:
            group = None
            group_read = getattr(self._transport, "group_read_power", None)
            if group_read is not None:
                group = group_read(self._endpoints())
            if group is None:
                # Whole-group fallback (e.g. global fault rates armed):
                # sequential broadcast, but bookkeeping still flows
                # through the shared position-array cache.
                results, failures = self._transport.broadcast(
                    self._endpoints(), "read_power", None
                )
                return self._sense_batched(
                    results, failures, None, now_s, trace
                )
            return self._sense_batched(
                group.results, group.failures, group, now_s, trace
            )
        results, failures = self._transport.broadcast(
            self._endpoints(), "read_power", None
        )
        trace.pulls_attempted = len(self.server_ids)
        trace.pulls_failed = len(failures)
        ttl = self.config.reading_cache_ttl_s
        stale_served: list[PowerReading] = []
        unresolved: list[str] = []
        for endpoint in failures:
            server_id = endpoint[len(self._endpoint_prefix):]
            last = self._last_readings.get(server_id)
            if ttl > 0.0 and last is not None and now_s - last.time_s <= ttl:
                stale_served.append(replace(last, stale=True))
            else:
                unresolved.append(server_id)
        trace.pulls_stale = len(stale_served)
        n = len(self.server_ids)
        if n:
            trace.coverage_fraction = 1.0 - len(unresolved) / n
        if n and len(unresolved) / n > self.config.max_reading_failure_fraction:
            if not self._can_disaggregate(trace.coverage_fraction):
                self._raise_aggregation_invalid(now_s, len(unresolved))
                return None
            return self._sense_disaggregated(
                results, stale_served, unresolved, now_s, trace
            )
        readings = self._readings_buf
        readings.clear()
        by_service_power = self._by_service_buf
        for values in by_service_power.values():
            values.clear()
        for endpoint, reading in results.items():
            readings.append(reading)
            self._last_readings[reading.server_id] = reading
            by_service_power[reading.service].append(reading.power_w)
        if self.estimator is not None:
            # Healthy (or merely below-threshold) cycle: fit the
            # per-service models from the live measurements so they are
            # ready the moment sensing collapses.  Reads values only —
            # no RNG, no reading mutation — so enabling estimation
            # leaves healthy cycles bit-identical.
            self.estimator.observe_cycle(
                (r.server_id, r.power_w, r.service) for r in readings
            )
        readings.extend(stale_served)
        for server_id in unresolved:
            readings.append(
                self._estimate_failed_reading(server_id, by_service_power, now_s)
            )
        trace.pulls_estimated = len(unresolved)
        self._last_sensed = readings
        return readings

    def last_cycle_readings(self) -> list[PowerReading]:
        """The latest cycle's full reading set, any provenance.

        Measured, stale-served, and estimated/disaggregated readings
        alike — the attribution CLI's input.  Falls back to the
        last-known-good cache before the first successful cycle.
        """
        sensed = self._last_sensed
        if sensed is None:
            return [reading for _, reading in self._iter_last_readings()]
        if isinstance(sensed, BatchedSense):
            return sensed.readings()
        return list(sensed)

    def _can_disaggregate(self, coverage_fraction: float) -> bool:
        """Whether the estimator can carry this over-threshold cycle."""
        return (
            self.estimator is not None
            and coverage_fraction >= self.config.estimation.safe_coverage
        )

    def _raise_aggregation_invalid(self, now_s: float, unresolved: int) -> None:
        """The paper's abort-and-alert rule (shared by both sense lanes)."""
        self.alerts.raise_alert(
            now_s,
            Severity.CRITICAL,
            self.name,
            f"power aggregation invalid: {unresolved}/"
            f"{len(self.server_ids)} pulls failed; human intervention "
            "required",
        )

    def _sense_disaggregated(
        self,
        results: dict[str, PowerReading],
        stale_served: list[PowerReading],
        unresolved: list[str],
        now_s: float,
        trace: TraceBuilder,
    ) -> list[PowerReading]:
        """Over-threshold cycle carried by the disaggregation estimator.

        Live measurements are consumed as usual (and still train the
        models); stale-cache hits get an age-decayed confidence; the
        dark remainder is reconstructed by distributing the
        device-metering residual across dark servers in proportion to
        the fitted models (:meth:`PowerDisaggregator.disaggregate`).
        The estimates sum to the residual by construction, so the
        un-inflated aggregate tracks the metered total.
        """
        estimator = self.estimator
        assert estimator is not None
        readings = self._readings_buf
        readings.clear()
        measured_sum = 0.0
        for reading in results.values():
            readings.append(reading)
            self._last_readings[reading.server_id] = reading
            measured_sum += reading.power_w
        estimator.observe_cycle(
            (r.server_id, r.power_w, r.service) for r in readings
        )
        ttl = self.config.reading_cache_ttl_s
        for reading in stale_served:
            reading = replace(
                reading,
                confidence=estimator.stale_confidence(
                    now_s - reading.time_s, ttl
                ),
            )
            readings.append(reading)
            measured_sum += reading.power_w
        dark: list[tuple[str, str]] = []
        for server_id in unresolved:
            last = self._last_readings.get(server_id)
            service = last.service if last is not None else "unknown"
            dark.append((server_id, service))
        residual_w, metered_w = self._metering_residual_w(measured_sum)
        for estimate in estimator.disaggregate(residual_w, dark):
            readings.append(
                PowerReading(
                    server_id=estimate.server_id,
                    power_w=estimate.power_w,
                    estimated=True,
                    service=estimate.service,
                    time_s=now_s,
                    confidence=estimate.confidence,
                )
            )
        trace.pulls_estimated = len(unresolved)
        trace.disaggregated = len(unresolved)
        self._cycle_metered_w = metered_w
        self._last_sensed = readings
        return readings

    def _metering_residual_w(self, measured_sum: float) -> tuple[float, float]:
        """(residual to distribute over dark servers, metered device total).

        The residual is the device/breaker metering minus fixed overhead,
        monitored components, and every measured or stale-served server —
        i.e. exactly the dark servers' combined draw in the simulated
        world.  Clamped at zero: metering drift must never produce
        negative server estimates.
        """
        metered_w = self.device.power_w()
        residual_w = (
            metered_w
            - self.device.fixed_overhead_w
            - sum(c.power_w() for c in self._components)
            - measured_sum
        )
        return max(residual_w, 0.0), metered_w

    def _estimate_failed_reading(
        self,
        server_id: str,
        by_service_power: dict[str, list[float]],
        now_s: float,
    ) -> PowerReading:
        last = self._last_readings.get(server_id)
        service = last.service if last is not None else "unknown"
        neighbours = by_service_power.get(service, [])
        if neighbours:
            # Estimate from neighbouring servers running similar
            # workloads, the paper's primary fallback.
            power = sum(neighbours) / len(neighbours)
        elif last is not None:
            power = last.power_w
        else:
            # No metadata at all: a conservative generic server draw.
            power = 200.0
        return PowerReading(
            server_id=server_id,
            power_w=power,
            estimated=True,
            service=service,
            time_s=now_s,
        )

    def _sense_batched(
        self,
        results: dict[str, Any],
        failures: dict[str, Exception],
        group: Any,
        now_s: float,
        trace: TraceBuilder,
    ) -> "BatchedSense | None":
        """Batch-path sense: same decisions, position arrays as the cache.

        ``group`` is the transport's GroupReadResult (fast-lane powers in
        packed form), or None when the whole group fell back to the
        sequential broadcast — scalar-lane readings then arrive via
        ``results``/``failures`` only.  Every branch mirrors the scalar
        :meth:`sense` decision-for-decision.
        """
        n = len(self.server_ids)
        trace.pulls_attempted = n
        trace.pulls_failed = len(failures)
        ttl = self.config.reading_cache_ttl_s
        prefix_len = len(self._endpoint_prefix)
        stale_served: list[PowerReading] = []
        unresolved: list[int] = []
        for endpoint in failures:
            p = self._pos_of_server[endpoint[prefix_len:]]
            if (
                ttl > 0.0
                and self._last_has[p]
                and now_s - self._last_time[p] <= ttl
            ):
                stale_served.append(self._cached_reading(p, stale=True))
            else:
                unresolved.append(p)
        trace.pulls_stale = len(stale_served)
        if n:
            trace.coverage_fraction = 1.0 - len(unresolved) / n
        over_threshold = bool(n) and (
            len(unresolved) / n > self.config.max_reading_failure_fraction
        )
        if over_threshold and not self._can_disaggregate(
            trace.coverage_fraction
        ):
            self._raise_aggregation_invalid(now_s, len(unresolved))
            return None
        if group is not None:
            values = group.powers
            success = group.fast_mask.copy()
        else:
            values = np.zeros(n)
            success = np.zeros(n, dtype=bool)
        scalar_readings: dict[int, PowerReading] = {}
        for reading in results.values():
            p = self._pos_of_server[reading.server_id]
            values[p] = reading.power_w
            success[p] = True
            scalar_readings[p] = reading
            self._last_power[p] = reading.power_w
            self._last_time[p] = reading.time_s
            self._last_est[p] = reading.estimated
            self._last_has[p] = True
        if group is not None:
            fast = group.fast_mask
            self._last_power[fast] = group.powers[fast]
            self._last_time[fast] = now_s
            self._last_est[fast] = False
            self._last_has[fast] = True
        if self.estimator is not None:
            # Same model fit as the scalar lane: measured successes in
            # broadcast position order (== the scalar results order).
            self.estimator.observe_cycle(
                (
                    self.server_ids[p],
                    float(values[p]),
                    self._pos_service[p],
                )
                for p in map(int, np.flatnonzero(success))
            )
        if over_threshold:
            stale_served, estimated = self._disaggregate_batched(
                values, success, stale_served, unresolved, now_s, trace
            )
        else:
            estimated = [
                self._estimate_failed_position(p, values, success, now_s)
                for p in unresolved
            ]
            trace.pulls_estimated = len(unresolved)
        sensed = BatchedSense(
            self, now_s, values, success, scalar_readings, stale_served,
            estimated,
        )
        self._last_sensed = sensed
        return sensed

    def _disaggregate_batched(
        self,
        values: np.ndarray,
        success: np.ndarray,
        stale_served: list[PowerReading],
        unresolved: list[int],
        now_s: float,
        trace: TraceBuilder,
    ) -> tuple[list[PowerReading], list[PowerReading]]:
        """Array-cache twin of :meth:`_sense_disaggregated`.

        The measured sum is a left-to-right cumsum over successes in
        broadcast position order followed by the stale-served readings
        — bitwise-equal to the scalar lane's running sum — so both
        control backends hand the estimator the identical residual.
        """
        estimator = self.estimator
        assert estimator is not None
        parts = np.concatenate(
            (
                values[success],
                [r.power_w for r in stale_served],
            )
        )
        measured_sum = float(np.cumsum(parts)[-1]) if parts.size else 0.0
        ttl = self.config.reading_cache_ttl_s
        stale_out = [
            replace(
                reading,
                confidence=estimator.stale_confidence(
                    now_s - reading.time_s, ttl
                ),
            )
            for reading in stale_served
        ]
        dark: list[tuple[str, str]] = []
        for p in unresolved:
            service = self._pos_service[p] if self._last_has[p] else "unknown"
            dark.append((self.server_ids[p], service))
        residual_w, metered_w = self._metering_residual_w(measured_sum)
        estimated = [
            PowerReading(
                server_id=estimate.server_id,
                power_w=estimate.power_w,
                estimated=True,
                service=estimate.service,
                time_s=now_s,
                confidence=estimate.confidence,
            )
            for estimate in estimator.disaggregate(residual_w, dark)
        ]
        trace.pulls_estimated = len(unresolved)
        trace.disaggregated = len(unresolved)
        self._cycle_metered_w = metered_w
        return stale_out, estimated

    def _estimate_failed_position(
        self,
        p: int,
        values: np.ndarray,
        success: np.ndarray,
        now_s: float,
    ) -> PowerReading:
        """Array-cache twin of :meth:`_estimate_failed_reading`.

        The neighbour mean is a left-to-right cumsum over successes in
        broadcast position order divided by the count — bitwise-equal to
        the scalar ``sum(list) / len(list)``.
        """
        has_last = bool(self._last_has[p])
        service = self._pos_service[p] if has_last else "unknown"
        code = self._svc_code_of.get(service)
        neighbours = 0
        if code is not None:
            selector = success & (self._svc_codes == code)
            neighbours = int(np.count_nonzero(selector))
        if neighbours:
            power = float(np.cumsum(values[selector])[-1]) / neighbours
        elif has_last:
            power = float(self._last_power[p])
        else:
            power = 200.0
        return PowerReading(
            server_id=self.server_ids[p],
            power_w=power,
            estimated=True,
            service=service,
            time_s=now_s,
        )

    # ------------------------------------------------------------------
    # Stage 2: aggregation
    # ------------------------------------------------------------------

    def aggregate(
        self, sensed: list[PowerReading], now_s: float, trace: TraceBuilder
    ) -> float:
        """Sum server readings, fixed overhead, and component draws.

        On disaggregated cycles the sum is additionally inflated by the
        uncertain readings' margin (power weighted by lost confidence,
        scaled by ``estimation.uncertainty_inflation``): the controller
        caps against an over-estimate, never an under-estimate, while
        sensors are dark.  The signed gap between the inflated aggregate
        and the metered ground truth lands in the trace so campaigns can
        report the margin.
        """
        if isinstance(sensed, BatchedSense):
            aggregate = sensed.total_power_w() + self.device.fixed_overhead_w
        else:
            aggregate = (
                sum(r.power_w for r in sensed) + self.device.fixed_overhead_w
            )
        components_w = sum(c.power_w() for c in self._components)
        aggregate += components_w
        if trace.disaggregated:
            uncertain = (
                sensed.stale_served + sensed.estimated
                if isinstance(sensed, BatchedSense)
                else sensed
            )
            aggregate += uncertainty_margin_w(
                uncertain, self.config.estimation.uncertainty_inflation
            )
            trace.estimation_error_w = aggregate - (
                self._cycle_metered_w + components_w
            )
        return aggregate

    # ------------------------------------------------------------------
    # Stage 4: cap / uncap fan-out
    # ------------------------------------------------------------------

    def actuate(
        self,
        decision: BandDecision,
        sensed: list[PowerReading],
        now_s: float,
        trace: TraceBuilder,
    ) -> None:
        """Fan the decision out to the agents as cap/clear requests."""
        self._actuation_successes = 0
        self._actuation_failures = 0
        if decision.action is BandAction.CAP:
            readings = (
                sensed.readings()
                if isinstance(sensed, BatchedSense)
                else sensed
            )
            plan = build_capping_plan(
                readings,
                decision.total_power_cut_w,
                self.policy,
                bucket=self._bucket,
            )
            trace.cut_allocated_w = plan.allocated_w
            self._apply_plan(plan, now_s)
        elif decision.action is BandAction.UNCAP:
            self._uncap_all(now_s)
        if (
            self._fail_safe_engaged
            and self.modes.mode is not OperatingMode.SAFE
            and decision.action is not BandAction.CAP
        ):
            # A fail-safe release left unacknowledged uncaps behind (or
            # never ran to completion): keep retiring them until none
            # remain, so SAFE mode can never strand a cap.
            if self.band.capping_active:
                # The policy re-capped on top: it owns the limits now.
                self._fail_safe_engaged = False
            else:
                self._uncap_all(now_s)
                if not self._capped_servers:
                    self._fail_safe_engaged = False
        trace.actuation_successes = self._actuation_successes
        trace.actuation_failures = self._actuation_failures
        trace.capped_after = len(self._capped_servers)
        self.capped_count_series.append(now_s, len(self._capped_servers))

    def _group_set_cap(
        self, items: list[tuple[str, str, float | None]]
    ) -> Any:
        """Batched set_cap through the transport, or None on fallback."""
        if self._batch is None or not items:
            return None
        group_set_cap = getattr(self._transport, "group_set_cap", None)
        if group_set_cap is None:
            return None
        return group_set_cap(items)

    def _apply_plan(self, plan: CappingPlan, now_s: float) -> None:
        if plan.unallocated_w > 1e-6:
            self.alerts.raise_alert(
                now_s,
                Severity.WARNING,
                self.name,
                f"{plan.unallocated_w:.0f} W of required cut could not be "
                "allocated: all servers at SLA floors",
            )
        group = self._group_set_cap(
            [
                (self._endpoint_prefix + cut.server_id, cut.server_id, cut.cap_w)
                for cut in plan.affected_servers
            ]
        )
        if group is not None:
            for cut, status in zip(plan.affected_servers, group.status):
                if status == "ok":
                    self._capped_servers[cut.server_id] = cut.cap_w
                    self._actuation_successes += 1
                elif status == "error":
                    self._actuation_failures += 1
            return
        for cut in plan.affected_servers:
            endpoint = self._endpoint_prefix + cut.server_id
            request = CapRequest(server_id=cut.server_id, limit_w=cut.cap_w)
            try:
                response: CapResponse = self._transport.call(
                    endpoint, "set_cap", request
                )
            except RpcError:
                # The server will be re-capped next cycle if still needed;
                # its power remains in the aggregate so safety converges.
                self._actuation_failures += 1
                continue
            if response.success or response.message:
                self._capped_servers[cut.server_id] = cut.cap_w
                self._actuation_successes += 1

    def _uncap_all(self, now_s: float) -> None:
        group = self._group_set_cap(
            [
                (self._endpoint_prefix + server_id, server_id, None)
                for server_id in self._capped_servers
            ]
        )
        if group is not None:
            still: dict[str, float] = {}
            for (server_id, cap_w), status in zip(
                self._capped_servers.items(), group.status
            ):
                if status == "ok":
                    self._actuation_successes += 1
                else:
                    self._actuation_failures += 1
                    still[server_id] = cap_w
            self._capped_servers = still
            return
        still_capped: dict[str, float] = {}
        for server_id in self._capped_servers:
            endpoint = self._endpoint_prefix + server_id
            request = CapRequest(server_id=server_id, limit_w=None)
            try:
                self._transport.call(endpoint, "set_cap", request)
                self._actuation_successes += 1
            except RpcError:
                self._actuation_failures += 1
                still_capped[server_id] = self._capped_servers[server_id]
        self._capped_servers = still_capped

    # ------------------------------------------------------------------
    # SAFE-posture fail-safe capping
    # ------------------------------------------------------------------

    def apply_fail_safe(self, now_s: float, trace: TraceBuilder) -> None:
        """Cap every server to an equal share of the capping target.

        With sensing gone for long enough to reach SAFE, the aggregate
        cannot be trusted, so the controller stops reasoning about
        offenders and bounds the whole breaker: the capping target minus
        overheads, split evenly.  Re-fanned out every SAFE tick, so
        servers missed by a lossy fabric converge.
        """
        if not self.server_ids:
            return
        _, target, _, _ = control_thresholds_w(
            self.band.config,
            self.device.rated_power_w,
            self._contractual_limit_w,
        )
        budget = target - self.device.fixed_overhead_w
        budget -= sum(c.power_w() for c in self._components)
        per_server_w = max(budget, 0.0) / len(self.server_ids)
        group = self._group_set_cap(
            [
                (endpoint, server_id, per_server_w)
                for server_id, endpoint in zip(
                    self.server_ids, self._endpoints()
                )
            ]
        )
        if group is not None:
            for server_id, status in zip(self.server_ids, group.status):
                if status == "ok":
                    self._capped_servers[server_id] = per_server_w
                    trace.actuation_successes += 1
                elif status == "error":
                    trace.actuation_failures += 1
        else:
            for server_id, endpoint in zip(self.server_ids, self._endpoints()):
                request = CapRequest(
                    server_id=server_id, limit_w=per_server_w
                )
                try:
                    response: CapResponse = self._transport.call(
                        endpoint, "set_cap", request
                    )
                except RpcError:
                    trace.actuation_failures += 1
                    continue
                if response.success or response.message:
                    self._capped_servers[server_id] = per_server_w
                    trace.actuation_successes += 1
        self._fail_safe_engaged = True
        trace.detail = "fail-safe"
        trace.capped_after = len(self._capped_servers)
        self.capped_count_series.append(now_s, len(self._capped_servers))

    def release_fail_safe(self, now_s: float) -> None:
        """Withdraw fail-safe caps unless the policy has caps in force."""
        if not self._fail_safe_engaged:
            return
        if self.band.capping_active:
            # The decision policy believes caps are needed: leave every
            # limit in place and let its own uncap path retire them.
            self._fail_safe_engaged = False
            return
        self._uncap_all(now_s)
        if not self._capped_servers:
            self._fail_safe_engaged = False
        self.capped_count_series.append(now_s, len(self._capped_servers))

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def _iter_last_readings(self):
        """Cached readings as (server_id, PowerReading) pairs.

        In batch mode the cache lives in position arrays; materialized
        in server-id order (snapshot serialization sorts keys, so the
        on-disk form is order-independent either way).
        """
        if self._batch is None:
            yield from self._last_readings.items()
            return
        for p in np.flatnonzero(self._last_has):
            p = int(p)
            yield self.server_ids[p], self._cached_reading(p)

    def snapshot_state(self) -> dict:
        """Template state plus the reading cache and cap bookkeeping."""
        state = super().snapshot_state()
        state["last_readings"] = {
            server_id: {
                "server_id": r.server_id,
                "power_w": r.power_w,
                "estimated": r.estimated,
                "service": r.service,
                "time_s": r.time_s,
                "stale": r.stale,
                "breakdown": (
                    None
                    if r.breakdown is None
                    else {
                        "total_w": r.breakdown.total_w,
                        "cpu_w": r.breakdown.cpu_w,
                        "memory_w": r.breakdown.memory_w,
                        "other_w": r.breakdown.other_w,
                        "ac_dc_loss_w": r.breakdown.ac_dc_loss_w,
                    }
                ),
            }
            for server_id, r in self._iter_last_readings()
        }
        state["capped_servers"] = dict(self._capped_servers)
        state["fail_safe_engaged"] = self._fail_safe_engaged
        state["actuation_successes"] = self._actuation_successes
        state["actuation_failures"] = self._actuation_failures
        state["capped_count_series"] = self.capped_count_series.snapshot_state()
        state["estimator"] = (
            None if self.estimator is None else self.estimator.snapshot_state()
        )
        return state

    def restore_state(self, state: dict) -> None:
        """Restore template state plus leaf-local caches in place."""
        from repro.server.sensor import PowerBreakdown

        super().restore_state(state)
        self._last_readings = {}
        for server_id, r in state["last_readings"].items():
            breakdown = None
            if r["breakdown"] is not None:
                breakdown = PowerBreakdown(
                    total_w=float(r["breakdown"]["total_w"]),
                    cpu_w=float(r["breakdown"]["cpu_w"]),
                    memory_w=float(r["breakdown"]["memory_w"]),
                    other_w=float(r["breakdown"]["other_w"]),
                    ac_dc_loss_w=float(r["breakdown"]["ac_dc_loss_w"]),
                )
            self._last_readings[server_id] = PowerReading(
                server_id=r["server_id"],
                power_w=float(r["power_w"]),
                estimated=bool(r["estimated"]),
                service=r["service"],
                time_s=float(r["time_s"]),
                breakdown=breakdown,
                stale=bool(r["stale"]),
            )
        self._capped_servers = {
            server_id: float(cap)
            for server_id, cap in state["capped_servers"].items()
        }
        self._fail_safe_engaged = bool(state["fail_safe_engaged"])
        self._actuation_successes = int(state["actuation_successes"])
        self._actuation_failures = int(state["actuation_failures"])
        self.capped_count_series.restore_state(state["capped_count_series"])
        # Estimator model state (absent in pre-estimation snapshots; a
        # mid-blackout snapshot must restore the fitted models or the
        # resumed run would re-learn from scratch while dark).
        estimator_state = state.get("estimator")
        if self.estimator is not None and estimator_state is not None:
            self.estimator.restore_state(estimator_state)
        if self._batch is not None:
            self._last_has[:] = False
            self._last_est[:] = False
            self._last_power[:] = 0.0
            self._last_time[:] = 0.0
            self._seed_last_cache()

    # ------------------------------------------------------------------
    # Validation against breaker readings
    # ------------------------------------------------------------------

    def validate_against_breaker(
        self,
        breaker_reading_w: float,
        now_s: float,
        *,
        tolerance_fraction: float = 0.10,
    ) -> bool:
        """Compare the aggregate with a (coarse) breaker-side reading.

        The paper uses breaker readings only to validate the server-side
        aggregation (their sampling is minute-grained, far too slow for
        control).  Returns True when the two agree within tolerance;
        raises a WARNING alert stamped ``now_s`` otherwise.
        """
        if self._last_aggregate_w is None:
            return True
        if breaker_reading_w <= 0.0:
            return True
        drift = abs(self._last_aggregate_w - breaker_reading_w)
        if drift / breaker_reading_w <= tolerance_fraction:
            return True
        self.alerts.raise_alert(
            now_s,
            Severity.WARNING,
            self.name,
            f"aggregate {self._last_aggregate_w:.0f} W drifts "
            f"{100 * drift / breaker_reading_w:.1f}% from breaker reading "
            f"{breaker_reading_w:.0f} W",
        )
        return False

    def __repr__(self) -> str:
        return (
            f"LeafPowerController({self.name!r}, servers={len(self.server_ids)}, "
            f"capped={len(self._capped_servers)})"
        )
