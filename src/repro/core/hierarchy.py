"""Build the controller hierarchy mirroring the power topology.

For every power device that needs protection there is a matching
controller instance (Section III-A).  The Facebook deployment configures
RPPs (or PDU breakers) as the leaf controllers and skips rack-level
monitoring (footnote 2), so rack-attached servers roll up to their RPP's
controller; the hierarchy builder honours that via ``leaf_level``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DynamoConfig
from repro.core.controller import PowerController
from repro.core.leaf_controller import LeafPowerController
from repro.core.priority import PriorityPolicy
from repro.core.upper_controller import UpperLevelPowerController
from repro.errors import ConfigurationError
from repro.power.device import DeviceLevel, PowerDevice
from repro.power.topology import PowerTopology
from repro.rpc.transport import Transport
from repro.telemetry.alerts import AlertSink
from repro.telemetry.tracing import TraceBuffer


@dataclass
class ControllerHierarchy:
    """All controller instances for one datacenter, indexed by device.

    Values are :class:`~repro.core.controller.PowerController`\\ s: plain
    leaf/upper controllers at build time, possibly
    :class:`~repro.core.failover.FailoverController` pairs after
    :meth:`~repro.core.dynamo.Dynamo.enable_failover` swaps one in.
    """

    leaf_controllers: dict[str, PowerController] = field(default_factory=dict)
    upper_controllers: dict[str, PowerController] = field(default_factory=dict)

    def controller(self, device_name: str) -> PowerController:
        """Controller (leaf or upper) protecting ``device_name``."""
        if device_name in self.leaf_controllers:
            return self.leaf_controllers[device_name]
        if device_name in self.upper_controllers:
            return self.upper_controllers[device_name]
        raise ConfigurationError(f"no controller for device {device_name!r}")

    @property
    def all_controllers(self) -> list[PowerController]:
        """Every controller, leaves first."""
        return list(self.leaf_controllers.values()) + list(
            self.upper_controllers.values()
        )

    @property
    def controller_count(self) -> int:
        """Total controller instances."""
        return len(self.leaf_controllers) + len(self.upper_controllers)


def build_controller_hierarchy(
    topology: PowerTopology,
    transport: Transport,
    *,
    config: DynamoConfig | None = None,
    policy: PriorityPolicy | None = None,
    alerts: AlertSink | None = None,
    tracer: TraceBuffer | None = None,
) -> ControllerHierarchy:
    """Instantiate one controller per device, wired parent-to-children.

    Devices at ``config.leaf_level`` get :class:`LeafPowerController`
    instances (their subtree's servers become the controller's purview);
    devices above it get :class:`UpperLevelPowerController` instances.
    Devices *below* the leaf level get no controller — the paper's
    skipped racks.
    """
    config = config or DynamoConfig()
    policy = policy or PriorityPolicy()
    alerts = alerts or AlertSink()
    try:
        leaf_level = DeviceLevel(config.leaf_level)
    except ValueError:
        raise ConfigurationError(
            f"unknown leaf level {config.leaf_level!r}"
        ) from None

    hierarchy = ControllerHierarchy()

    def build(device: PowerDevice) -> PowerController | None:
        if device.level.depth > leaf_level.depth:
            return None
        if device.level is leaf_level or not device.children:
            server_ids = sorted(device.iter_load_ids())
            leaf = LeafPowerController(
                device,
                server_ids,
                transport,
                config=config.controller,
                bucket=config.bucket,
                policy=policy,
                alerts=alerts,
                tracer=tracer,
            )
            hierarchy.leaf_controllers[device.name] = leaf
            return leaf
        children = [build(child) for child in device.children]
        upper = UpperLevelPowerController(
            device,
            [c for c in children if c is not None],
            config=config.controller,
            alerts=alerts,
            tracer=tracer,
        )
        hierarchy.upper_controllers[device.name] = upper
        return upper

    for root in topology.roots:
        build(root)
    return hierarchy
