"""The Dynamo agent (Section III-B, Figure 8).

A light-weight request-handler daemon on every server.  It answers two
request types from its leaf controller:

* **power read** — return current power (and breakdown).  Servers with an
  on-board sensor read it; sensor-less servers estimate power on-the-fly
  from CPU utilization through their calibrated model.
* **power cap/uncap** — set or unset the RAPL limit and acknowledge.

Agents hold no policy: all intelligence lives in the controllers.  Agents
never talk to each other, only to controllers.  The platform-specific part
(MSR write vs IPMI node-manager call) is hidden behind the RAPL module,
keeping the agent logic hardware-agnostic (Section VI).
"""

from __future__ import annotations

from repro.core.messages import CapRequest, CapResponse, PowerReading
from repro.errors import AgentError, CappingError
from repro.rpc.service import RpcService
from repro.rpc.transport import Transport
from repro.server.server import Server
from repro.simulation.soa import ArraySlot, array_backed


def agent_endpoint(server_id: str) -> str:
    """Transport endpoint name for a server's agent."""
    return f"agent:{server_id}"


class DynamoAgent:
    """Per-server power read / cap / uncap daemon.

    Mutable agent state is array-backable: when an
    :class:`~repro.core.agent_batch.AgentBatch` binds the agent, the
    health flag and request counters live in packed arrays and the
    object becomes a view — the watchdog, chaos faults, and snapshots
    keep reading/writing the same fields either way.
    """

    _soa: ArraySlot | None = None
    _healthy = array_backed("agent_healthy", kind="bool")
    reads_served = array_backed("agent_reads_served", kind="int")
    caps_applied = array_backed("agent_caps_applied", kind="int")
    uncaps_applied = array_backed("agent_uncaps_applied", kind="int")

    SOA_FIELDS = (
        "_healthy",
        "reads_served",
        "caps_applied",
        "uncaps_applied",
    )

    def __init__(
        self,
        server: Server,
        transport: Transport,
        *,
        clock=None,
    ) -> None:
        self.server = server
        self._clock = clock
        self._service = RpcService(transport, agent_endpoint(server.server_id))
        self._service.method("read_power", self._handle_read_power)
        self._service.method("set_cap", self._handle_set_cap)
        self._soa = None
        self._healthy = True
        self.reads_served = 0
        self.caps_applied = 0
        self.uncaps_applied = 0

    # ------------------------------------------------------------------
    # Health (watchdog interface)
    # ------------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """Whether the agent process is up."""
        return self._healthy

    def crash(self) -> None:
        """Simulate the agent process dying (fault-injection hook)."""
        self._healthy = False

    def restart(self) -> None:
        """Watchdog restart: the agent resumes serving requests."""
        self._healthy = True

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------

    def _now(self) -> float:
        if self._clock is None:
            return 0.0
        return self._clock.now

    def _handle_read_power(self, _payload) -> PowerReading:
        if not self._healthy:
            raise AgentError(
                f"agent on {self.server.server_id!r} is not running"
            )
        self.reads_served += 1
        true_power = self.server.power_w()
        if self.server.sensor is not None:
            breakdown = self.server.sensor.read_breakdown(true_power)
            return PowerReading(
                server_id=self.server.server_id,
                power_w=breakdown.total_w,
                estimated=False,
                service=self.server.service,
                time_s=self._now(),
                breakdown=breakdown,
            )
        estimate = self.server.estimator.estimate_w(self.server.utilization)
        return PowerReading(
            server_id=self.server.server_id,
            power_w=estimate,
            estimated=True,
            service=self.server.service,
            time_s=self._now(),
        )

    def _handle_set_cap(self, request: CapRequest) -> CapResponse:
        if not self._healthy:
            raise AgentError(
                f"agent on {self.server.server_id!r} is not running"
            )
        try:
            if request.limit_w is None:
                self.server.rapl.clear_limit()
                self.uncaps_applied += 1
            else:
                self.server.rapl.set_limit(request.limit_w)
                self.caps_applied += 1
        except CappingError as exc:
            # The platform cannot enforce the requested limit; clamp to
            # the platform minimum rather than leaving the server
            # uncapped — partial enforcement beats none during an
            # emergency — and report what happened.
            minimum = self.server.platform.effective_min_cap_w()
            self.server.rapl.set_limit(minimum)
            self.caps_applied += 1
            return CapResponse(
                server_id=self.server.server_id,
                success=False,
                message=f"clamped to platform minimum: {exc}",
            )
        return CapResponse(server_id=self.server.server_id, success=True)

    def shutdown(self) -> None:
        """Deregister from the transport (decommission)."""
        self._service.shutdown()

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable agent health and request counters."""
        return {
            "healthy": self._healthy,
            "reads_served": self.reads_served,
            "caps_applied": self.caps_applied,
            "uncaps_applied": self.uncaps_applied,
        }

    def restore_state(self, state: dict) -> None:
        """Restore agent health and request counters in place."""
        self._healthy = bool(state["healthy"])
        self.reads_served = int(state["reads_served"])
        self.caps_applied = int(state["caps_applied"])
        self.uncaps_applied = int(state["uncaps_applied"])
