"""Dry-run mode and end-to-end capping test support (Section VI).

Two lessons from the paper's production experience:

* **Service-aware system design simplifies capping testing.**  Facebook
  pre-selects non-critical services for end-to-end tests of the
  service-agnostic logic, and uses a *dry-run mode with detailed
  logging* for service-specific logic — inspecting control decisions
  step by step without actually throttling critical services.
* Periodic end-to-end testing matters because capping is an emergency
  path: it must be exercised before the emergency.

:class:`DryRunRecorder` captures every capping decision a controller
*would* have made; :class:`CappingTestHarness` runs a scripted
end-to-end capping exercise against a designated test service and
verifies the full pipeline (pull -> decide -> plan -> cap -> settle ->
uncap) works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.capping_plan import CappingPlan
from repro.core.leaf_controller import LeafPowerController
from repro.errors import ControllerError
from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class DryRunEntry:
    """One logged would-be control action."""

    time_s: float
    controller: str
    action: str
    total_cut_w: float
    affected_servers: int
    detail: str = ""


@dataclass
class DryRunRecorder:
    """Collects would-be actions for step-by-step inspection."""

    entries: list[DryRunEntry] = field(default_factory=list)

    def record(self, entry: DryRunEntry) -> None:
        """Append one entry."""
        self.entries.append(entry)

    def actions(self) -> list[str]:
        """The sequence of recorded action names."""
        return [e.action for e in self.entries]

    def would_have_capped(self) -> bool:
        """Whether any capping action was recorded."""
        return any(e.action == "cap" for e in self.entries)

    def total_would_be_cut_w(self) -> float:
        """Sum of all would-be power cuts."""
        return sum(e.total_cut_w for e in self.entries if e.action == "cap")


class DryRunLeafController(LeafPowerController):
    """A leaf controller that logs capping decisions instead of acting.

    The shared sense → aggregate → decide pipeline stages
    (:class:`~repro.core.controller.BaseController`) all run for real —
    only the actuate-stage fan-out hooks (``_apply_plan`` /
    ``_uncap_all``) are overridden to record instead of send, so ticks
    still emit TickTraces and the three-band decision is exercised
    end to end.  This is the paper's dry-run mode for validating
    service-specific control logic in production.
    """

    def __init__(self, *args, recorder: DryRunRecorder | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.recorder = recorder or DryRunRecorder()

    def _apply_plan(self, plan: CappingPlan, now_s: float) -> None:
        self.recorder.record(
            DryRunEntry(
                time_s=now_s,
                controller=self.name,
                action="cap",
                total_cut_w=plan.allocated_w,
                affected_servers=len(plan.affected_servers),
                detail=(
                    f"target cut {plan.total_cut_w:.0f} W, "
                    f"unallocated {plan.unallocated_w:.0f} W"
                ),
            )
        )

    def _uncap_all(self, now_s: float) -> None:
        self.recorder.record(
            DryRunEntry(
                time_s=now_s,
                controller=self.name,
                action="uncap",
                total_cut_w=0.0,
                affected_servers=len(self._capped_servers),
            )
        )
        self._capped_servers = {}


@dataclass
class HarnessReport:
    """Outcome of one end-to-end capping exercise."""

    capped: bool
    settled_below_target: bool
    uncapped: bool
    cap_latency_s: float | None
    residual_caps: int

    @property
    def passed(self) -> bool:
        """Whether the full pipeline behaved."""
        return (
            self.capped
            and self.settled_below_target
            and self.uncapped
            and self.residual_caps == 0
        )


class CappingTestHarness:
    """Scripted end-to-end capping exercise against a test service.

    Imposes a temporary contractual limit on a leaf controller (below
    current draw), verifies capping engages and power settles under the
    target, lifts the limit, and verifies uncapping.  Run it against a
    row of pre-selected non-critical servers, as the paper prescribes.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        controller: LeafPowerController,
        *,
        squeeze_fraction: float = 0.90,
        settle_window_s: float = 60.0,
        recovery_window_s: float = 120.0,
    ) -> None:
        if not 0.0 < squeeze_fraction < 1.0:
            raise ControllerError("squeeze fraction must be in (0, 1)")
        self._engine = engine
        self._controller = controller
        self._squeeze = squeeze_fraction
        self._settle_s = settle_window_s
        self._recover_s = recovery_window_s

    def run(self) -> HarnessReport:
        """Execute the exercise; the engine must be driving controllers."""
        controller = self._controller
        baseline = controller.last_aggregate_power_w
        if baseline is None:
            raise ControllerError(
                "controller has no aggregation yet; run the engine first"
            )
        limit = baseline * self._squeeze
        start_caps = controller.cap_events
        start_uncaps = controller.uncap_events
        t0 = self._engine.clock.now
        controller.set_contractual_limit_w(limit)
        self._engine.run_until(t0 + self._settle_s)

        capped = controller.cap_events > start_caps
        cap_latency = None
        if capped:
            for t, count in zip(
                controller.capped_count_series.times,
                controller.capped_count_series.values,
            ):
                if t >= t0 and count > 0:
                    cap_latency = t - t0
                    break
        aggregate = controller.last_aggregate_power_w or baseline
        settled = aggregate <= limit

        controller.clear_contractual_limit()
        self._engine.run_until(
            self._engine.clock.now + self._recover_s
        )
        uncapped = controller.uncap_events > start_uncaps
        return HarnessReport(
            capped=capped,
            settled_below_target=settled,
            uncapped=uncapped,
            cap_latency_s=cap_latency,
            residual_caps=len(controller.capped_server_ids),
        )
