"""Capping plans: from a total power cut to per-server cap values.

Combines the priority-group policy (Section III-C3) with the
high-bucket-first allocator: the total-power-cut is offered to the lowest
priority group first; whatever that group cannot absorb (because its
servers hit their SLA floors) rolls up to the next group.  Each server's
cap is then its current power less its allocated cut — the paper's
"currently consuming 250 W, power-cut 30 W, cap at 220 W" arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BucketConfig
from repro.core.bucket import AllocationInput, allocate_high_bucket_first
from repro.core.messages import PowerReading
from repro.core.priority import PriorityPolicy


@dataclass(frozen=True)
class ServerCut:
    """One server's share of a capping plan."""

    server_id: str
    service: str
    priority_group: int
    current_power_w: float
    cut_w: float

    @property
    def cap_w(self) -> float:
        """The power cap to send: current power less the cut."""
        return self.current_power_w - self.cut_w


@dataclass
class CappingPlan:
    """A complete capping decision for one device."""

    total_cut_w: float
    cuts: list[ServerCut] = field(default_factory=list)
    unallocated_w: float = 0.0

    @property
    def affected_servers(self) -> list[ServerCut]:
        """Cuts that actually bind (cut > 0)."""
        return [c for c in self.cuts if c.cut_w > 1e-9]

    @property
    def allocated_w(self) -> float:
        """Total power successfully allocated to cuts."""
        return sum(c.cut_w for c in self.cuts)

    def cap_for(self, server_id: str) -> float | None:
        """The cap for one server, or None if it is unaffected."""
        for cut in self.affected_servers:
            if cut.server_id == server_id:
                return cut.cap_w
        return None


def build_capping_plan(
    readings: list[PowerReading],
    total_cut_w: float,
    policy: PriorityPolicy,
    *,
    bucket: BucketConfig | None = None,
) -> CappingPlan:
    """Allocate ``total_cut_w`` across servers, priority groups first.

    Args:
        readings: the latest power reading per server (one each).
        total_cut_w: the power reduction the three-band decision demands.
        policy: service priority groups and SLA floors.
        bucket: high-bucket-first configuration.

    Returns:
        A plan whose ``unallocated_w`` is nonzero only when every server
        in every group is already at its SLA floor.
    """
    bucket = bucket or BucketConfig()
    plan = CappingPlan(total_cut_w=total_cut_w)
    if total_cut_w <= 0.0:
        plan.cuts = [
            ServerCut(
                server_id=r.server_id,
                service=r.service,
                priority_group=policy.priority_group(r.service),
                current_power_w=r.power_w,
                cut_w=0.0,
            )
            for r in readings
        ]
        return plan

    by_group: dict[int, list[PowerReading]] = {}
    for reading in readings:
        group = policy.priority_group(reading.service)
        by_group.setdefault(group, []).append(reading)

    remaining = total_cut_w
    for group in sorted(by_group):
        group_readings = by_group[group]
        inputs = [
            AllocationInput(
                server_id=r.server_id,
                power_w=r.power_w,
                min_cap_w=policy.sla_min_cap_w(r.service),
            )
            for r in group_readings
        ]
        if remaining > 0.0:
            result = allocate_high_bucket_first(
                inputs, remaining, bucket_width_w=bucket.bucket_width_w
            )
            remaining = result.unallocated_w
        else:
            result = allocate_high_bucket_first(
                inputs, 0.0, bucket_width_w=bucket.bucket_width_w
            )
        for reading in group_readings:
            plan.cuts.append(
                ServerCut(
                    server_id=reading.server_id,
                    service=reading.service,
                    priority_group=group,
                    current_power_w=reading.power_w,
                    cut_w=result.cuts_w[reading.server_id],
                )
            )
        if remaining <= 1e-9:
            remaining = 0.0
            # Servers in higher groups remain uncut; record them so the
            # plan covers the whole device.
            for higher_group in sorted(by_group):
                if higher_group <= group:
                    continue
                for reading in by_group[higher_group]:
                    plan.cuts.append(
                        ServerCut(
                            server_id=reading.server_id,
                            service=reading.service,
                            priority_group=higher_group,
                            current_power_w=reading.power_w,
                            cut_w=0.0,
                        )
                    )
            break
    plan.unallocated_w = remaining
    return plan
