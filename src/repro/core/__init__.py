"""Dynamo: the data center-wide power management system (the paper's core).

Components mirror Section III:

* :class:`~repro.core.agent.DynamoAgent` — per-server daemon answering
  power-read and cap/uncap requests (Figure 8).
* :class:`~repro.core.leaf_controller.LeafPowerController` — per-leaf-device
  controller: 3 s power pulls, aggregation with failure estimation, the
  three-band algorithm (Figure 10), and performance-aware capping via
  priority groups and high-bucket-first allocation.
* :class:`~repro.core.upper_controller.UpperLevelPowerController` —
  per-upper-device controller: 9 s pulls from child controllers and
  punish-offender-first coordination through contractual power limits.
* :class:`~repro.core.dynamo.Dynamo` — the facade that attaches the whole
  controller hierarchy to a datacenter and runs it.

Both controller flavours share one control cycle: the
sense → aggregate → decide → actuate template owned by
:class:`~repro.core.controller.BaseController`, with per-tick
:class:`~repro.telemetry.tracing.TickTrace` records emitted into the
deployment-wide trace buffer.
"""

from repro.core.agent import DynamoAgent
from repro.core.bucket import allocate_high_bucket_first
from repro.core.capping_plan import CappingPlan, ServerCut
from repro.core.controller import (
    BaseController,
    DecisionPolicy,
    PowerController,
)
from repro.core.dryrun import (
    CappingTestHarness,
    DryRunLeafController,
    DryRunRecorder,
)
from repro.core.dynamo import Dynamo
from repro.core.failover import FailoverController
from repro.core.hierarchy import build_controller_hierarchy
from repro.core.leaf_controller import (
    LeafPowerController,
    NonServerComponent,
)
from repro.core.messages import CapRequest, PowerReading
from repro.core.offender import punish_offender_first
from repro.core.pi_controller import PiPowerController
from repro.core.priority import PriorityPolicy
from repro.core.rollout import RolloutState, StagedRollout
from repro.core.three_band import BandAction, ThreeBandController
from repro.core.upper_controller import UpperLevelPowerController
from repro.core.validation import BreakerReadingSource, BreakerValidator
from repro.core.watchdog import AgentWatchdog

__all__ = [
    "AgentWatchdog",
    "BandAction",
    "BaseController",
    "BreakerReadingSource",
    "BreakerValidator",
    "CapRequest",
    "CappingPlan",
    "CappingTestHarness",
    "DryRunLeafController",
    "DecisionPolicy",
    "DryRunRecorder",
    "Dynamo",
    "DynamoAgent",
    "FailoverController",
    "LeafPowerController",
    "NonServerComponent",
    "PiPowerController",
    "PowerController",
    "PowerReading",
    "PriorityPolicy",
    "RolloutState",
    "ServerCut",
    "StagedRollout",
    "ThreeBandController",
    "UpperLevelPowerController",
    "allocate_high_bucket_first",
    "build_controller_hierarchy",
    "punish_offender_first",
]
