"""Fully distributed controller communication (Section III-A).

"In theory, the controllers can be fully distributed with each
controller instance being an independent binary and communication
between instances occurring via Thrift.  However, since most
controllers are relatively lightweight, it is also possible to
consolidate them..."

The default deployment here is the consolidated one (direct references,
the shared-memory analogue).  This module provides the distributed
alternative:

* :class:`ControllerEndpoint` exposes any controller over the RPC
  fabric (``ctrl:<name>``) with ``get_aggregate`` /
  ``set_contractual`` / ``clear_contractual`` methods;
* :class:`RemoteChildController` is the parent-side proxy implementing
  the child-controller protocol over RPC, tolerating failures the way
  an upper controller expects (an unreachable child simply has no
  aggregation this cycle).
"""

from __future__ import annotations

from repro.errors import RpcError
from repro.power.device import PowerDevice
from repro.rpc.service import RpcService
from repro.rpc.transport import RpcTransport


def controller_endpoint(controller_name: str) -> str:
    """Transport endpoint name for a controller."""
    return f"ctrl:{controller_name}"


class ControllerEndpoint:
    """Serves a controller's parent-facing interface over RPC."""

    def __init__(self, controller, transport: RpcTransport) -> None:
        self.controller = controller
        self._service = RpcService(
            transport, controller_endpoint(controller.name)
        )
        self._service.method("get_aggregate", self._get_aggregate)
        self._service.method("get_quota", self._get_quota)
        self._service.method("set_contractual", self._set_contractual)
        self._service.method("clear_contractual", self._clear_contractual)

    def _get_aggregate(self, _payload) -> float | None:
        return self.controller.last_aggregate_power_w

    def _get_quota(self, _payload) -> float:
        return self.controller.device.power_quota_w

    def _set_contractual(self, limit_w: float) -> bool:
        self.controller.set_contractual_limit_w(limit_w)
        return True

    def _clear_contractual(self, _payload) -> bool:
        self.controller.clear_contractual_limit()
        return True

    def shutdown(self) -> None:
        """Deregister from the transport."""
        self._service.shutdown()


class RemoteChildController:
    """Parent-side RPC proxy satisfying the ChildController protocol.

    RPC failures degrade gracefully: a failed ``get_aggregate`` shows
    the child as having no aggregation (the parent's missing-children
    logic then applies), and failed contractual pushes are retried by
    the parent's next cycle by construction (it re-sends limits while
    capping is active).
    """

    def __init__(
        self,
        name: str,
        device: PowerDevice,
        transport: RpcTransport,
    ) -> None:
        self._name = name
        self._device = device
        self._transport = transport
        self.rpc_failures = 0

    @property
    def name(self) -> str:
        """Controller name."""
        return self._name

    @property
    def device(self) -> PowerDevice:
        """The protected device (for quota lookup)."""
        return self._device

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Pull the child's aggregation over RPC; None on failure."""
        try:
            return self._transport.call(
                controller_endpoint(self._name), "get_aggregate"
            )
        except RpcError:
            self.rpc_failures += 1
            return None

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Push a contractual limit; failures counted, not raised."""
        try:
            self._transport.call(
                controller_endpoint(self._name), "set_contractual", limit_w
            )
        except RpcError:
            self.rpc_failures += 1

    def clear_contractual_limit(self) -> None:
        """Release the contractual limit; failures counted, not raised."""
        try:
            self._transport.call(
                controller_endpoint(self._name), "clear_contractual"
            )
        except RpcError:
            self.rpc_failures += 1


def distribute_hierarchy(hierarchy, transport: RpcTransport) -> list[ControllerEndpoint]:
    """Expose every controller in a hierarchy over RPC and rewire parents.

    After this call, each upper controller reaches its children through
    :class:`RemoteChildController` proxies instead of direct references
    — the fully distributed deployment.  Returns the endpoints (hold on
    to them; shutting one down simulates a controller binary dying).
    """
    endpoints = [
        ControllerEndpoint(controller, transport)
        for controller in hierarchy.all_controllers
    ]
    for upper in hierarchy.upper_controllers.values():
        upper.children = [
            RemoteChildController(child.name, child.device, transport)
            for child in upper.children
        ]
    return endpoints
