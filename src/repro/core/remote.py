"""Fully distributed controller communication (Section III-A).

"In theory, the controllers can be fully distributed with each
controller instance being an independent binary and communication
between instances occurring via Thrift.  However, since most
controllers are relatively lightweight, it is also possible to
consolidate them..."

The default deployment here is the consolidated one (direct references,
the shared-memory analogue).  This module provides the distributed
alternative:

* :class:`ControllerEndpoint` exposes any controller over the RPC
  fabric (``ctrl:<name>``) with ``get_aggregate`` /
  ``set_contractual`` / ``clear_contractual`` methods;
* :class:`RemoteChildController` is the parent-side proxy implementing
  the child-controller protocol over RPC, tolerating failures the way
  an upper controller expects (an unreachable child simply has no
  aggregation this cycle).
"""

from __future__ import annotations

from repro.errors import RpcError
from repro.power.device import PowerDevice
from repro.rpc.service import RpcService
from repro.rpc.transport import Transport


def controller_endpoint(controller_name: str) -> str:
    """Transport endpoint name for a controller."""
    return f"ctrl:{controller_name}"


class ControllerEndpoint:
    """Serves a controller's parent-facing interface over RPC."""

    def __init__(self, controller, transport: Transport) -> None:
        self.controller = controller
        self._service = RpcService(
            transport, controller_endpoint(controller.name)
        )
        self._service.method("get_aggregate", self._get_aggregate)
        self._service.method("get_quota", self._get_quota)
        self._service.method("set_contractual", self._set_contractual)
        self._service.method("clear_contractual", self._clear_contractual)

    def _get_aggregate(self, _payload) -> float | None:
        return self.controller.last_aggregate_power_w

    def _get_quota(self, _payload) -> float:
        return self.controller.device.power_quota_w

    def _set_contractual(self, limit_w: float) -> bool:
        self.controller.set_contractual_limit_w(limit_w)
        return True

    def _clear_contractual(self, _payload) -> bool:
        self.controller.clear_contractual_limit()
        return True

    def shutdown(self) -> None:
        """Deregister from the transport."""
        self._service.shutdown()


class RemoteChildController:
    """Parent-side RPC proxy satisfying the ChildController protocol.

    RPC failures degrade gracefully: a failed ``get_aggregate`` shows
    the child as having no aggregation (the parent's missing-children
    logic then applies).  Contractual pushes follow a desired-state
    model: the parent's latest intent (a limit, or None for clear) is
    remembered, and a push that fails stays pending and is re-sent on
    the parent's next sense of this child until acknowledged — a failed
    ``clear_contractual`` can no longer strand the child capped forever.
    """

    def __init__(
        self,
        name: str,
        device: PowerDevice,
        transport: Transport,
    ) -> None:
        self._name = name
        self._device = device
        self._transport = transport
        self.rpc_failures = 0
        self._desired_limit_w: float | None = None
        self._pending_push = False

    @property
    def name(self) -> str:
        """Controller name."""
        return self._name

    @property
    def device(self) -> PowerDevice:
        """The protected device (for quota lookup)."""
        return self._device

    @property
    def pending_push(self) -> bool:
        """Whether a contractual set/clear is still unacknowledged."""
        return self._pending_push

    def _push_desired(self) -> bool:
        """Send the desired contractual state once; True when acked."""
        endpoint = controller_endpoint(self._name)
        try:
            if self._desired_limit_w is None:
                self._transport.call(endpoint, "clear_contractual")
            else:
                self._transport.call(
                    endpoint, "set_contractual", self._desired_limit_w
                )
        except RpcError:
            self.rpc_failures += 1
            self._pending_push = True
            return False
        self._pending_push = False
        return True

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Pull the child's aggregation over RPC; None on failure.

        Polled every parent cycle, so it doubles as the retry point for
        an unacknowledged contractual push.
        """
        if self._pending_push:
            self._push_desired()
        try:
            return self._transport.call(
                controller_endpoint(self._name), "get_aggregate"
            )
        except RpcError:
            self.rpc_failures += 1
            return None

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Push a contractual limit; failures counted, not raised."""
        self._desired_limit_w = float(limit_w)
        self._push_desired()

    def clear_contractual_limit(self) -> None:
        """Release the contractual limit; failures counted, not raised."""
        self._desired_limit_w = None
        self._push_desired()

    def snapshot_state(self) -> dict:
        """Serializable proxy state (desired-state push machinery)."""
        return {
            "rpc_failures": self.rpc_failures,
            "desired_limit_w": self._desired_limit_w,
            "pending_push": self._pending_push,
        }

    def restore_state(self, state: dict) -> None:
        """Restore proxy state in place."""
        self.rpc_failures = int(state["rpc_failures"])
        desired = state["desired_limit_w"]
        self._desired_limit_w = None if desired is None else float(desired)
        self._pending_push = bool(state["pending_push"])


def distribute_hierarchy(hierarchy, transport: Transport) -> list[ControllerEndpoint]:
    """Expose every controller in a hierarchy over RPC and rewire parents.

    After this call, each upper controller reaches its children through
    :class:`RemoteChildController` proxies instead of direct references
    — the fully distributed deployment.  Returns the endpoints (hold on
    to them; shutting one down simulates a controller binary dying).
    """
    endpoints = [
        ControllerEndpoint(controller, transport)
        for controller in hierarchy.all_controllers
    ]
    for upper in hierarchy.upper_controllers.values():
        upper.children = [
            RemoteChildController(child.name, child.device, transport)
            for child in upper.children
        ]
    return endpoints
