"""Batched agent control plane: SoA sensing and RAPL actuation.

PR 5 vectorized the *physics* (``repro.server.vectorized``); this module
does the same for the *control plane*.  Per-agent mutable state — the
health flag and the read/cap/uncap counters — is packed into numpy
arrays, and the hot agent operations (``read_power``, ``set_cap``) gain
whole-group entry points the RPC transports dispatch in one call instead
of one Python round-trip per server.

The scalar :class:`~repro.core.agent.DynamoAgent` objects stay alive as
views onto the arrays (the same ``array_backed`` binding the servers
use), so the watchdog, chaos faults, and snapshot capture keep reading
and writing the exact same fields on either backend.

Bit-identical by contract, like the physics:

* A batched read draws sensor noise with ``gen.normal(0.0, frac,
  size=k)``, which produces the same sequence as ``k`` scalar
  ``gen.normal(0.0, frac)`` calls on that sensor's dedicated stream.
  Blocks are prefetched per sensor and guarded with the same
  rewind-before-foreign-use proxy the physics stepper uses, so snapshot
  capture of ``sensor._rng`` always sees the logical draw position.
* A batched cap writes the RAPL limit through the scalar module's own
  setter per affected row, so limit listeners (the fleet's capped-server
  index) fire exactly as they would under per-server RPCs, and
  below-minimum requests clamp to the platform minimum just as the
  scalar agent does.
* ``fast_successes`` counts per-endpoint successes served on the batched
  fast path.  The moment an endpoint first drops to the scalar lane, the
  resilient transport materializes that pending history into its circuit
  breaker and health record (see :meth:`AgentBatch.materialize_pending`),
  which is exactly equivalent to having recorded each success
  individually while the breaker sat CLOSED.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.agent import DynamoAgent, agent_endpoint
from repro.errors import ConfigurationError
from repro.simulation.soa import ArraySlot, bind_fields

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> rpc)
    from repro.rpc.resilient import ResilientTransport


class AgentArrays:
    """Packed per-agent mutable state (one row per server).

    Attribute names are the contract with the ``array_backed``
    declarations on :class:`~repro.core.agent.DynamoAgent`.
    """

    def __init__(self, n: int) -> None:
        self.agent_healthy = np.ones(n, dtype=bool)
        self.agent_reads_served = np.zeros(n, dtype=np.int64)
        self.agent_caps_applied = np.zeros(n, dtype=np.int64)
        self.agent_uncaps_applied = np.zeros(n, dtype=np.int64)


class _SensorStreamGuard:
    """Sensor-generator proxy flushing the prefetch block before any use.

    Identical in spirit to the physics stepper's guard: any attribute
    access (``normal``, ``bit_generator``, ...) first rewinds this
    sensor's speculative block so the raw generator sits at its logical
    draw position, then delegates.
    """

    __slots__ = ("_gen", "_flush")

    def __init__(self, gen: np.random.Generator, flush) -> None:
        self._gen = gen
        self._flush = flush

    def __getattr__(self, name: str) -> Any:
        self._flush()
        return getattr(self._gen, name)


class AgentBatch:
    """Whole-fleet agent state plus batched read/cap entry points.

    Rows are aligned with the physics stepper's rows, so a batched read
    is a fancy-indexed load straight out of the packed power array.
    """

    def __init__(
        self,
        agents: dict[str, DynamoAgent],
        stepper: Any,
        *,
        prefetch_draws: int = 64,
    ) -> None:
        n = stepper._n
        if len(agents) != n:
            raise ConfigurationError(
                f"agent batch needs one agent per stepper row "
                f"({len(agents)} agents, {n} rows)"
            )
        self._stepper = stepper
        self._power = stepper._arrays.power
        self._n = n
        self._block = int(prefetch_draws)
        self._arrays = AgentArrays(n)

        self._agents: list[DynamoAgent | None] = [None] * n
        self._rapls: list[Any] = [None] * n
        self._servers: list[Any] = [None] * n
        self.server_ids: list[str] = [""] * n
        self.services: list[str] = [""] * n
        self.row_for_endpoint: dict[str, int] = {}
        self.row_for_server_id: dict[str, int] = {}

        #: Rows whose reads can be served from the arrays right now:
        #: sensored servers still carrying the sensor captured at build
        #: time.  Chaos sensor faults swap ``server.sensor`` live; a
        #: change listener moves the row to the scalar lane (and back on
        #: recovery), so the sensor-less estimation path and frozen /
        #: replaced sensors always go through the real agent handler.
        self.sense_batchable = np.zeros(n, dtype=bool)
        self._built_sensors: list[Any] = [None] * n
        self._frac = np.zeros(n)
        self._min_cap = np.zeros(n)
        self._clamp = np.zeros(n)

        # Per-sensor prefetch buffers (one block of pre-drawn noise).
        self._buf = np.zeros((n, self._block))
        self._lo = np.zeros(n, dtype=np.intp)
        self._hi = np.zeros(n, dtype=np.intp)
        self._raw_gens: list[np.random.Generator | None] = [None] * n
        self._saved_states: list[Any] = [None] * n

        #: Successes served on the batched fast path since the endpoint
        #: last had its history materialized into breaker/health state.
        self.fast_successes = np.zeros(n, dtype=np.int64)

        for agent in agents.values():
            server = agent.server
            row = stepper._server_index.get(id(server))
            if row is None:
                raise ConfigurationError(
                    f"server {server.server_id!r} is not bound to the "
                    "vectorized stepper"
                )
            self._agents[row] = agent
            self._rapls[row] = server.rapl
            self._servers[row] = server
            self.server_ids[row] = server.server_id
            self.services[row] = server.service
            self.row_for_endpoint[agent_endpoint(server.server_id)] = row
            self.row_for_server_id[server.server_id] = row
            self._min_cap[row] = server.rapl._min_cap_w
            self._clamp[row] = server.platform.effective_min_cap_w()
            bind_fields(
                agent, ArraySlot(self._arrays, row), DynamoAgent.SOA_FIELDS
            )
            server._sensor_listener = self._on_sensor_change
            sensor = server.sensor
            if sensor is None:
                continue
            self._built_sensors[row] = sensor
            self.sense_batchable[row] = True
            self._frac[row] = sensor._noise_fraction
            if sensor._noise_fraction > 0.0:
                raw = sensor._rng
                self._raw_gens[row] = raw
                sensor._rng = _SensorStreamGuard(
                    raw, lambda row=row: self._flush_stream(row)
                )

    def _on_sensor_change(self, server: Any, sensor: Any) -> None:
        """Track live sensor swaps (chaos faults) per row."""
        row = self.row_for_server_id.get(server.server_id)
        if row is None:
            return
        self.sense_batchable[row] = (
            sensor is not None and sensor is self._built_sensors[row]
        )

    @property
    def healthy(self) -> np.ndarray:
        """Per-row agent health flags (the packed array itself)."""
        return self._arrays.agent_healthy

    # ------------------------------------------------------------------
    # Prefetched sensor-noise draws
    # ------------------------------------------------------------------

    def _flush_stream(self, row: int) -> None:
        """Rewind sensor ``row``'s speculative block to its logical position."""
        if self._hi[row] == 0:
            return
        gen = self._raw_gens[row]
        assert gen is not None
        gen.bit_generator.state = self._saved_states[row]
        consumed = int(self._lo[row])
        if consumed:
            gen.normal(0.0, self._frac[row], size=consumed)
        self._lo[row] = 0
        self._hi[row] = 0
        self._saved_states[row] = None

    def _refill(self, row: int) -> None:
        gen = self._raw_gens[row]
        assert gen is not None
        self._saved_states[row] = gen.bit_generator.state
        self._buf[row, :] = gen.normal(0.0, self._frac[row], size=self._block)
        self._lo[row] = 0
        self._hi[row] = self._block

    def _draw(self, rows: np.ndarray) -> np.ndarray:
        """One buffered noise sample per row, preserving stream order."""
        need = rows[self._lo[rows] >= self._hi[rows]]
        for row in need:
            self._refill(int(row))
        z = self._buf[rows, self._lo[rows]]
        self._lo[rows] += 1
        return z

    def sync(self) -> None:
        """Flush every sensor prefetch buffer.

        After this, every sensor generator's raw state equals its
        logical draw position — required before RNG state is snapshotted
        externally (the stream guards also trigger this lazily on any
        foreign access).
        """
        for row in np.nonzero(self._hi > 0)[0]:
            self._flush_stream(int(row))

    # ------------------------------------------------------------------
    # Batched agent operations
    # ------------------------------------------------------------------

    def read_power(self, rows: np.ndarray) -> np.ndarray:
        """Serve ``read_power`` for a group of healthy, sensored rows.

        Returns the noisy sensed totals in row order, matching the
        scalar ``sensor.read_breakdown(server.power_w()).total_w`` bit
        for bit: same noise draw per sensor stream, same
        ``max(0.0, true * (1.0 + z))`` arithmetic.
        """
        self._arrays.agent_reads_served[rows] += 1
        out = self._power[rows].copy()
        noisy = self._frac[rows] > 0.0
        if noisy.any():
            sel = rows[noisy]
            z = self._draw(sel)
            out[noisy] = np.maximum(0.0, out[noisy] * (1.0 + z))
        return out

    def set_cap(self, rows: np.ndarray, limits: np.ndarray | None) -> None:
        """Serve ``set_cap`` for a group of healthy rows.

        ``limits`` is an array of requested caps aligned with ``rows``,
        or ``None`` for a group uncap.  Requests below a row's platform
        minimum clamp to ``platform.effective_min_cap_w()`` exactly as
        the scalar agent's :class:`~repro.errors.CappingError` handler
        does.  Limits are written through the scalar RAPL setter per row
        so limit listeners (the fleet capped-server index) fire
        identically to per-server RPCs.
        """
        arrays = self._arrays
        if limits is None:
            for row in rows.tolist():
                self._rapls[row].clear_limit()
            arrays.agent_uncaps_applied[rows] += 1
            return
        limits = np.asarray(limits, dtype=float)
        effective = np.where(
            limits < self._min_cap[rows], self._clamp[rows], limits
        )
        for row, limit_w in zip(rows.tolist(), effective.tolist()):
            # set_limit re-validates against the row minimum, so a clamp
            # floor below the enforceable minimum raises exactly where
            # the scalar agent's fallback set_limit would.
            self._rapls[row].set_limit(limit_w)
        arrays.agent_caps_applied[rows] += 1

    # ------------------------------------------------------------------
    # Scalar-lane handoff
    # ------------------------------------------------------------------

    def materialize_pending(
        self, endpoint: str, transport: "ResilientTransport"
    ) -> None:
        """Flush an endpoint's fast-path history into breaker/health state.

        Called the moment an endpoint leaves the batched fast path (a
        chaos fault armed, the agent crashed, or a direct resilient call
        lands on it).  ``k`` pending fast successes become ``k``
        CLOSED-state breaker successes — ``consecutive_failures = 0``
        and ``min(k, window)`` ``True`` entries in the attempt window —
        plus ``k`` health attempts/successes, which is exactly what ``k``
        sequential scalar successes would have recorded.  (Health
        latency samples and last-success timestamps are diagnostics-only
        and are not backfilled.)
        """
        row = self.row_for_endpoint.get(endpoint)
        if row is None:
            return
        pending = int(self.fast_successes[row])
        if pending == 0:
            return
        self.fast_successes[row] = 0
        breaker = transport.breaker(endpoint)
        breaker.consecutive_failures = 0
        window = breaker._window
        window.extend([True] * min(pending, window.maxlen or pending))
        transport.health.backfill_successes(endpoint, pending)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable batch-only state (agent fields ride with agents)."""
        return {"fast_successes": self.fast_successes.tolist()}

    def restore_state(self, state: dict) -> None:
        """Restore pending fast-path success counts in place."""
        self.fast_successes[:] = np.asarray(
            state["fast_successes"], dtype=np.int64
        )

    def __repr__(self) -> str:
        return (
            f"AgentBatch(rows={self._n}, "
            f"sensored={int(np.count_nonzero(self.sense_batchable))})"
        )


__all__ = ["AgentArrays", "AgentBatch"]
