"""Primary/backup controller redundancy (Section III-E, fault tolerance).

"In case a controller crashes, we use a redundant backup controller that
resides in a different location and can take control as soon as the
primary controller fails."

:class:`FailoverController` wraps two controller instances behind the
uniform :class:`~repro.core.controller.PowerController` surface — the
same protocol parents, the coordinator, and chaos swapping all program
against.  Ticks go to the primary while it is healthy; on primary
failure the backup takes over on the very next tick.  The backup
re-derives capping state from its own observations — its first cycles
may re-issue caps the primary already sent, which is idempotent at the
agents.
"""

from __future__ import annotations

from repro.config import ControllerConfig, ThreeBandConfig
from repro.core.controller import PowerController
from repro.core.three_band import BandAction
from repro.power.device import PowerDevice
from repro.telemetry.timeseries import TimeSeries

#: Backwards-compatible alias: failover wraps the one uniform
#: controller protocol.
TickableController = PowerController


class FailoverController:
    """Primary/backup pair presenting a single controller."""

    def __init__(
        self,
        primary: PowerController,
        backup: PowerController,
    ) -> None:
        self.primary = primary
        self.backup = backup
        self._primary_healthy = True
        self.failovers = 0

    # ------------------------------------------------------------------
    # Fault injection / recovery
    # ------------------------------------------------------------------

    @property
    def primary_healthy(self) -> bool:
        """Whether the primary instance is serving."""
        return self._primary_healthy

    def fail_primary(self) -> None:
        """Crash the primary; the backup takes over immediately."""
        if self._primary_healthy:
            self._primary_healthy = False
            self.failovers += 1

    def restore_primary(self) -> None:
        """Bring the primary back; it resumes control."""
        self._primary_healthy = True

    @property
    def active(self) -> PowerController:
        """The instance currently in control."""
        return self.primary if self._primary_healthy else self.backup

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Pair-level state; instance state is captured per controller."""
        return {
            "primary_healthy": self._primary_healthy,
            "failovers": self.failovers,
        }

    def restore_state(self, state: dict) -> None:
        """Restore pair-level state in place."""
        self._primary_healthy = bool(state["primary_healthy"])
        self.failovers = int(state["failovers"])

    # ------------------------------------------------------------------
    # Uniform controller interface
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Controller name (from the active instance)."""
        return self.active.name

    @property
    def device(self) -> PowerDevice:
        """Protected device."""
        return self.active.device

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Latest aggregation from the active instance."""
        return self.active.last_aggregate_power_w

    @property
    def contractual_limit_w(self) -> float | None:
        """The active instance's contractual limit."""
        return self.active.contractual_limit_w

    def tick(self, now_s: float) -> BandAction:
        """Delegate the cycle to whichever instance is in control."""
        return self.active.tick(now_s)

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Propagate contractual limits to both instances.

        Both see parent limits so a failover does not lose them.
        """
        self.primary.set_contractual_limit_w(limit_w)
        self.backup.set_contractual_limit_w(limit_w)

    def clear_contractual_limit(self) -> None:
        """Clear contractual limits on both instances."""
        self.primary.clear_contractual_limit()
        self.backup.clear_contractual_limit()

    def replace_band(self, band_config: ThreeBandConfig) -> None:
        """Swap band thresholds on *both* instances.

        Both see the new thresholds so a failover does not revert a
        per-controller trade-off override; each instance carries its own
        capping-active state over.
        """
        self.primary.replace_band(band_config)
        self.backup.replace_band(band_config)

    # ------------------------------------------------------------------
    # Telemetry surface (so a wrapped controller still reports)
    # ------------------------------------------------------------------

    @property
    def cap_events(self) -> int:
        """Capping activations across both instances."""
        return self.primary.cap_events + self.backup.cap_events

    @property
    def uncap_events(self) -> int:
        """Uncapping activations across both instances."""
        return self.primary.uncap_events + self.backup.uncap_events

    @property
    def invalid_cycles(self) -> int:
        """Invalid aggregation cycles across both instances."""
        return self.primary.invalid_cycles + self.backup.invalid_cycles

    @property
    def aggregate_series(self) -> TimeSeries:
        """The active instance's aggregation time series."""
        return self.active.aggregate_series

    @property
    def config(self) -> ControllerConfig:
        """Controller timing config (shared by both instances)."""
        return self.primary.config

    @property
    def effective_limit_w(self) -> float:
        """The active instance's effective limit."""
        return self.active.effective_limit_w
