"""Request/response records exchanged between controllers and agents."""

from __future__ import annotations

from dataclasses import dataclass

from repro.server.sensor import PowerBreakdown


@dataclass(frozen=True)
class PowerReading:
    """An agent's answer to a power-read request.

    Attributes:
        server_id: the reporting server.
        power_w: total server power in watts.
        breakdown: component breakdown when an on-board sensor provides
            one; None for estimated readings.
        estimated: True when the value came from the agent's estimation
            model rather than a sensor.
        service: the service running on the server (controller metadata).
        time_s: simulation time of the reading.
        stale: True when the value was served from the controller's
            last-known-good cache because this cycle's pull failed.
        confidence: how much the aggregation trusts this value.
            Measured readings carry 1.0; under degraded sensing, stale
            cache hits decay with age and disaggregation estimates
            derive theirs from the model's fit error.  Anything below
            1.0 contributes uncertainty margin to the inflated
            aggregate (never under-cap).
    """

    server_id: str
    power_w: float
    estimated: bool
    service: str
    time_s: float
    breakdown: PowerBreakdown | None = None
    stale: bool = False
    confidence: float = 1.0


@dataclass(frozen=True)
class CapRequest:
    """A cap (or uncap) command sent to an agent.

    ``limit_w`` of None means uncap.
    """

    server_id: str
    limit_w: float | None


@dataclass(frozen=True)
class CapResponse:
    """Agent's acknowledgement of a cap/uncap command."""

    server_id: str
    success: bool
    message: str = ""
