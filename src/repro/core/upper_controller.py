"""Upper-level power controllers (Section III-D).

One per non-leaf power device (SB, MSB).  An upper-level controller runs
the same shared control-cycle pipeline as the leaves
(:class:`~repro.core.controller.BaseController`) but pulls aggregated
power from its *child controllers* — not from servers — on a cycle 3x
longer than the leaf cycle (9 s vs 3 s) so the downstream capping
actions have settled before it reacts (a textbook requirement for
nested control loops).

Capping decisions use the same three-band algorithm; the capping
*actuation* is the punish-offender-first algorithm: children over their
power quota receive contractual power limits, which each child folds
into its own effective limit (``min(physical, contractual)``) and
enforces on its next cycle — recursively, down to the leaf controllers
and the servers.

A cycle where *every* child lacks an aggregation is an invalid cycle,
accounted exactly like a leaf's failed aggregation: a CRITICAL alert,
an ``invalid_cycles`` increment, and no action.

In the consolidated deployment all controllers for a suite run in one
binary (one thread each) and communicate through shared memory; here the
parent holds direct references to its children, which is the same thing.
"""

from __future__ import annotations

from repro.config import ControllerConfig
from repro.core.controller import BaseController, DecisionPolicy, PowerController
from repro.core.offender import ChildState, OffenderDecision, punish_offender_first
from repro.core.three_band import BandAction, BandDecision
from repro.core.thresholds import control_thresholds_w
from repro.power.device import PowerDevice
from repro.telemetry.alerts import AlertSink, Severity
from repro.telemetry.tracing import TraceBuffer, TraceBuilder

#: Backwards-compatible alias: the child surface an upper controller
#: programs against is the one uniform controller protocol.
ChildController = PowerController


class UpperLevelPowerController(BaseController[list[ChildState]]):
    """Monitors and protects one non-leaf power device."""

    KIND = "upper"

    def __init__(
        self,
        device: PowerDevice,
        children: list[PowerController],
        *,
        config: ControllerConfig | None = None,
        alerts: AlertSink | None = None,
        band: DecisionPolicy | None = None,
        tracer: TraceBuffer | None = None,
    ) -> None:
        super().__init__(
            device, config=config, alerts=alerts, band=band, tracer=tracer
        )
        self.children: list[PowerController] = list(children)
        self._limited_children: dict[str, float] = {}
        self.last_decision: OffenderDecision | None = None

    # ------------------------------------------------------------------
    # Stage 1: pull child aggregations
    # ------------------------------------------------------------------

    def sense(
        self, now_s: float, trace: TraceBuilder
    ) -> list[ChildState] | None:
        """Collect child aggregations; None when too many are missing."""
        child_states: list[ChildState] = []
        missing = 0
        for child in self.children:
            power = child.last_aggregate_power_w
            if power is None:
                missing += 1
                continue
            child_states.append(
                ChildState(
                    name=child.name,
                    power_w=power,
                    quota_w=child.device.power_quota_w,
                )
            )
        trace.pulls_attempted = len(self.children)
        trace.pulls_failed = missing
        if not self.children:
            # Degenerate wiring: nothing to protect against.
            return None
        if not child_states:
            self.alerts.raise_alert(
                now_s,
                Severity.CRITICAL,
                self.name,
                f"all {len(self.children)} child controllers have no "
                "aggregation; holding",
            )
            return None
        if (
            missing
            and missing / len(self.children)
            > self.config.max_reading_failure_fraction
        ):
            self.alerts.raise_alert(
                now_s,
                Severity.CRITICAL,
                self.name,
                f"{missing}/{len(self.children)} child controllers have no "
                "aggregation; holding",
            )
            return None
        return child_states

    # ------------------------------------------------------------------
    # Stage 2: aggregation
    # ------------------------------------------------------------------

    def aggregate(
        self, sensed: list[ChildState], now_s: float, trace: TraceBuilder
    ) -> float:
        """Sum child aggregates plus the device's fixed overhead."""
        return sum(c.power_w for c in sensed) + self.device.fixed_overhead_w

    # ------------------------------------------------------------------
    # Stage 4: punish-offender-first contractual limits
    # ------------------------------------------------------------------

    def actuate(
        self,
        decision: BandDecision,
        sensed: list[ChildState],
        now_s: float,
        trace: TraceBuilder,
    ) -> None:
        """Issue or release contractual limits per the decision."""
        if decision.action is BandAction.CAP:
            self._cap_children(sensed, decision.total_power_cut_w, now_s, trace)
        elif decision.action is BandAction.UNCAP:
            trace.actuation_successes = len(self._limited_children)
            self._uncap_children()
        trace.capped_after = len(self._limited_children)

    def _cap_children(
        self,
        states: list[ChildState],
        needed_cut_w: float,
        now_s: float,
        trace: TraceBuilder,
    ) -> None:
        decision = punish_offender_first(states, needed_cut_w)
        self.last_decision = decision
        trace.cut_allocated_w = needed_cut_w - decision.unallocated_w
        if decision.unallocated_w > 1e-6:
            self.alerts.raise_alert(
                now_s,
                Severity.CRITICAL,
                self.name,
                f"{decision.unallocated_w:.0f} W of required cut exceeds all "
                "child power; device at risk",
            )
        by_name = {child.name: child for child in self.children}
        for state in states:
            limit = decision.contractual_limit_w(state)
            if limit is None:
                continue
            # Within a capping episode a contractual limit only ever
            # tightens: a re-issued looser limit would release power the
            # device has not yet earned back (relaxation happens at
            # uncap) — "each controller chooses the minimum of its
            # individual capping decision and that propagated from its
            # parent".
            existing = self._limited_children.get(state.name)
            if existing is not None:
                limit = min(limit, existing)
            by_name[state.name].set_contractual_limit_w(limit)
            self._limited_children[state.name] = limit
            trace.actuation_successes += 1

    def _uncap_children(self) -> None:
        by_name = {child.name: child for child in self.children}
        for name in self._limited_children:
            child = by_name.get(name)
            if child is not None:
                child.clear_contractual_limit()
        self._limited_children.clear()

    # ------------------------------------------------------------------
    # SAFE-posture fail-safe capping
    # ------------------------------------------------------------------

    def apply_fail_safe(self, now_s: float, trace: TraceBuilder) -> None:
        """Limit every child to its quota share of the capping target.

        With no child aggregations for long enough to reach SAFE there
        are no offenders to punish, so the capping target (minus fixed
        overhead) is divided quota-proportionally.  Existing contractual
        limits only tighten, mirroring the capping-episode rule.
        """
        if not self.children:
            return
        _, target, _, _ = control_thresholds_w(
            self.band.config,
            self.device.rated_power_w,
            self._contractual_limit_w,
        )
        budget = max(target - self.device.fixed_overhead_w, 0.0)
        total_quota = sum(c.device.power_quota_w for c in self.children)
        for child in self.children:
            if total_quota > 0.0:
                share = budget * child.device.power_quota_w / total_quota
            else:
                share = budget / len(self.children)
            existing = self._limited_children.get(child.name)
            if existing is not None:
                share = min(share, existing)
            child.set_contractual_limit_w(share)
            self._limited_children[child.name] = share
            trace.actuation_successes += 1
        trace.detail = "fail-safe"
        trace.capped_after = len(self._limited_children)

    def release_fail_safe(self, now_s: float) -> None:
        """Release fail-safe limits unless the policy has caps in force."""
        if self.band.capping_active:
            # The policy issued (some of) these limits: its own uncap
            # path releases them when the device has earned power back.
            return
        self._uncap_children()

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Template state plus the contractual-limit ledger.

        ``last_decision`` is introspection-only (it never feeds a later
        tick), so it is not captured; a restored controller reports None
        until its next capping episode.
        """
        state = super().snapshot_state()
        state["limited_children"] = dict(self._limited_children)
        return state

    def restore_state(self, state: dict) -> None:
        """Restore template state plus the contractual-limit ledger."""
        super().restore_state(state)
        self._limited_children = {
            name: float(limit)
            for name, limit in state["limited_children"].items()
        }
        self.last_decision = None

    @property
    def limited_children(self) -> list[str]:
        """Children currently under a contractual limit from here."""
        return sorted(self._limited_children)

    def limited_child_limit_w(self, name: str) -> float | None:
        """The contractual limit this controller issued to a child."""
        return self._limited_children.get(name)

    def __repr__(self) -> str:
        return (
            f"UpperLevelPowerController({self.name!r}, "
            f"children={len(self.children)}, "
            f"limited={len(self._limited_children)})"
        )
