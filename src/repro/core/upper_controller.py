"""Upper-level power controllers (Section III-D).

One per non-leaf power device (SB, MSB).  An upper-level controller pulls
aggregated power from its *child controllers* — not from servers — on a
cycle 3x longer than the leaf cycle (9 s vs 3 s) so the downstream
capping actions have settled before it reacts (a textbook requirement for
nested control loops).

Capping decisions use the same three-band algorithm; the capping *action*
is the punish-offender-first algorithm: children over their power quota
receive contractual power limits, which each child folds into its own
effective limit (``min(physical, contractual)``) and enforces on its next
cycle — recursively, down to the leaf controllers and the servers.

In the consolidated deployment all controllers for a suite run in one
binary (one thread each) and communicate through shared memory; here the
parent holds direct references to its children, which is the same thing.
"""

from __future__ import annotations

from typing import Protocol

from repro.config import ControllerConfig
from repro.core.offender import ChildState, OffenderDecision, punish_offender_first
from repro.core.three_band import BandAction, ThreeBandController
from repro.core.thresholds import control_thresholds_w
from repro.power.device import PowerDevice
from repro.telemetry.alerts import AlertSink, Severity
from repro.telemetry.timeseries import TimeSeries


class ChildController(Protocol):
    """What an upper-level controller needs from its children."""

    @property
    def name(self) -> str:
        """Controller name."""
        ...

    @property
    def device(self) -> PowerDevice:
        """The power device the child protects."""
        ...

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Most recent power aggregation."""
        ...

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Impose a contractual limit."""
        ...

    def clear_contractual_limit(self) -> None:
        """Release the contractual limit."""
        ...


class UpperLevelPowerController:
    """Monitors and protects one non-leaf power device."""

    def __init__(
        self,
        device: PowerDevice,
        children: list[ChildController],
        *,
        config: ControllerConfig | None = None,
        alerts: AlertSink | None = None,
        band=None,
    ) -> None:
        self.device = device
        self.children = list(children)
        self.config = config or ControllerConfig()
        self.alerts = alerts or AlertSink()
        self.band = band or ThreeBandController(self.config.three_band)
        self._contractual_limit_w: float | None = None
        self._last_aggregate_w: float | None = None
        self._limited_children: dict[str, float] = {}
        self.aggregate_series = TimeSeries(f"{device.name}.aggregate")
        self.cap_events = 0
        self.uncap_events = 0
        self.last_decision: OffenderDecision | None = None

    # ------------------------------------------------------------------
    # Parent-controller interface (uniform with the leaf controller)
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Controller name (the protected device's name)."""
        return self.device.name

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Most recent power aggregation, or None before the first."""
        return self._last_aggregate_w

    @property
    def contractual_limit_w(self) -> float | None:
        """Limit imposed by this controller's own parent, if any."""
        return self._contractual_limit_w

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Parent imposes a (tighter) limit on this subtree."""
        self._contractual_limit_w = float(limit_w)

    def clear_contractual_limit(self) -> None:
        """Parent releases its contractual limit."""
        self._contractual_limit_w = None

    @property
    def effective_limit_w(self) -> float:
        """min(physical limit, contractual limit)."""
        if self._contractual_limit_w is None:
            return self.device.rated_power_w
        return min(self.device.rated_power_w, self._contractual_limit_w)

    # ------------------------------------------------------------------
    # Control cycle
    # ------------------------------------------------------------------

    def tick(self, now_s: float) -> BandAction:
        """One 9 s control cycle; returns the action taken."""
        child_states: list[ChildState] = []
        missing = 0
        for child in self.children:
            power = child.last_aggregate_power_w
            if power is None:
                missing += 1
                continue
            child_states.append(
                ChildState(
                    name=child.name,
                    power_w=power,
                    quota_w=child.device.power_quota_w,
                )
            )
        if not child_states:
            return BandAction.HOLD
        if missing and missing / len(self.children) > self.config.max_reading_failure_fraction:
            self.alerts.raise_alert(
                now_s,
                Severity.CRITICAL,
                self.name,
                f"{missing}/{len(self.children)} child controllers have no "
                "aggregation; holding",
            )
            return BandAction.HOLD
        aggregate = sum(c.power_w for c in child_states) + self.device.fixed_overhead_w
        self._last_aggregate_w = aggregate
        self.aggregate_series.append(now_s, aggregate)

        cap_at, target, uncap_at, limit = control_thresholds_w(
            self.band.config, self.device.rated_power_w, self._contractual_limit_w
        )
        decision = self.band.decide_absolute(
            aggregate, limit, cap_at, target, uncap_at
        )
        if decision.action is BandAction.CAP:
            self._cap_children(child_states, decision.total_power_cut_w, now_s)
            self.cap_events += 1
        elif decision.action is BandAction.UNCAP:
            self._uncap_children()
            self.uncap_events += 1
        return decision.action

    def _cap_children(
        self, states: list[ChildState], needed_cut_w: float, now_s: float
    ) -> None:
        decision = punish_offender_first(states, needed_cut_w)
        self.last_decision = decision
        if decision.unallocated_w > 1e-6:
            self.alerts.raise_alert(
                now_s,
                Severity.CRITICAL,
                self.name,
                f"{decision.unallocated_w:.0f} W of required cut exceeds all "
                "child power; device at risk",
            )
        by_name = {child.name: child for child in self.children}
        for state in states:
            limit = decision.contractual_limit_w(state)
            if limit is None:
                continue
            # Within a capping episode a contractual limit only ever
            # tightens: a re-issued looser limit would release power the
            # device has not yet earned back (relaxation happens at
            # uncap) — "each controller chooses the minimum of its
            # individual capping decision and that propagated from its
            # parent".
            existing = self._limited_children.get(state.name)
            if existing is not None:
                limit = min(limit, existing)
            by_name[state.name].set_contractual_limit_w(limit)
            self._limited_children[state.name] = limit

    def _uncap_children(self) -> None:
        by_name = {child.name: child for child in self.children}
        for name in self._limited_children:
            child = by_name.get(name)
            if child is not None:
                child.clear_contractual_limit()
        self._limited_children.clear()

    @property
    def limited_children(self) -> list[str]:
        """Children currently under a contractual limit from here."""
        return sorted(self._limited_children)

    def limited_child_limit_w(self, name: str) -> float | None:
        """The contractual limit this controller issued to a child."""
        return self._limited_children.get(name)

    def __repr__(self) -> str:
        return (
            f"UpperLevelPowerController({self.name!r}, "
            f"children={len(self.children)}, "
            f"limited={len(self._limited_children)})"
        )
