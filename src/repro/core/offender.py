"""Punish-offender-first coordination (Section III-D).

When an upper-level controller must shed power, it inspects its children
and punishes the *offenders* first: children whose current power exceeds
their quota (planned peak).  The needed cut is distributed among offenders
high-bucket-first on their usage, never forcing an offender below its own
quota.  Only if the offenders' combined overage cannot absorb the whole
cut does the remainder spill to all children (the oversubscribed case
where everyone is within quota but the sums still exceed the parent's
limit).

The paper's worked example: P1 (limit 300 KW) with children C1 and C2
(quota 150 KW each); C1 draws 190 KW and C2 130 KW, so P1 sees 320 KW.
C1 is the sole offender and takes the whole 20 KW cut via a contractual
limit of 170 KW.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bucket import AllocationInput, allocate_high_bucket_first
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChildState:
    """A child controller's state as seen by its parent."""

    name: str
    power_w: float
    quota_w: float

    @property
    def overage_w(self) -> float:
        """Power above quota (0 when within quota)."""
        return max(0.0, self.power_w - self.quota_w)

    @property
    def is_offender(self) -> bool:
        """Whether this child exceeds its planned peak."""
        return self.power_w > self.quota_w


@dataclass(frozen=True)
class OffenderDecision:
    """Per-child power cuts from one coordination round."""

    cuts_w: dict[str, float]
    unallocated_w: float

    def contractual_limit_w(self, child: ChildState) -> float | None:
        """The contractual limit to send, or None if the child is uncut."""
        cut = self.cuts_w.get(child.name, 0.0)
        if cut <= 1e-9:
            return None
        return child.power_w - cut


def punish_offender_first(
    children: list[ChildState],
    needed_cut_w: float,
    *,
    bucket_width_fraction: float = 0.02,
) -> OffenderDecision:
    """Distribute ``needed_cut_w`` across children, offenders first.

    The high-bucket-first bucket width scales with the fleet: 2% of the
    largest child's power by default, so the allocator behaves the same
    at 300 KW SBs and 1.25 MW MSBs.

    Returns per-child cuts; ``unallocated_w`` is nonzero only if the cut
    exceeds everything all children draw.
    """
    if needed_cut_w < 0:
        raise ConfigurationError("needed cut cannot be negative")
    cuts: dict[str, float] = {c.name: 0.0 for c in children}
    if needed_cut_w == 0.0 or not children:
        return OffenderDecision(cuts_w=cuts, unallocated_w=needed_cut_w)

    bucket_width = max(
        1.0, bucket_width_fraction * max(c.power_w for c in children)
    )

    # Stage 1: offenders, cut no further than their quota.
    offenders = [c for c in children if c.is_offender]
    remaining = needed_cut_w
    if offenders:
        result = allocate_high_bucket_first(
            [
                AllocationInput(
                    server_id=c.name, power_w=c.power_w, min_cap_w=c.quota_w
                )
                for c in offenders
            ],
            remaining,
            bucket_width_w=bucket_width,
        )
        for name, cut in result.cuts_w.items():
            cuts[name] += cut
        remaining = result.unallocated_w

    # Stage 2: every child, down to zero if safety demands it.  This is
    # the oversubscription spillover: all children within quota, yet the
    # parent device is still over its limit.
    if remaining > 1e-9:
        result = allocate_high_bucket_first(
            [
                AllocationInput(
                    server_id=c.name,
                    power_w=c.power_w - cuts[c.name],
                    min_cap_w=0.0,
                )
                for c in children
            ],
            remaining,
            bucket_width_w=bucket_width,
        )
        for name, cut in result.cuts_w.items():
            cuts[name] += cut
        remaining = result.unallocated_w

    return OffenderDecision(cuts_w=cuts, unallocated_w=max(0.0, remaining))
