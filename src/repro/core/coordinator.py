"""The consolidated controller binary (Section IV).

In production, all controller instances for neighbouring devices in a
suite are consolidated into one binary, each controller a thread (~100
threads), running on dedicated Dynamo servers.  The coordinator plays that
binary's role: it owns the periodic scheduling of every controller in a
hierarchy, leaf controllers on the 3 s cycle and upper controllers on the
9 s cycle.

Event priorities guarantee the intra-instant ordering nested control
loops need: when a leaf tick and an upper tick land on the same instant,
the leaf runs first, so the upper controller always sees the freshest
aggregations.
"""

from __future__ import annotations

from repro.core.controller import PowerController
from repro.core.hierarchy import ControllerHierarchy
from repro.errors import ConfigurationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess

#: Event priorities (lower runs first at the same instant).
PRIORITY_FLEET_STEP = 0
PRIORITY_CHAOS = 2
PRIORITY_SAMPLER = 5
PRIORITY_LEAF = 10
PRIORITY_UPPER = 20
PRIORITY_WATCHDOG = 30


class ControllerCoordinator:
    """Schedules every controller in a hierarchy on the engine.

    Ticks are dispatched through a name-indexed registry rather than
    bound methods, so a controller can be replaced mid-run — e.g. the
    chaos subsystem swapping a plain controller for a primary/backup
    :class:`~repro.core.failover.FailoverController` pair — without
    touching the event queue.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        hierarchy: ControllerHierarchy,
    ) -> None:
        self._engine = engine
        self.hierarchy = hierarchy
        self._controllers: dict[str, PowerController] = {}
        self._processes: list[PeriodicProcess] = []
        #: Sharded execution (``repro.sharding``): controller names whose
        #: scheduled ticks are dispatched as no-ops.  The events still
        #: execute — engine clock/sequence bookkeeping stays identical
        #: across processes — but the tick body is owned by another
        #: process.  Keyed by *name*, not instance, so chaos failover
        #: swaps (:meth:`replace_controller`) stay masked.
        self.masked_ticks: set[str] | None = None
        #: Sharded execution: names whose ticks are *collected* instead
        #: of run inline.  The dispatch appends ``(name, now_s)`` to
        #: :attr:`collect_sink`; the shard worker then runs the
        #: collected ticks itself once it holds the RPC token.
        self.collect_names: frozenset[str] = frozenset()
        self.collect_sink: list[tuple[str, float]] | None = None

        def dispatch(name: str):
            def run(now_s: float) -> None:
                masked = self.masked_ticks
                if masked is not None and name in masked:
                    return
                if self.collect_sink is not None and name in self.collect_names:
                    self.collect_sink.append((name, now_s))
                    return
                self._controllers[name].tick(now_s)

            return run

        for controller in hierarchy.leaf_controllers.values():
            self._controllers[controller.name] = controller
            self._processes.append(
                PeriodicProcess(
                    engine,
                    controller.config.leaf_pull_interval_s,
                    dispatch(controller.name),
                    label=f"leaf.{controller.name}",
                    priority=PRIORITY_LEAF,
                )
            )
        # Sort upper controllers deepest-first so that, at coincident
        # instants, SB controllers run before their MSB parent and the
        # parent sees this cycle's aggregations.
        uppers = sorted(
            hierarchy.upper_controllers.values(),
            key=lambda c: -c.device.level.depth,
        )
        for controller in uppers:
            self._controllers[controller.name] = controller
            self._processes.append(
                PeriodicProcess(
                    engine,
                    controller.config.upper_pull_interval_s,
                    dispatch(controller.name),
                    label=f"upper.{controller.name}",
                    priority=PRIORITY_UPPER + (3 - controller.device.level.depth),
                )
            )
        self._started = False

    def replace_controller(self, name: str, controller: PowerController) -> None:
        """Swap the instance ticked under ``name`` (failover wrapping)."""
        if name not in self._controllers:
            raise ConfigurationError(f"no scheduled controller named {name!r}")
        self._controllers[name] = controller

    def scheduled_controller(self, name: str) -> PowerController:
        """The instance currently ticked under ``name``."""
        try:
            return self._controllers[name]
        except KeyError:
            raise ConfigurationError(
                f"no scheduled controller named {name!r}"
            ) from None

    def start(self) -> None:
        """Start every controller's periodic process.

        The first leaf tick happens one leaf interval in; upper ticks one
        upper interval in, giving leaves a head start on aggregation.
        """
        for process in self._processes:
            process.start(phase=process.interval_s)
        self._started = True

    def stop(self) -> None:
        """Stop all controller processes."""
        for process in self._processes:
            process.stop()
        self._started = False

    @property
    def running(self) -> bool:
        """Whether controllers are currently scheduled."""
        return self._started

    @property
    def processes(self) -> list[PeriodicProcess]:
        """Every controller schedule (for snapshot capture/re-arming)."""
        return list(self._processes)

    @property
    def thread_count(self) -> int:
        """Number of controller 'threads' in the consolidated binary."""
        return len(self._processes)
