"""Endpoint health tracking and the degraded-mode state machine.

Two robustness primitives the paper's abort-and-alert story stops short
of, both motivated by running controllers over a lossy fabric:

* :class:`HealthRegistry` — per-endpoint success/failure/latency
  history fed by the resilient transport
  (:class:`~repro.rpc.resilient.ResilientTransport`).  Persistently bad
  endpoints — ones whose circuit breaker keeps tripping — are
  quarantined: calls fail fast for a cooling-off window instead of
  burning retries against a dead host every cycle.
* :class:`ModeStateMachine` — a per-controller operating posture
  (NORMAL → DEGRADED → SAFE) driven by consecutive invalid cycles.
  The paper's rule is "abort and alert"; repeated aborts here
  additionally harden the posture: DEGRADED defers uncapping (holds
  last limits) and widens alerting, SAFE applies a conservative
  fail-safe cap at the capping target.  Recovery hysteresis walks the
  posture back one level per run of consecutive valid cycles.  A
  parallel SENSOR_DEGRADED branch covers cycles the disaggregation
  estimator carried (coverage below the failure-fraction floor but the
  aggregate still usable): capping proceeds, uncaps defer, and recovery
  goes straight back to NORMAL once sensing returns.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.config import OperatingModeConfig
from repro.telemetry.alerts import AlertSink, Severity

#: Latency samples retained per endpoint for the mean-latency view.
_LATENCY_WINDOW = 64


@dataclass
class EndpointHealth:
    """Success/failure/latency history for one RPC endpoint."""

    endpoint: str
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    #: Attempts beyond the first within one logical call.
    retries: int = 0
    #: Logical calls that failed at least once but ultimately succeeded.
    retry_successes: int = 0
    #: Full (closed → open) circuit-breaker trips.
    breaker_opens: int = 0
    #: Calls rejected without touching the wire (open breaker/quarantine).
    fast_fails: int = 0
    consecutive_failures: int = 0
    last_success_s: float | None = None
    last_failure_s: float | None = None
    backoff_waited_s: float = 0.0
    quarantines: int = 0
    quarantined_until_s: float | None = None
    latencies: deque[float] = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW)
    )

    @property
    def failure_rate(self) -> float:
        """Lifetime attempt-failure fraction (0.0 before any attempt)."""
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts

    @property
    def mean_latency_s(self) -> float:
        """Mean over the retained latency window."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def quarantined(self, now_s: float) -> bool:
        """Whether the endpoint is quarantined at ``now_s``."""
        return (
            self.quarantined_until_s is not None
            and now_s < self.quarantined_until_s
        )

    def render(self, now_s: float) -> str:
        """Stable one-line form for the ``repro health`` CLI."""
        state = "quarantined" if self.quarantined(now_s) else "ok"
        return (
            f"{self.endpoint} calls={self.successes}/{self.attempts}"
            f" retries={self.retries}({self.retry_successes} won)"
            f" opens={self.breaker_opens} fastfail={self.fast_fails}"
            f" lat={1e3 * self.mean_latency_s:.2f}ms {state}"
        )

    def snapshot_state(self) -> dict:
        """Serializable counters plus the retained latency window."""
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": self.failures,
            "retries": self.retries,
            "retry_successes": self.retry_successes,
            "breaker_opens": self.breaker_opens,
            "fast_fails": self.fast_fails,
            "consecutive_failures": self.consecutive_failures,
            "last_success_s": self.last_success_s,
            "last_failure_s": self.last_failure_s,
            "backoff_waited_s": self.backoff_waited_s,
            "quarantines": self.quarantines,
            "quarantined_until_s": self.quarantined_until_s,
            "latencies": list(self.latencies),
        }

    def restore_state(self, state: dict) -> None:
        """Restore counters and latency window in place."""
        self.attempts = int(state["attempts"])
        self.successes = int(state["successes"])
        self.failures = int(state["failures"])
        self.retries = int(state["retries"])
        self.retry_successes = int(state["retry_successes"])
        self.breaker_opens = int(state["breaker_opens"])
        self.fast_fails = int(state["fast_fails"])
        self.consecutive_failures = int(state["consecutive_failures"])
        self.last_success_s = state["last_success_s"]
        self.last_failure_s = state["last_failure_s"]
        self.backoff_waited_s = float(state["backoff_waited_s"])
        self.quarantines = int(state["quarantines"])
        self.quarantined_until_s = state["quarantined_until_s"]
        self.latencies = deque(
            (float(v) for v in state["latencies"]), maxlen=_LATENCY_WINDOW
        )


class HealthRegistry:
    """Per-endpoint health fed by the resilient transport.

    The registry is passive bookkeeping plus one policy: an endpoint
    whose breaker has fully tripped ``quarantine_after_opens`` times is
    quarantined for ``quarantine_duration_s`` — the caller fails fast
    instead of re-probing a persistently bad host every cycle.
    """

    def __init__(
        self,
        *,
        quarantine_after_opens: int = 3,
        quarantine_duration_s: float = 120.0,
    ) -> None:
        self.quarantine_after_opens = quarantine_after_opens
        self.quarantine_duration_s = quarantine_duration_s
        self._endpoints: dict[str, EndpointHealth] = {}

    def stats(self, endpoint: str) -> EndpointHealth | None:
        """Health record for one endpoint, or None if never called."""
        return self._endpoints.get(endpoint)

    def _stats(self, endpoint: str) -> EndpointHealth:
        stats = self._endpoints.get(endpoint)
        if stats is None:
            stats = self._endpoints[endpoint] = EndpointHealth(endpoint)
        return stats

    @property
    def endpoints(self) -> list[str]:
        """All endpoints with recorded history, sorted."""
        return sorted(self._endpoints)

    # ------------------------------------------------------------------
    # Recording hooks (called by ResilientTransport)
    # ------------------------------------------------------------------

    def record_success(
        self, endpoint: str, now_s: float, latency_s: float, *, retried: bool
    ) -> None:
        """Account one successful attempt."""
        stats = self._stats(endpoint)
        stats.attempts += 1
        stats.successes += 1
        stats.consecutive_failures = 0
        stats.last_success_s = now_s
        stats.latencies.append(latency_s)
        if retried:
            stats.retry_successes += 1

    def record_failure(self, endpoint: str, now_s: float) -> None:
        """Account one failed attempt."""
        stats = self._stats(endpoint)
        stats.attempts += 1
        stats.failures += 1
        stats.consecutive_failures += 1
        stats.last_failure_s = now_s

    def backfill_successes(self, endpoint: str, count: int) -> None:
        """Account ``count`` successes served on the batched fast lane.

        Called when an endpoint leaves the vectorized control plane's
        fast path: attempt/success totals and the consecutive-failure
        reset match ``count`` sequential :meth:`record_success` calls.
        Latency samples and the last-success timestamp are
        diagnostics-only and are not backfilled.
        """
        stats = self._stats(endpoint)
        stats.attempts += count
        stats.successes += count
        stats.consecutive_failures = 0

    def record_retry(self, endpoint: str, backoff_s: float) -> None:
        """Account one retry attempt and its backoff delay."""
        stats = self._stats(endpoint)
        stats.retries += 1
        stats.backoff_waited_s += backoff_s

    def record_fast_fail(self, endpoint: str) -> None:
        """Account a call rejected by an open breaker or quarantine."""
        self._stats(endpoint).fast_fails += 1

    def record_breaker_open(self, endpoint: str, now_s: float) -> None:
        """Account a full (closed → open) breaker trip; maybe quarantine."""
        stats = self._stats(endpoint)
        stats.breaker_opens += 1
        if (
            self.quarantine_after_opens > 0
            and stats.breaker_opens >= self.quarantine_after_opens
            and self.quarantine_duration_s > 0.0
        ):
            stats.quarantined_until_s = now_s + self.quarantine_duration_s
            stats.quarantines += 1

    def release(self, endpoint: str) -> None:
        """Lift an endpoint's quarantine early (operator override)."""
        stats = self._endpoints.get(endpoint)
        if stats is not None:
            stats.quarantined_until_s = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_quarantined(self, endpoint: str, now_s: float) -> bool:
        """Whether calls to ``endpoint`` should fail fast at ``now_s``."""
        stats = self._endpoints.get(endpoint)
        return stats is not None and stats.quarantined(now_s)

    def quarantined_endpoints(self, now_s: float) -> list[str]:
        """Endpoints currently quarantined, sorted."""
        return sorted(
            e for e, s in self._endpoints.items() if s.quarantined(now_s)
        )

    @property
    def total_retries(self) -> int:
        """Retry attempts across all endpoints."""
        return sum(s.retries for s in self._endpoints.values())

    @property
    def total_retry_successes(self) -> int:
        """Logical calls rescued by a retry, across all endpoints."""
        return sum(s.retry_successes for s in self._endpoints.values())

    @property
    def total_breaker_opens(self) -> int:
        """Full breaker trips across all endpoints."""
        return sum(s.breaker_opens for s in self._endpoints.values())

    @property
    def total_quarantines(self) -> int:
        """Quarantine impositions across all endpoints."""
        return sum(s.quarantines for s in self._endpoints.values())

    def snapshot_state(self) -> dict:
        """Serializable per-endpoint histories (insertion order kept)."""
        return {
            "endpoints": {
                endpoint: stats.snapshot_state()
                for endpoint, stats in self._endpoints.items()
            }
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild endpoint histories from a snapshot."""
        self._endpoints = {}
        for endpoint, stats_state in state["endpoints"].items():
            stats = EndpointHealth(endpoint)
            stats.restore_state(stats_state)
            self._endpoints[endpoint] = stats

    def __repr__(self) -> str:
        return f"HealthRegistry(endpoints={len(self._endpoints)})"


# ---------------------------------------------------------------------------
# Operating-mode state machine
# ---------------------------------------------------------------------------


class OperatingMode(enum.Enum):
    """A controller's operating posture."""

    NORMAL = "normal"
    DEGRADED = "degraded"
    #: Sensing coverage fell below the failure-fraction floor but the
    #: disaggregation estimator kept the aggregate usable: capping
    #: proceeds against an uncertainty-inflated total, uncaps are
    #: deferred.  Sits between DEGRADED and SAFE in severity but forms
    #: its own branch — it is entered by degraded *sensing*, not by
    #: invalid cycles, and recovers straight to NORMAL.
    SENSOR_DEGRADED = "sensor-degraded"
    SAFE = "safe"


#: Escalation order for the invalid-cycle branch; recovery steps one
#: level left per hysteresis run.  SENSOR_DEGRADED is deliberately not
#: in this list: it is a parallel branch (see OperatingMode docs).
_MODE_ORDER = [OperatingMode.NORMAL, OperatingMode.DEGRADED, OperatingMode.SAFE]


class ModeStateMachine:
    """NORMAL → DEGRADED → SAFE escalation on consecutive invalid cycles.

    Escalation is monotone within an outage: ``degraded_after`` invalid
    cycles in a row enter DEGRADED, ``safe_after`` enter SAFE.  Any
    valid cycle resets the invalid streak; ``recovery_valid_cycles``
    valid cycles in a row step the posture down one level (SAFE →
    DEGRADED → NORMAL), so recovery is deliberately slower than
    escalation.  Disabled machines always report NORMAL.
    """

    def __init__(
        self,
        config: OperatingModeConfig | None = None,
        *,
        name: str = "",
        alerts: AlertSink | None = None,
    ) -> None:
        self.config = config or OperatingModeConfig()
        self.name = name
        self.alerts = alerts
        self.mode = OperatingMode.NORMAL
        self.consecutive_invalid = 0
        self.consecutive_valid = 0
        #: (time_s, from_mode, to_mode) history, oldest first.
        self.transitions: list[tuple[float, str, str]] = []
        self.degraded_entries = 0
        self.safe_entries = 0
        self.sensor_degraded_entries = 0
        #: UNCAP decisions deferred while not NORMAL.
        self.deferred_uncaps = 0

    def _alert(self, now_s: float, severity: Severity, message: str) -> None:
        if self.alerts is not None:
            self.alerts.raise_alert(now_s, severity, self.name, message)

    def _transition(self, now_s: float, to: OperatingMode) -> None:
        if to is self.mode:
            return
        previous = self.mode
        self.mode = to
        self.transitions.append((now_s, previous.value, to.value))
        if to is OperatingMode.DEGRADED and previous is OperatingMode.NORMAL:
            self.degraded_entries += 1
            self._alert(
                now_s,
                Severity.WARNING,
                f"entering DEGRADED after {self.consecutive_invalid} "
                "consecutive invalid cycles; holding last limits",
            )
        elif to is OperatingMode.SAFE:
            self.safe_entries += 1
            self._alert(
                now_s,
                Severity.CRITICAL,
                f"entering SAFE after {self.consecutive_invalid} consecutive "
                "invalid cycles; applying fail-safe cap at the capping target",
            )
        elif to is OperatingMode.SENSOR_DEGRADED and previous in (
            OperatingMode.NORMAL,
            OperatingMode.DEGRADED,
        ):
            self.sensor_degraded_entries += 1
            self._alert(
                now_s,
                Severity.WARNING,
                "entering SENSOR_DEGRADED: sensing coverage below the "
                "failure-fraction floor; capping against the "
                "uncertainty-inflated disaggregation estimate, uncaps "
                "deferred",
            )
        else:
            self._alert(
                now_s,
                Severity.INFO,
                f"recovered from {previous.value} to {to.value} after "
                f"{self.consecutive_valid} consecutive valid cycles",
            )

    def record_invalid_cycle(self, now_s: float) -> OperatingMode:
        """One invalid cycle; escalate when thresholds are crossed."""
        if not self.config.enabled:
            return self.mode
        self.consecutive_invalid += 1
        self.consecutive_valid = 0
        if self.consecutive_invalid >= self.config.safe_after_invalid_cycles:
            self._transition(now_s, OperatingMode.SAFE)
        elif (
            self.consecutive_invalid
            >= self.config.degraded_after_invalid_cycles
        ):
            if self.mode is OperatingMode.NORMAL:
                self._transition(now_s, OperatingMode.DEGRADED)
        return self.mode

    def record_valid_cycle(self, now_s: float) -> OperatingMode:
        """One valid cycle; step the posture down after a hysteresis run."""
        if not self.config.enabled:
            return self.mode
        self.consecutive_invalid = 0
        self.consecutive_valid += 1
        if (
            self.mode is not OperatingMode.NORMAL
            and self.consecutive_valid >= self.config.recovery_valid_cycles
        ):
            if self.mode is OperatingMode.SENSOR_DEGRADED:
                # Sensing is back: the estimator branch recovers
                # straight to NORMAL (there was never a trusted-limits
                # problem, only a coverage problem).
                step_down = OperatingMode.NORMAL
            else:
                step_down = _MODE_ORDER[_MODE_ORDER.index(self.mode) - 1]
            self._transition(now_s, step_down)
            # Each level of recovery needs its own full run of valid
            # cycles — SAFE does not collapse straight to NORMAL.
            self.consecutive_valid = 0
        return self.mode

    def record_degraded_sensing_cycle(self, now_s: float) -> OperatingMode:
        """One cycle carried by the disaggregation estimator.

        The cycle produced a usable (inflated) aggregate, so it is not
        invalid — the invalid streak resets — but it does not count as
        healthy either: the valid streak resets outside SAFE, so
        recovery hysteresis only starts once real coverage returns.
        While SAFE, estimator-carried cycles do count toward the
        hysteresis run, stepping the posture down to SENSOR_DEGRADED
        (not DEGRADED: sensing is still impaired).
        """
        if not self.config.enabled:
            return self.mode
        self.consecutive_invalid = 0
        if self.mode is OperatingMode.SAFE:
            self.consecutive_valid += 1
            if self.consecutive_valid >= self.config.recovery_valid_cycles:
                self._transition(now_s, OperatingMode.SENSOR_DEGRADED)
                self.consecutive_valid = 0
            return self.mode
        self.consecutive_valid = 0
        if self.mode in (OperatingMode.NORMAL, OperatingMode.DEGRADED):
            self._transition(now_s, OperatingMode.SENSOR_DEGRADED)
        return self.mode

    def time_in_mode_s(self, mode: OperatingMode, now_s: float) -> float:
        """Total seconds spent in ``mode`` up to ``now_s``.

        Reconstructed from the transition history; an interval still
        open at ``now_s`` is charged through ``now_s``.  The machine
        starts in NORMAL at t=0.
        """
        total = 0.0
        current = OperatingMode.NORMAL.value
        since = 0.0
        for time_s, _, to in self.transitions:
            if current == mode.value:
                total += time_s - since
            current = to
            since = time_s
        if current == mode.value and now_s > since:
            total += now_s - since
        return total

    def record_deferred_uncap(self) -> None:
        """Account an UNCAP decision deferred by a non-NORMAL posture."""
        self.deferred_uncaps += 1

    def snapshot_state(self) -> dict:
        """Serializable posture, streaks, and transition history."""
        return {
            "mode": self.mode.value,
            "consecutive_invalid": self.consecutive_invalid,
            "consecutive_valid": self.consecutive_valid,
            "transitions": [list(t) for t in self.transitions],
            "degraded_entries": self.degraded_entries,
            "safe_entries": self.safe_entries,
            "sensor_degraded_entries": self.sensor_degraded_entries,
            "deferred_uncaps": self.deferred_uncaps,
        }

    def restore_state(self, state: dict) -> None:
        """Restore posture and counters in place (no alerts raised)."""
        self.mode = OperatingMode(state["mode"])
        self.consecutive_invalid = int(state["consecutive_invalid"])
        self.consecutive_valid = int(state["consecutive_valid"])
        self.transitions = [
            (float(t), str(a), str(b)) for t, a, b in state["transitions"]
        ]
        self.degraded_entries = int(state["degraded_entries"])
        self.safe_entries = int(state["safe_entries"])
        self.sensor_degraded_entries = int(
            state.get("sensor_degraded_entries", 0)
        )
        self.deferred_uncaps = int(state["deferred_uncaps"])

    def __repr__(self) -> str:
        return (
            f"ModeStateMachine({self.name!r}, mode={self.mode.value}, "
            f"invalid_streak={self.consecutive_invalid})"
        )
