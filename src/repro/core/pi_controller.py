"""A proportional-integral capping decision policy (future-work study).

The paper deliberately shipped the simple three-band algorithm
("Algorithm selection", Section III-E) and notes that more complex
power capping algorithms are future work.  This module implements the
obvious candidate — a PI controller on the power error — behind the
same decision interface as :class:`~repro.core.three_band.ThreeBandController`,
so either policy can drive a leaf or upper controller.  The ablation
bench compares them on settling behaviour and overshoot.
"""

from __future__ import annotations

from repro.config import ThreeBandConfig
from repro.core.three_band import BandAction, BandDecision
from repro.errors import ConfigurationError


class PiPowerController:
    """PI control on (aggregate - target), gated by the outer bands.

    The capping threshold still gates when control engages (safety
    semantics identical to three-band); once engaged, the *size* of the
    power cut is the PI output rather than the fixed
    ``aggregate - target`` step, letting the controller converge with
    less overshoot under noisy aggregates.  Uncapping uses the same
    bottom band.
    """

    def __init__(
        self,
        config: ThreeBandConfig | None = None,
        *,
        kp: float = 0.8,
        ki: float = 0.3,
        integral_limit_fraction: float = 0.10,
        capping_active: bool = False,
    ) -> None:
        if kp <= 0 or ki < 0:
            raise ConfigurationError("kp must be positive and ki non-negative")
        self.config = config or ThreeBandConfig()
        self.kp = kp
        self.ki = ki
        self._integral_limit_fraction = integral_limit_fraction
        self._integral_w = 0.0
        self._capping_active = capping_active

    @property
    def capping_active(self) -> bool:
        """Whether caps from this controller are in force."""
        return self._capping_active

    def thresholds_w(self, limit_w: float) -> tuple[float, float, float]:
        """Same band thresholds as the three-band controller."""
        if limit_w <= 0:
            raise ConfigurationError("device limit must be positive")
        return (
            limit_w * self.config.capping_threshold,
            limit_w * self.config.capping_target,
            limit_w * self.config.uncapping_threshold,
        )

    def decide(self, aggregated_power_w: float, limit_w: float) -> BandDecision:
        """One control-cycle decision."""
        cap_at, target, uncap_at = self.thresholds_w(limit_w)
        return self.decide_absolute(
            aggregated_power_w, limit_w, cap_at, target, uncap_at
        )

    def decide_absolute(
        self,
        aggregated_power_w: float,
        limit_w: float,
        cap_at: float,
        target: float,
        uncap_at: float,
    ) -> BandDecision:
        """Decision against explicitly supplied band thresholds."""
        error_w = aggregated_power_w - target
        if aggregated_power_w > cap_at or (
            self._capping_active and error_w > 0.0
        ):
            self._capping_active = True
            self._integral_w += error_w
            bound = self._integral_limit_fraction * limit_w / max(self.ki, 1e-9)
            self._integral_w = min(bound, max(-bound, self._integral_w))
            cut = self.kp * error_w + self.ki * self._integral_w
            cut = max(0.0, cut)
            return BandDecision(
                action=BandAction.CAP if cut > 0.0 else BandAction.HOLD,
                total_power_cut_w=cut,
                limit_w=limit_w,
                aggregated_power_w=aggregated_power_w,
            )
        if self._capping_active and aggregated_power_w < uncap_at:
            self.reset()
            return BandDecision(
                action=BandAction.UNCAP,
                total_power_cut_w=0.0,
                limit_w=limit_w,
                aggregated_power_w=aggregated_power_w,
            )
        if not self._capping_active:
            self._integral_w = 0.0
        return BandDecision(
            action=BandAction.HOLD,
            total_power_cut_w=0.0,
            limit_w=limit_w,
            aggregated_power_w=aggregated_power_w,
        )

    def reset(self) -> None:
        """Forget state (controller restart / uncap)."""
        self._integral_w = 0.0
        self._capping_active = False
