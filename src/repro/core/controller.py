"""The shared control-cycle pipeline every Dynamo controller runs.

The paper's leaf and upper controllers execute the *same* loop — pull
readings, aggregate, run the three-band algorithm against
``min(physical, contractual)``, then actuate — and differ only in what
each stage touches: a leaf senses servers over RPC and actuates RAPL
capping plans; an upper controller senses child-controller aggregations
and actuates contractual limits, punish-offender-first.

:class:`BaseController` owns that skeleton once.  Its :meth:`tick`
template decomposes into four overridable stages::

    sense      -> readings (leaf: RPC broadcast + neighbour estimation;
                  upper: child aggregations), or None when the cycle is
                  invalid (no action this cycle, no false positives)
    aggregate  -> one power number for the protected device
    decide     -> a BandDecision from the pluggable DecisionPolicy
                  (three-band by default, PI for studies) against
                  thresholds derived from min(physical, contractual)
    actuate    -> leaf: capping-plan fan-out; upper: contractual limits

Every tick threads a :class:`~repro.telemetry.tracing.TraceBuilder`
through the stages and lands a finished
:class:`~repro.telemetry.tracing.TickTrace` in the controller's
:class:`~repro.telemetry.tracing.TraceBuffer` — per-tick observability
for the chaos scorecard and the ``repro trace`` CLI.

:class:`PowerController` is the single protocol the whole system
programs against — parents talking to children, the coordinator's tick
dispatch, failover wrapping, and chaos swapping all use this one
surface (it collapses the former ``ChildController`` and
``TickableController`` protocols).
"""

from __future__ import annotations

import abc
import time
from typing import Generic, Protocol, TypeVar, runtime_checkable

from repro.config import ControllerConfig, ThreeBandConfig
from repro.core.health import ModeStateMachine, OperatingMode
from repro.core.three_band import BandAction, BandDecision, ThreeBandController
from repro.core.thresholds import control_thresholds_w
from repro.power.device import PowerDevice
from repro.telemetry.alerts import AlertSink
from repro.telemetry.timeseries import TimeSeries
from repro.telemetry.tracing import TickTrace, TraceBuffer, TraceBuilder

SenseT = TypeVar("SenseT")


@runtime_checkable
class DecisionPolicy(Protocol):
    """A pluggable capping decision algorithm.

    Both :class:`~repro.core.three_band.ThreeBandController` (the
    paper's shipped algorithm) and
    :class:`~repro.core.pi_controller.PiPowerController` (the
    future-work study) satisfy this.
    """

    config: ThreeBandConfig

    @property
    def capping_active(self) -> bool:
        """Whether caps from this policy are currently in force."""
        ...

    def decide_absolute(
        self,
        aggregated_power_w: float,
        limit_w: float,
        cap_at: float,
        target: float,
        uncap_at: float,
    ) -> BandDecision:
        """Decision against explicitly supplied band thresholds."""
        ...

    def reset(self) -> None:
        """Forget capping state (controller restart)."""
        ...


@runtime_checkable
class PowerController(Protocol):
    """The uniform surface of every controller in the hierarchy.

    Parents hold children behind it, the coordinator ticks through it,
    :class:`~repro.core.failover.FailoverController` wraps it, and chaos
    swapping programs against it.
    """

    @property
    def name(self) -> str:
        """Controller name (the protected device's name)."""
        ...

    @property
    def device(self) -> PowerDevice:
        """The power device the controller protects."""
        ...

    @property
    def config(self) -> ControllerConfig:
        """Controller timing/validity configuration."""
        ...

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Most recent valid power aggregation."""
        ...

    @property
    def contractual_limit_w(self) -> float | None:
        """Limit imposed by the parent controller, if any."""
        ...

    @property
    def effective_limit_w(self) -> float:
        """min(physical limit, contractual limit)."""
        ...

    @property
    def aggregate_series(self) -> TimeSeries:
        """Aggregation time series."""
        ...

    @property
    def cap_events(self) -> int:
        """Capping activations."""
        ...

    @property
    def uncap_events(self) -> int:
        """Uncapping activations."""
        ...

    @property
    def invalid_cycles(self) -> int:
        """Cycles aborted for lack of a valid aggregation."""
        ...

    def tick(self, now_s: float) -> BandAction:
        """Run one control cycle."""
        ...

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Impose a contractual limit."""
        ...

    def clear_contractual_limit(self) -> None:
        """Release the contractual limit."""
        ...

    def replace_band(self, band_config: ThreeBandConfig) -> None:
        """Swap band thresholds, preserving capping state."""
        ...


class BaseController(abc.ABC, Generic[SenseT]):
    """Common state and the sense→aggregate→decide→actuate template.

    Subclasses implement the four stages; everything else — contractual
    limits, effective-limit arithmetic, the decision policy, telemetry
    series, cap/uncap/invalid counters, alert plumbing, and per-tick
    tracing — lives here exactly once.
    """

    #: Stage label recorded in every trace ("leaf" / "upper").
    KIND = "controller"

    def __init__(
        self,
        device: PowerDevice,
        *,
        config: ControllerConfig | None = None,
        alerts: AlertSink | None = None,
        band: DecisionPolicy | None = None,
        tracer: TraceBuffer | None = None,
    ) -> None:
        self.device = device
        self.config = config or ControllerConfig()
        self.alerts = alerts or AlertSink()
        # The decision policy is pluggable: the paper's three-band
        # algorithm by default, or e.g. the PI policy for studies.
        self.band: DecisionPolicy = band or ThreeBandController(
            self.config.three_band
        )
        # NOT `tracer or ...`: an empty shared TraceBuffer is falsy.
        self.tracer = TraceBuffer() if tracer is None else tracer
        # Operating posture (NORMAL → DEGRADED → SAFE) driven by
        # consecutive invalid cycles; see repro.core.health.
        self.modes = ModeStateMachine(
            self.config.mode, name=self.name, alerts=self.alerts
        )
        self._contractual_limit_w: float | None = None
        self._last_aggregate_w: float | None = None
        # Telemetry for experiments.
        self.aggregate_series = TimeSeries(f"{device.name}.aggregate")
        self.cap_events = 0
        self.uncap_events = 0
        self.invalid_cycles = 0

    # ------------------------------------------------------------------
    # Parent-controller interface (uniform across the hierarchy)
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Controller name (the protected device's name)."""
        return self.device.name

    @property
    def last_aggregate_power_w(self) -> float | None:
        """Most recent valid power aggregation, or None before the first."""
        return self._last_aggregate_w

    @property
    def contractual_limit_w(self) -> float | None:
        """Limit imposed by the parent controller, if any."""
        return self._contractual_limit_w

    def set_contractual_limit_w(self, limit_w: float) -> None:
        """Parent imposes a (tighter) limit on this subtree."""
        self._contractual_limit_w = float(limit_w)

    def clear_contractual_limit(self) -> None:
        """Parent releases its contractual limit."""
        self._contractual_limit_w = None

    @property
    def effective_limit_w(self) -> float:
        """min(physical limit, contractual limit)."""
        if self._contractual_limit_w is None:
            return self.device.rated_power_w
        return min(self.device.rated_power_w, self._contractual_limit_w)

    def replace_band(self, band_config: ThreeBandConfig) -> None:
        """Install a fresh three-band policy with the given thresholds.

        The paper: "we can configure the capping and uncapping
        thresholds on a per-controller basis enabling customizable
        trade-offs between power-efficiency and performance at different
        levels of the power delivery hierarchy."  Capping state carries
        over so a live controller does not lose track of caps it has in
        force.
        """
        self.band = ThreeBandController(
            band_config, capping_active=self.band.capping_active
        )

    @property
    def last_trace(self) -> TickTrace | None:
        """The most recent tick trace for this controller, if retained."""
        return self.tracer.last_trace(self.name)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable controller state; subclasses extend the dict.

        Covers everything the template mutates: decision-policy
        hysteresis, operating posture, contractual limit, the last
        aggregation and its series, and the event counters.  The shared
        trace ring is captured once at the deployment level, not per
        controller.
        """
        band_state = None
        if hasattr(self.band, "snapshot_state"):
            band_state = self.band.snapshot_state()
        return {
            "band": band_state,
            "modes": self.modes.snapshot_state(),
            "contractual_limit_w": self._contractual_limit_w,
            "last_aggregate_w": self._last_aggregate_w,
            "aggregate_series": self.aggregate_series.snapshot_state(),
            "cap_events": self.cap_events,
            "uncap_events": self.uncap_events,
            "invalid_cycles": self.invalid_cycles,
        }

    def restore_state(self, state: dict) -> None:
        """Restore template-owned state in place; subclasses extend."""
        if state["band"] is not None and hasattr(self.band, "restore_state"):
            self.band.restore_state(state["band"])
        self.modes.restore_state(state["modes"])
        limit = state["contractual_limit_w"]
        self._contractual_limit_w = None if limit is None else float(limit)
        aggregate = state["last_aggregate_w"]
        self._last_aggregate_w = (
            None if aggregate is None else float(aggregate)
        )
        self.aggregate_series.restore_state(state["aggregate_series"])
        self.cap_events = int(state["cap_events"])
        self.uncap_events = int(state["uncap_events"])
        self.invalid_cycles = int(state["invalid_cycles"])

    # ------------------------------------------------------------------
    # The control cycle template
    # ------------------------------------------------------------------

    def tick(self, now_s: float) -> BandAction:
        """One control cycle; returns the action taken."""
        trace = TraceBuilder(time_s=now_s, controller=self.name, kind=self.KIND)
        t0 = time.perf_counter()
        sensed = self.sense(now_s, trace)
        t1 = time.perf_counter()
        trace.sense_duration_s = t1 - t0
        if sensed is None:
            # Invalid cycle: no aggregate, no action — no false positives.
            self.invalid_cycles += 1
            trace.valid = False
            trace.action = BandAction.HOLD.value
            trace.effective_limit_w = self.effective_limit_w
            mode = self.modes.record_invalid_cycle(now_s)
            trace.mode = mode.value
            if mode is OperatingMode.SAFE:
                # Flying blind for too long: cap conservatively at the
                # capping target rather than trusting stale limits.
                self.apply_fail_safe(now_s, trace)
            self.tracer.record(trace.finish())
            return BandAction.HOLD
        previous_mode = self.modes.mode
        if trace.disaggregated:
            # The cycle was carried by the disaggregation estimator:
            # usable but not healthy — enter/hold SENSOR_DEGRADED.
            mode = self.modes.record_degraded_sensing_cycle(now_s)
        else:
            mode = self.modes.record_valid_cycle(now_s)
        trace.mode = mode.value
        if previous_mode is OperatingMode.SAFE and mode is not OperatingMode.SAFE:
            self.release_fail_safe(now_s)
        aggregate = self.aggregate(sensed, now_s, trace)
        self._last_aggregate_w = aggregate
        self.aggregate_series.append(now_s, aggregate)
        t2 = time.perf_counter()
        trace.aggregate_duration_s = t2 - t1
        decision = self.decide(aggregate, trace)
        t3 = time.perf_counter()
        trace.decide_duration_s = t3 - t2
        self.actuate(decision, sensed, now_s, trace)
        trace.actuate_duration_s = time.perf_counter() - t3
        if decision.action is BandAction.CAP:
            self.cap_events += 1
        elif decision.action is BandAction.UNCAP:
            self.uncap_events += 1
        trace.action = decision.action.value
        self.tracer.record(trace.finish())
        return decision.action

    @abc.abstractmethod
    def sense(self, now_s: float, trace: TraceBuilder) -> SenseT | None:
        """Collect this cycle's readings, or None when the cycle is invalid.

        An invalid cycle (too many failed pulls, no child aggregations)
        must raise its own alert; the template accounts it in
        ``invalid_cycles`` and holds.
        """

    @abc.abstractmethod
    def aggregate(
        self, sensed: SenseT, now_s: float, trace: TraceBuilder
    ) -> float:
        """Reduce the readings to one power number for the device."""

    def decide(self, aggregate_w: float, trace: TraceBuilder) -> BandDecision:
        """Run the decision policy against ``min(physical, contractual)``.

        Shared verbatim by every controller level: thresholds switch
        scales by which limit binds (see
        :func:`~repro.core.thresholds.control_thresholds_w`).
        """
        cap_at, target, uncap_at, limit = control_thresholds_w(
            self.band.config, self.device.rated_power_w, self._contractual_limit_w
        )
        if (
            self.modes.mode is not OperatingMode.NORMAL
            and self.band.capping_active
            and aggregate_w < uncap_at
        ):
            # DEGRADED/SENSOR_DEGRADED/SAFE hold last limits: defer the
            # uncap without
            # running the policy, whose hysteresis state must keep the
            # caps accounted for when NORMAL resumes.
            self.modes.record_deferred_uncap()
            decision = BandDecision(
                action=BandAction.HOLD,
                total_power_cut_w=0.0,
                limit_w=limit,
                aggregated_power_w=aggregate_w,
            )
        else:
            decision = self.band.decide_absolute(
                aggregate_w, limit, cap_at, target, uncap_at
            )
        trace.aggregate_w = aggregate_w
        trace.effective_limit_w = limit
        trace.cap_at_w = cap_at
        trace.target_w = target
        trace.uncap_at_w = uncap_at
        trace.cut_requested_w = decision.total_power_cut_w
        return decision

    @abc.abstractmethod
    def actuate(
        self,
        decision: BandDecision,
        sensed: SenseT,
        now_s: float,
        trace: TraceBuilder,
    ) -> None:
        """Carry out the decision (cap fan-out / contractual limits)."""

    # ------------------------------------------------------------------
    # SAFE-posture hooks (overridden where actuation exists)
    # ------------------------------------------------------------------

    def apply_fail_safe(self, now_s: float, trace: TraceBuilder) -> None:
        """Apply a conservative cap at the capping target while SAFE.

        Called on every invalid SAFE tick, so implementations must be
        idempotent.  The default is a no-op for controllers with nothing
        to actuate.
        """

    def release_fail_safe(self, now_s: float) -> None:
        """Withdraw the fail-safe cap on leaving SAFE.

        Implementations must leave any caps the decision policy still
        accounts for in force — only the fail-safe overlay goes.
        """
