"""Control thresholds under physical vs contractual limits.

A controller protecting a device against its *physical* breaker limit
uses the standard three bands (99% / 95% / 90% of the limit).  When a
parent imposes a tighter *contractual* limit, the parent has already
applied its own safety discount — the paper's Section III-D example
expects the child to satisfy ``power <= contractual`` (170 KW), not 95%
of it.  Discounting again compounds margins (0.95 x 0.95 = 0.9025) and
parks the subtree right below the parent's uncapping threshold,
producing cap/uncap flapping.

:func:`control_thresholds_w` therefore switches threshold scales by
which limit binds:

* physical binding — configured fractions of the physical limit;
* contractual binding — act at 99.5% of the contractual limit, target
  98% of it, release at 92% of it.
"""

from __future__ import annotations

from repro.config import ThreeBandConfig

#: Threshold fractions applied to a binding contractual limit.
#:
#: Flap-freedom condition: a parent/child pair is oscillation-free when
#: ``uncapping_threshold < CONTRACTUAL_TARGET * capping_target`` for the
#: parent's config — the child then settles above the parent's release
#: band.  The paper defaults satisfy it with margin
#: (0.90 < 0.98 * 0.95 = 0.931).
CONTRACTUAL_CAP_AT = 0.995
CONTRACTUAL_TARGET = 0.98
CONTRACTUAL_UNCAP = 0.92


def control_thresholds_w(
    config: ThreeBandConfig,
    physical_limit_w: float,
    contractual_limit_w: float | None,
) -> tuple[float, float, float, float]:
    """(cap_at, target, uncap_at, effective_limit) in watts."""
    physical_cap_at = physical_limit_w * config.capping_threshold
    if (
        contractual_limit_w is None
        or contractual_limit_w >= physical_cap_at
    ):
        return (
            physical_cap_at,
            physical_limit_w * config.capping_target,
            physical_limit_w * config.uncapping_threshold,
            physical_limit_w,
        )
    return (
        contractual_limit_w * CONTRACTUAL_CAP_AT,
        contractual_limit_w * CONTRACTUAL_TARGET,
        contractual_limit_w * CONTRACTUAL_UNCAP,
        min(physical_limit_w, contractual_limit_w),
    )
