"""High-bucket-first power-cut allocation (Section III-C3).

Analogous to tax brackets: servers are grouped into power buckets (20 W
wide by default) by their current consumption, and the total-power-cut is
drained from the highest bucket first — punishing the servers consuming
the most (likely regressions or runaway software).  If the highest bucket
cannot absorb the whole cut, the next bucket joins, and so on, until
either the cut is satisfied or every server has hit its SLA floor.
Within the included set, servers take an even share of the cut (clamped
per server by its own headroom — the classic water-filling refinement the
even-share rule implies).

Figure 16's snapshot is exactly this allocator's output: all web/feed
servers above the 210 W bucket boundary received cuts, with caps floored
at 210 W.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AllocationInput:
    """One server's state as seen by the allocator."""

    server_id: str
    power_w: float
    min_cap_w: float


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation run."""

    cuts_w: dict[str, float]
    unallocated_w: float

    @property
    def total_cut_w(self) -> float:
        """Sum of the allocated per-server cuts."""
        return sum(self.cuts_w.values())


def _distribute_evenly(
    headrooms: dict[str, float], amount: float
) -> dict[str, float]:
    """Water-fill ``amount`` evenly across servers bounded by headrooms."""
    cuts = {server_id: 0.0 for server_id in headrooms}
    active = {s: h for s, h in headrooms.items() if h > 0.0}
    remaining = amount
    while remaining > 1e-9 and active:
        share = remaining / len(active)
        exhausted: list[str] = []
        for server_id, headroom in active.items():
            take = min(share, headroom)
            cuts[server_id] += take
            remaining -= take
            new_headroom = headroom - take
            if new_headroom <= 1e-12:
                exhausted.append(server_id)
            else:
                active[server_id] = new_headroom
        for server_id in exhausted:
            del active[server_id]
        if not exhausted and remaining > 1e-9:
            # Everyone still has headroom: one more equal pass clears it.
            continue
    return cuts


def allocate_high_bucket_first(
    servers: list[AllocationInput],
    total_cut_w: float,
    *,
    bucket_width_w: float = 20.0,
) -> AllocationResult:
    """Allocate ``total_cut_w`` across ``servers`` high-bucket-first.

    Buckets descend from the highest occupied one; at each stage every
    server in an included bucket may be cut down to the lower edge of the
    lowest included bucket (never below its own ``min_cap_w``).  The cut
    at each stage is distributed evenly (water-filled) across included
    servers.

    Returns per-server cuts and any remainder that SLA floors made
    impossible to allocate.
    """
    if total_cut_w < 0:
        raise ConfigurationError("total cut cannot be negative")
    if bucket_width_w <= 0:
        raise ConfigurationError("bucket width must be positive")
    cuts: dict[str, float] = {s.server_id: 0.0 for s in servers}
    if total_cut_w == 0.0 or not servers:
        return AllocationResult(cuts_w=cuts, unallocated_w=total_cut_w)

    by_id = {s.server_id: s for s in servers}
    buckets: dict[int, list[str]] = {}
    for s in servers:
        buckets.setdefault(int(math.floor(s.power_w / bucket_width_w)), []).append(
            s.server_id
        )

    remaining = total_cut_w
    included: list[str] = []
    for bucket_index in sorted(buckets, reverse=True):
        included.extend(buckets[bucket_index])
        floor_w = bucket_index * bucket_width_w
        headrooms: dict[str, float] = {}
        for server_id in included:
            s = by_id[server_id]
            lower_bound = max(floor_w, s.min_cap_w)
            current = s.power_w - cuts[server_id]
            headrooms[server_id] = max(0.0, current - lower_bound)
        capacity = sum(headrooms.values())
        if capacity <= 0.0:
            continue
        stage_cut = min(remaining, capacity)
        stage_cuts = _distribute_evenly(headrooms, stage_cut)
        for server_id, cut in stage_cuts.items():
            cuts[server_id] += cut
        remaining -= sum(stage_cuts.values())
        if remaining <= 1e-9:
            remaining = 0.0
            break

    # Whatever buckets could not satisfy, SLA floors may still allow: a
    # final pass cuts everyone toward their floor evenly.
    if remaining > 1e-9:
        headrooms = {
            s.server_id: max(0.0, s.power_w - cuts[s.server_id] - s.min_cap_w)
            for s in servers
        }
        final_cuts = _distribute_evenly(headrooms, remaining)
        for server_id, cut in final_cuts.items():
            cuts[server_id] += cut
        remaining -= sum(final_cuts.values())
        remaining = max(0.0, remaining)

    return AllocationResult(cuts_w=cuts, unallocated_w=remaining)
