"""Breaker-reading validation and dynamic estimator recalibration.

Section VI, "Use accurate estimation for missing power information":
breaker power readings are too coarse (minute-grained) for control, but
Dynamo uses them to *validate* the server-side aggregation and to
*dynamically tune* the power estimators when the two drift apart.

:class:`BreakerValidator` periodically compares a leaf controller's
aggregate against the (downsampled, delayed) breaker-side reading.
Persistent drift beyond tolerance triggers either an alert (sensor
aggregation — something is wrong) or a recalibration of the servers'
estimation models (estimated aggregation — tune the models).
"""

from __future__ import annotations

from repro.core.leaf_controller import LeafPowerController
from repro.errors import ConfigurationError
from repro.power.device import PowerDevice
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess
from repro.telemetry.alerts import AlertSink, Severity
from repro.telemetry.timeseries import TimeSeries


class BreakerReadingSource:
    """Minute-grained breaker-side power readings with reporting delay.

    Real breaker telemetry updates on the order of minutes; we sample
    the device's true power on that coarse interval and serve the most
    recent *completed* sample, like the real feed would.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        device: PowerDevice,
        *,
        interval_s: float = 60.0,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("breaker reading interval must be positive")
        self.device = device
        self.series = TimeSeries(f"{device.name}.breaker")
        self._process = PeriodicProcess(
            engine,
            interval_s,
            self._sample,
            label=f"breaker-reading.{device.name}",
            priority=4,
        )

    def start(self, phase: float = 0.0) -> None:
        """Begin sampling."""
        self._process.start(phase)

    def stop(self) -> None:
        """Stop sampling."""
        self._process.stop()

    def _sample(self, now_s: float) -> None:
        self.series.append(now_s, self.device.power_w())

    def latest_reading_w(self) -> float | None:
        """Most recent completed breaker reading, or None if none yet."""
        if len(self.series) == 0:
            return None
        return self.series.latest()[1]


class BreakerValidator:
    """Cross-checks aggregates against breaker readings, recalibrating.

    On each validation tick:

    * drift within tolerance — nothing to do;
    * drift beyond tolerance — count a strike; after
      ``strikes_before_action`` consecutive strikes, either recalibrate
      the fleet's estimators toward the breaker reading (when enabled)
      or raise a WARNING alert for humans.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        controller: LeafPowerController,
        source: BreakerReadingSource,
        *,
        interval_s: float = 120.0,
        tolerance_fraction: float = 0.08,
        strikes_before_action: int = 2,
        recalibrate: bool = True,
        servers: dict | None = None,
        alerts: AlertSink | None = None,
    ) -> None:
        if not 0.0 < tolerance_fraction < 1.0:
            raise ConfigurationError("tolerance must be in (0, 1)")
        self._controller = controller
        self._source = source
        self._tolerance = tolerance_fraction
        self._strike_limit = max(1, strikes_before_action)
        self._recalibrate = recalibrate
        self._servers = servers or {}
        self.alerts = alerts or controller.alerts
        self._strikes = 0
        self.recalibrations = 0
        self.validations = 0
        self._process = PeriodicProcess(
            engine,
            interval_s,
            self._tick,
            label=f"breaker-validator.{controller.name}",
            priority=25,
        )

    def start(self, phase: float = 0.0) -> None:
        """Begin validating."""
        self._process.start(phase)

    def stop(self) -> None:
        """Stop validating."""
        self._process.stop()

    def _tick(self, now_s: float) -> None:
        aggregate = self._controller.last_aggregate_power_w
        breaker = self._source.latest_reading_w()
        if aggregate is None or breaker is None or breaker <= 0.0:
            return
        self.validations += 1
        drift = (aggregate - breaker) / breaker
        if abs(drift) <= self._tolerance:
            self._strikes = 0
            return
        self._strikes += 1
        if self._strikes < self._strike_limit:
            return
        self._strikes = 0
        if self._recalibrate and self._servers:
            self._apply_recalibration(breaker / aggregate)
            self.recalibrations += 1
            self.alerts.raise_alert(
                now_s,
                Severity.INFO,
                self._controller.name,
                f"estimators recalibrated by {breaker / aggregate:.3f} "
                f"after {100 * drift:+.1f}% drift from breaker reading",
            )
        else:
            self.alerts.raise_alert(
                now_s,
                Severity.WARNING,
                self._controller.name,
                f"aggregate drifts {100 * drift:+.1f}% from breaker "
                "reading; check sensors",
            )

    def _apply_recalibration(self, scale: float) -> None:
        # Clamp per-pass adjustment: breaker feeds are coarse and noisy,
        # so tune gently; repeated passes converge.
        scale = min(1.25, max(0.75, scale))
        for server in self._servers.values():
            server.estimator = server.estimator.recalibrate(scale)
