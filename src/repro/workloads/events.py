"""Traffic events: load tests, surges, and site-outage recovery traces.

These are :class:`~repro.workloads.base.WorkloadModifier` implementations
that replay the stimulus shapes behind the paper's production case
studies:

* Figure 11 — a production load test shifts extra traffic to a front-end
  cluster, ramping power into the capping threshold of its PDU breaker.
* Figure 12 — an unplanned site outage drops load sharply, oscillates
  through failed recovery attempts, then surges to ~1.3x the normal peak
  as traffic floods back and servers restart simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LoadTestEvent:
    """Extra traffic ramped in and out over a window (Figure 11).

    Utilization gains ``magnitude`` (additively) between ``start_s`` and
    ``end_s`` with linear ramps of ``ramp_s`` at each edge.
    """

    start_s: float
    end_s: float
    magnitude: float
    ramp_s: float = 120.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError("load test must end after it starts")
        if self.ramp_s < 0:
            raise ConfigurationError("ramp must be non-negative")

    def apply(self, now_s: float, utilization: float) -> float:
        """Add the ramped extra demand."""
        return utilization + self.magnitude * self._envelope(now_s)

    def _envelope(self, now_s: float) -> float:
        if now_s <= self.start_s or now_s >= self.end_s:
            return 0.0
        if self.ramp_s > 0.0 and now_s < self.start_s + self.ramp_s:
            return (now_s - self.start_s) / self.ramp_s
        if self.ramp_s > 0.0 and now_s > self.end_s - self.ramp_s:
            return (self.end_s - now_s) / self.ramp_s
        return 1.0


@dataclass(frozen=True)
class TrafficSurgeEvent:
    """A multiplicative traffic surge (e.g. a special event or disaster).

    Between ``start_s`` and ``end_s`` demand is multiplied by
    ``multiplier`` (>1 surges, <1 sheds load), with linear ramps.
    """

    start_s: float
    end_s: float
    multiplier: float
    ramp_s: float = 60.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError("surge must end after it starts")
        if self.multiplier < 0:
            raise ConfigurationError("multiplier cannot be negative")

    def apply(self, now_s: float, utilization: float) -> float:
        """Scale demand by the ramped multiplier."""
        envelope = self._envelope(now_s)
        factor = 1.0 + (self.multiplier - 1.0) * envelope
        return utilization * factor

    def _envelope(self, now_s: float) -> float:
        if now_s <= self.start_s or now_s >= self.end_s:
            return 0.0
        if self.ramp_s > 0.0 and now_s < self.start_s + self.ramp_s:
            return (now_s - self.start_s) / self.ramp_s
        if self.ramp_s > 0.0 and now_s > self.end_s - self.ramp_s:
            return (self.end_s - now_s) / self.ramp_s
        return 1.0


class SiteOutageRecoveryEvent:
    """The Figure 12 trace: outage drop, failed recoveries, recovery surge.

    Phases (all times relative to ``outage_start_s``):

    1. **Drop** — load falls to ``outage_floor`` over ``drop_duration_s``.
    2. **Oscillation** — two partial recovery attempts bounce load between
       the floor and roughly half of normal.
    3. **Surge** — successful recovery floods traffic back, overshooting
       to ``surge_multiplier`` (the paper's SB hit ~1.3x its normal daily
       peak) before decaying to normal over ``surge_decay_s``.
    """

    def __init__(
        self,
        outage_start_s: float,
        *,
        drop_duration_s: float = 600.0,
        outage_floor: float = 0.30,
        oscillation_duration_s: float = 1800.0,
        surge_multiplier: float = 1.35,
        surge_duration_s: float = 1800.0,
        surge_decay_s: float = 2400.0,
    ) -> None:
        if surge_multiplier <= 1.0:
            raise ConfigurationError("recovery surge must exceed normal load")
        if not 0.0 <= outage_floor < 1.0:
            raise ConfigurationError("outage floor must be in [0, 1)")
        self.outage_start_s = outage_start_s
        self.drop_duration_s = drop_duration_s
        self.outage_floor = outage_floor
        self.oscillation_duration_s = oscillation_duration_s
        self.surge_multiplier = surge_multiplier
        self.surge_duration_s = surge_duration_s
        self.surge_decay_s = surge_decay_s

    # Phase boundary helpers -------------------------------------------------

    @property
    def oscillation_start_s(self) -> float:
        """When the failed recovery attempts begin."""
        return self.outage_start_s + self.drop_duration_s

    @property
    def surge_start_s(self) -> float:
        """When the successful recovery surge begins."""
        return self.oscillation_start_s + self.oscillation_duration_s

    @property
    def surge_end_s(self) -> float:
        """When the surge plateau ends and decay begins."""
        return self.surge_start_s + self.surge_duration_s

    @property
    def end_s(self) -> float:
        """When load has returned to normal."""
        return self.surge_end_s + self.surge_decay_s

    def multiplier(self, now_s: float) -> float:
        """Demand multiplier relative to normal at ``now_s``."""
        t = now_s - self.outage_start_s
        if t <= 0:
            return 1.0
        if t < self.drop_duration_s:
            frac = t / self.drop_duration_s
            return 1.0 + (self.outage_floor - 1.0) * frac
        t -= self.drop_duration_s
        if t < self.oscillation_duration_s:
            # Two triangular partial-recovery bounces between the floor
            # and ~55% of normal.
            period = self.oscillation_duration_s / 2.0
            phase = (t % period) / period
            bounce = 1.0 - abs(2.0 * phase - 1.0)  # 0 -> 1 -> 0
            return self.outage_floor + (0.55 - self.outage_floor) * bounce
        t -= self.oscillation_duration_s
        if t < self.surge_duration_s:
            ramp = min(1.0, t / 300.0)
            return (
                self.outage_floor
                + (self.surge_multiplier - self.outage_floor) * ramp
            )
        t -= self.surge_duration_s
        if t < self.surge_decay_s:
            frac = t / self.surge_decay_s
            return self.surge_multiplier + (1.0 - self.surge_multiplier) * frac
        return 1.0

    def apply(self, now_s: float, utilization: float) -> float:
        """WorkloadModifier interface: scale demand by the trace."""
        return utilization * self.multiplier(now_s)


@dataclass(frozen=True)
class DeferModifier:
    """A utilization ceiling the economic governor clamps batch work to.

    Unlike the traffic events above this is not a stimulus but an
    *actuation*: while attached, the workload's demand cannot exceed
    ``ceiling``, deferring the clipped work to whenever the governor
    detaches the modifier (a cheaper/cleaner hour).  Equality-by-value
    (frozen dataclass) is load-bearing: the governor removes the
    modifier with a freshly built equal instance, the same way chaos
    fault recovery does.
    """

    ceiling: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ceiling <= 1.0:
            raise ConfigurationError("defer ceiling must be in (0, 1]")

    def apply(self, now_s: float, utilization: float) -> float:
        """Clamp demand to the ceiling."""
        return min(utilization, self.ceiling)


# ---------------------------------------------------------------------------
# Snapshot codec
# ---------------------------------------------------------------------------
#
# Workload modifiers are pure functions of their constructor parameters,
# so snapshots serialize them by value and rebuild equal instances on
# restore.  Equality-by-value matters: a chaos fault's ``recover`` calls
# ``remove_modifier`` with its own (reconstructed) instance and relies on
# dataclass equality to find the one attached to the workload.


def encode_modifier(modifier: object) -> dict:
    """Serialize a known workload modifier to a tagged dict.

    Raises:
        ConfigurationError: for a modifier type the codec does not know —
            a snapshot must never silently drop stimulus.
    """
    if isinstance(modifier, LoadTestEvent):
        return {
            "type": "load_test",
            "start_s": modifier.start_s,
            "end_s": modifier.end_s,
            "magnitude": modifier.magnitude,
            "ramp_s": modifier.ramp_s,
        }
    if isinstance(modifier, TrafficSurgeEvent):
        return {
            "type": "traffic_surge",
            "start_s": modifier.start_s,
            "end_s": modifier.end_s,
            "multiplier": modifier.multiplier,
            "ramp_s": modifier.ramp_s,
        }
    if isinstance(modifier, SiteOutageRecoveryEvent):
        return {
            "type": "site_outage_recovery",
            "outage_start_s": modifier.outage_start_s,
            "drop_duration_s": modifier.drop_duration_s,
            "outage_floor": modifier.outage_floor,
            "oscillation_duration_s": modifier.oscillation_duration_s,
            "surge_multiplier": modifier.surge_multiplier,
            "surge_duration_s": modifier.surge_duration_s,
            "surge_decay_s": modifier.surge_decay_s,
        }
    if isinstance(modifier, DeferModifier):
        return {"type": "defer", "ceiling": modifier.ceiling}
    raise ConfigurationError(
        f"cannot serialize workload modifier {type(modifier).__name__}"
    )


def decode_modifier(state: dict) -> object:
    """Rebuild a workload modifier from :func:`encode_modifier` output."""
    kind = state["type"]
    if kind == "load_test":
        return LoadTestEvent(
            start_s=state["start_s"],
            end_s=state["end_s"],
            magnitude=state["magnitude"],
            ramp_s=state["ramp_s"],
        )
    if kind == "traffic_surge":
        return TrafficSurgeEvent(
            start_s=state["start_s"],
            end_s=state["end_s"],
            multiplier=state["multiplier"],
            ramp_s=state["ramp_s"],
        )
    if kind == "site_outage_recovery":
        return SiteOutageRecoveryEvent(
            state["outage_start_s"],
            drop_duration_s=state["drop_duration_s"],
            outage_floor=state["outage_floor"],
            oscillation_duration_s=state["oscillation_duration_s"],
            surge_multiplier=state["surge_multiplier"],
            surge_duration_s=state["surge_duration_s"],
            surge_decay_s=state["surge_decay_s"],
        )
    if kind == "defer":
        return DeferModifier(ceiling=state["ceiling"])
    raise ConfigurationError(f"unknown workload modifier type {kind!r}")
