"""Workload building blocks: noise processes and the stochastic base class.

A workload's job is to answer ``utilization(now_s) -> [0, 1]``.  The
stochastic pieces are sampled lazily and *monotonically*: simulation
components only ever ask about the present, so each noise process advances
its internal state from the last query time to the new one.  Queries at
the same instant return the cached value, keeping workloads safe to share
between a server and a telemetry sampler.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.simulation.soa import ArraySlot, array_backed


class WorkloadModifier(Protocol):
    """Transforms a workload's base utilization (surges, load tests)."""

    def apply(self, now_s: float, utilization: float) -> float:
        """Return the modified utilization at ``now_s``."""
        ...


class OrnsteinUhlenbeckNoise:
    """Mean-reverting Gaussian noise, sampled lazily in time order.

    The OU process is the standard model for load fluctuation around a
    trend: excursions decay with time constant ``tau_s`` and the
    stationary standard deviation is ``sigma``.
    """

    _soa: ArraySlot | None = None
    _value = array_backed("ou_value")
    _last_time = array_backed("ou_last", kind="nan_none")

    def __init__(
        self,
        sigma: float,
        tau_s: float,
        rng: np.random.Generator,
        *,
        initial: float = 0.0,
    ) -> None:
        if sigma < 0:
            raise ConfigurationError("sigma cannot be negative")
        if tau_s <= 0:
            raise ConfigurationError("tau must be positive")
        self._sigma = sigma
        self._tau_s = tau_s
        self._rng = rng
        self._value = float(initial)
        self._last_time: float | None = None

    def sample(self, now_s: float) -> float:
        """The noise value at ``now_s`` (monotone queries only)."""
        if self._last_time is None:
            self._last_time = now_s
            return self._value
        dt = now_s - self._last_time
        if dt < 0:
            # Tolerate tiny backwards queries (same-tick reorderings) by
            # returning the cached value; large rewinds are a caller bug.
            return self._value
        if dt > 0:
            decay = math.exp(-dt / self._tau_s)
            diffusion = self._sigma * math.sqrt(max(0.0, 1.0 - decay * decay))
            self._value = self._value * decay + diffusion * self._rng.normal()
            self._last_time = now_s
        return self._value

    def snapshot_state(self) -> dict:
        """Serializable process state (the generator is captured by its
        owning :class:`~repro.simulation.rng.RngStreams` / sensor)."""
        return {"value": self._value, "last_time": self._last_time}

    def restore_state(self, state: dict) -> None:
        """Restore the OU excursion and query clock in place."""
        self._value = float(state["value"])
        last = state["last_time"]
        self._last_time = None if last is None else float(last)


class PoissonBursts:
    """Occasional rectangular bursts with exponential inter-arrival times.

    Models compaction runs, query storms, and similar episodic demand.
    Burst arrivals, magnitudes, and durations are pre-drawn lazily so the
    process stays deterministic for a given generator.
    """

    _soa: ArraySlot | None = None
    _next_start = array_backed("burst_next", kind="nan_none")
    _active_until = array_backed("burst_until")
    _active_magnitude = array_backed("burst_mag")

    def __init__(
        self,
        rate_per_s: float,
        magnitude: float,
        duration_s: float,
        rng: np.random.Generator,
        *,
        magnitude_jitter: float = 0.25,
    ) -> None:
        if rate_per_s < 0:
            raise ConfigurationError("burst rate cannot be negative")
        if duration_s <= 0:
            raise ConfigurationError("burst duration must be positive")
        self._rate = rate_per_s
        self._magnitude = magnitude
        self._duration_s = duration_s
        self._jitter = magnitude_jitter
        self._rng = rng
        self._next_start: float | None = None
        self._active_until = -math.inf
        self._active_magnitude = 0.0

    def sample(self, now_s: float) -> float:
        """Burst contribution at ``now_s`` (monotone queries only)."""
        if self._rate == 0.0:
            return 0.0
        if self._next_start is None:
            self._next_start = now_s + self._rng.exponential(1.0 / self._rate)
        while now_s >= self._next_start:
            self._active_until = self._next_start + self._duration_s
            jitter = 1.0 + self._jitter * self._rng.standard_normal()
            self._active_magnitude = max(0.0, self._magnitude * jitter)
            self._next_start += self._rng.exponential(1.0 / self._rate)
        if now_s < self._active_until:
            return self._active_magnitude
        return 0.0

    def snapshot_state(self) -> dict:
        """Serializable burst schedule state (``-inf`` maps to None)."""
        return {
            "next_start": self._next_start,
            "active_until": (
                None if self._active_until == -math.inf else self._active_until
            ),
            "active_magnitude": self._active_magnitude,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the pre-drawn burst schedule in place."""
        nxt = state["next_start"]
        self._next_start = None if nxt is None else float(nxt)
        until = state["active_until"]
        self._active_until = -math.inf if until is None else float(until)
        self._active_magnitude = float(state["active_magnitude"])


class StochasticWorkload:
    """Base class for the six service workload models.

    Utilization = clamp(base(now) + noise(now) + bursts(now)), then passed
    through any registered modifiers (load tests, outage traces).
    Subclasses provide ``base_utilization`` and configure the stochastic
    terms through the constructor.
    """

    #: Set by the vectorized backend: called with no arguments whenever
    #: the modifier list changes, so the stepper can move this workload
    #: between its vector lane and the scalar modifier post-pass.
    _modifier_hook: Callable[[], None] | None = None

    def __init__(
        self,
        service: str,
        rng: np.random.Generator,
        *,
        noise_sigma: float = 0.0,
        noise_tau_s: float = 60.0,
        burst_rate_per_s: float = 0.0,
        burst_magnitude: float = 0.0,
        burst_duration_s: float = 30.0,
    ) -> None:
        self.service = service
        self._noise = OrnsteinUhlenbeckNoise(noise_sigma, noise_tau_s, rng)
        self._bursts = PoissonBursts(
            burst_rate_per_s, burst_magnitude, burst_duration_s, rng
        )
        self._modifiers: list[WorkloadModifier] = []

    def base_utilization(self, now_s: float) -> float:
        """Deterministic trend component; subclasses override."""
        raise NotImplementedError

    def add_modifier(self, modifier: WorkloadModifier) -> None:
        """Attach a traffic event (load test, surge, outage trace)."""
        self._modifiers.append(modifier)
        if self._modifier_hook is not None:
            self._modifier_hook()

    def remove_modifier(self, modifier: WorkloadModifier) -> None:
        """Detach a previously added modifier."""
        self._modifiers.remove(modifier)
        if self._modifier_hook is not None:
            self._modifier_hook()

    def utilization(self, now_s: float) -> float:
        """Demanded CPU utilization in [0, 1] at ``now_s``."""
        value = self.base_utilization(now_s)
        value += self._noise.sample(now_s)
        value += self._bursts.sample(now_s)
        for modifier in self._modifiers:
            value = modifier.apply(now_s, value)
        return min(1.0, max(0.0, value))

    def extra_state(self) -> dict:
        """Subclass-specific mutable state beyond noise/bursts.

        Subclasses whose ``base_utilization`` carries lazily-advanced
        state (e.g. hadoop's job phases) override this pair so snapshots
        capture it.  The default is empty, and an empty dict is omitted
        from the snapshot entirely — workloads without extra state keep
        the exact historical snapshot shape.
        """
        return {}

    def restore_extra_state(self, state: dict) -> None:
        """Restore :meth:`extra_state` output in place."""

    def snapshot_state(self) -> dict:
        """Serializable workload phase: noise, bursts, and modifiers.

        Modifiers are serialized by value through the codec in
        :mod:`repro.workloads.events`; an unknown modifier type raises so
        a snapshot never silently drops part of the workload stimulus.
        """
        from repro.workloads.events import encode_modifier

        state = {
            "noise": self._noise.snapshot_state(),
            "bursts": self._bursts.snapshot_state(),
            "modifiers": [encode_modifier(m) for m in self._modifiers],
        }
        extra = self.extra_state()
        if extra:
            state["extra"] = extra
        return state

    def restore_state(self, state: dict) -> None:
        """Restore workload phase in place, rebuilding modifiers by value."""
        from repro.workloads.events import decode_modifier

        self._noise.restore_state(state["noise"])
        self._bursts.restore_state(state["bursts"])
        self._modifiers = [decode_modifier(m) for m in state["modifiers"]]
        self.restore_extra_state(state.get("extra", {}))
        if self._modifier_hook is not None:
            self._modifier_hook()
