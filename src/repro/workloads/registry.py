"""Service registry: priority groups, SLA floors, and workload factory.

Section III-C3: Facebook services are categorized into a predefined set of
priority groups, where higher priority means capping hurts more.  Cache
servers sit above web and news feed servers because a few capped cache
machines affect many users.  Each priority group carries an SLA expressed
as the lowest allowable power cap.

Priority numbering here: **larger number = higher priority = capped
later**.  The leaf controller caps priority group 0 first, then 1, and so
on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import StochasticWorkload
from repro.workloads.cache import CacheWorkload
from repro.workloads.database import DatabaseWorkload
from repro.workloads.hadoop import HadoopWorkload
from repro.workloads.newsfeed import NewsfeedWorkload
from repro.workloads.storage import StorageWorkload
from repro.workloads.web import WebWorkload


@dataclass(frozen=True)
class ServiceSpec:
    """Operational description of one service."""

    name: str
    priority_group: int
    sla_min_cap_w: float
    description: str = ""


# Priority groups (capped lowest-group-first):
#   0 — batch and maintenance work (hadoop, storage): cap freely.
#   1 — user-facing stateless tiers (web, newsfeed): cap when needed;
#       load balancers route around capped machines.
#   2 — databases: capping risks replication lag.
#   3 — cache: a small number of capped cache servers affects a large
#       number of users (paper's example of a high-priority group).
SERVICE_SPECS: dict[str, ServiceSpec] = {
    "hadoop": ServiceSpec(
        "hadoop", 0, sla_min_cap_w=120.0, description="map-reduce batch"
    ),
    "f4storage": ServiceSpec(
        "f4storage", 0, sla_min_cap_w=110.0, description="warm BLOB storage"
    ),
    "web": ServiceSpec(
        "web", 1, sla_min_cap_w=150.0, description="front-end web tier"
    ),
    "newsfeed": ServiceSpec(
        "newsfeed", 1, sla_min_cap_w=150.0, description="feed aggregation"
    ),
    "database": ServiceSpec(
        "database", 2, sla_min_cap_w=170.0, description="MySQL shards"
    ),
    "cache": ServiceSpec(
        "cache", 3, sla_min_cap_w=190.0, description="TAO caching tier"
    ),
}


def service_spec(name: str) -> ServiceSpec:
    """Look up a service spec by name."""
    try:
        return SERVICE_SPECS[name]
    except KeyError:
        raise ConfigurationError(f"unknown service {name!r}") from None


_WORKLOAD_CLASSES: dict[str, type[StochasticWorkload]] = {
    "web": WebWorkload,
    "cache": CacheWorkload,
    "hadoop": HadoopWorkload,
    "database": DatabaseWorkload,
    "newsfeed": NewsfeedWorkload,
    "f4storage": StorageWorkload,
}


def make_workload(service: str, rng: np.random.Generator) -> StochasticWorkload:
    """Instantiate the workload model for ``service``."""
    try:
        cls = _WORKLOAD_CLASSES[service]
    except KeyError:
        raise ConfigurationError(f"unknown service {service!r}") from None
    return cls(rng)


def all_service_names() -> list[str]:
    """Names of every modelled service, in priority order (lowest first)."""
    return sorted(
        SERVICE_SPECS, key=lambda n: (SERVICE_SPECS[n].priority_group, n)
    )
