"""News feed ranking/aggregation workload.

Feed servers fan out per-request ranking work whose cost varies wildly
with the request (story mix, ranking model paths), making them the most
variable service in Figure 6: p50 variation 42.4% and p99 78.1% in 60 s
windows.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import StochasticWorkload
from repro.workloads.diurnal import DiurnalShape


class NewsfeedWorkload(StochasticWorkload):
    """Diurnal trend with very large, fast fluctuations."""

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        shape: DiurnalShape | None = None,
    ) -> None:
        # Calibrated to Figure 6's newsfeed variation (p50 ~42%, p99 ~78%):
        # the highest-median service, tail second only to f4 storage.
        super().__init__(
            "newsfeed",
            rng,
            noise_sigma=0.115,
            noise_tau_s=20.0,
            burst_rate_per_s=1.0 / 600.0,
            burst_magnitude=0.12,
            burst_duration_s=30.0,
        )
        self._shape = shape or DiurnalShape(trough=0.30, peak=0.65)

    def base_utilization(self, now_s: float) -> float:
        """Diurnal trend."""
        return self._shape.value(now_s)
