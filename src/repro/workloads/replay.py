"""Trace replay: drive servers from recorded utilization traces.

The paper's characterization is built on recorded fleet telemetry; a
user adopting this library will often have their own utilization traces
(from collectd, Prometheus, etc.).  :class:`TraceWorkload` replays a
recorded (time, utilization) series — with optional linear interpolation
and looping — through the standard workload interface, so real traces
drop into any scenario, controller test, or characterization run.
"""

from __future__ import annotations

import bisect

from repro.errors import ConfigurationError
from repro.telemetry.timeseries import TimeSeries
from repro.workloads.base import WorkloadModifier


class TraceWorkload:
    """Replays a utilization trace as a workload.

    Args:
        trace: (time, utilization) samples; utilizations in [0, 1].
        service: service label for priority lookups.
        interpolate: linear interpolation between samples (True) or
            step-hold of the previous sample (False).
        loop: wrap simulation time around the trace length so short
            traces drive long simulations.
    """

    def __init__(
        self,
        trace: TimeSeries,
        *,
        service: str = "replay",
        interpolate: bool = True,
        loop: bool = False,
    ) -> None:
        if len(trace) == 0:
            raise ConfigurationError("trace must contain samples")
        values = trace.values
        if values.min() < 0.0 or values.max() > 1.0:
            raise ConfigurationError("trace utilizations must be in [0, 1]")
        self.service = service
        self._times = trace.times
        self._values = values
        self._interpolate = interpolate
        self._loop = loop
        self._span = float(self._times[-1] - self._times[0])
        self._modifiers: list[WorkloadModifier] = []

    def add_modifier(self, modifier: WorkloadModifier) -> None:
        """Attach a traffic event on top of the replayed trace."""
        self._modifiers.append(modifier)

    def utilization(self, now_s: float) -> float:
        """Replayed utilization at ``now_s``."""
        t = self._map_time(now_s)
        value = self._value_at(t)
        for modifier in self._modifiers:
            value = modifier.apply(now_s, value)
        return min(1.0, max(0.0, value))

    def _map_time(self, now_s: float) -> float:
        start = float(self._times[0])
        if self._loop and self._span > 0.0:
            return start + (now_s - start) % self._span
        return now_s

    def _value_at(self, t: float) -> float:
        times, values = self._times, self._values
        if t <= times[0]:
            return float(values[0])
        if t >= times[-1]:
            return float(values[-1])
        hi = bisect.bisect_right(times, t)
        lo = hi - 1
        if not self._interpolate or times[hi] == times[lo]:
            return float(values[lo])
        frac = (t - times[lo]) / (times[hi] - times[lo])
        return float(values[lo] + (values[hi] - values[lo]) * frac)


def record_workload(
    workload, duration_s: float, *, interval_s: float = 3.0
) -> TimeSeries:
    """Sample any workload into a trace (for later replay or export)."""
    if interval_s <= 0 or duration_s <= 0:
        raise ConfigurationError("duration and interval must be positive")
    trace = TimeSeries(getattr(workload, "service", "trace"))
    t = 0.0
    while t <= duration_s:
        trace.append(t, workload.utilization(t))
        t += interval_s
    return trace
