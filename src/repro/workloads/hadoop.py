"""Hadoop map-reduce workload.

Hadoop servers run batch jobs: long phases of sustained high CPU (map,
reduce) separated by shuffle/IO lulls, independent of the diurnal cycle.
Figure 6 measures moderate variation (p50 11.1%, p99 30.8% in 60 s) —
within a phase power is steady, across phase boundaries it steps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.simulation.soa import ArraySlot, array_backed
from repro.workloads.base import StochasticWorkload


class HadoopWorkload(StochasticWorkload):
    """Alternating compute/IO job phases with small in-phase noise.

    Phase levels and durations are drawn per server so a cluster's phase
    boundaries decorrelate, as they do in production where job assignment
    staggers tasks across machines.
    """

    _soa: ArraySlot | None = None
    _phase_is_compute = array_backed("hadoop_compute", kind="bool")
    _phase_end_s = array_backed("hadoop_end")

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        compute_level: float = 0.72,
        io_level: float = 0.50,
        mean_phase_s: float = 300.0,
    ) -> None:
        if mean_phase_s <= 0:
            raise ConfigurationError("mean phase duration must be positive")
        # Phase contrast and noise calibrated to Figure 6's hadoop
        # variation (p50 ~11%, p99 ~31%).
        super().__init__(
            "hadoop",
            rng,
            noise_sigma=0.055,
            noise_tau_s=45.0,
        )
        self._rng = rng
        self._compute_level = compute_level
        self._io_level = io_level
        self._mean_phase_s = mean_phase_s
        self._phase_is_compute = bool(rng.integers(0, 2))
        self._phase_end_s = float(rng.exponential(mean_phase_s))

    def base_utilization(self, now_s: float) -> float:
        """Current phase level, advancing phases lazily in time order."""
        while now_s >= self._phase_end_s:
            self._phase_is_compute = not self._phase_is_compute
            self._phase_end_s += float(self._rng.exponential(self._mean_phase_s))
        if self._phase_is_compute:
            return self._compute_level
        return self._io_level

    def extra_state(self) -> dict:
        """Lazily-advanced job-phase state (see the base-class hook)."""
        return {
            "phase_is_compute": bool(self._phase_is_compute),
            "phase_end_s": float(self._phase_end_s),
        }

    def restore_extra_state(self, state: dict) -> None:
        """Restore job-phase state; without it a resumed server would
        fast-forward through thousands of phases, burning RNG draws the
        original run never made."""
        self._phase_is_compute = bool(state["phase_is_compute"])
        self._phase_end_s = float(state["phase_end_s"])
