"""Front-end web server workload.

Web servers track user traffic directly: a strong diurnal trend with
large, fast fluctuations on top (request mix, load balancer churn).  In
Figure 6 web servers show a *high median* power variation (p50 37.2%) and
a high tail (p99 62.2%) in 60 s windows.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import StochasticWorkload
from repro.workloads.diurnal import DiurnalShape


class WebWorkload(StochasticWorkload):
    """Diurnal user traffic with large fast noise."""

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        shape: DiurnalShape | None = None,
    ) -> None:
        # Noise/burst levels calibrated so 30 servers over a multi-hour
        # trace reproduce Figure 6's web variation (p50 ~37%, p99 ~62%).
        super().__init__(
            "web",
            rng,
            noise_sigma=0.10,
            noise_tau_s=25.0,
            burst_rate_per_s=1.0 / 900.0,
            burst_magnitude=0.08,
            burst_duration_s=45.0,
        )
        self._shape = shape or DiurnalShape(trough=0.30, peak=0.70)

    def base_utilization(self, now_s: float) -> float:
        """Diurnal trend."""
        return self._shape.value(now_s)
