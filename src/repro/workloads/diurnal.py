"""Diurnal traffic shape for user-facing services.

Facebook's front-end traffic follows a strong daily cycle (visible in
Figures 11 and 14).  We model it as a raised cosine between a trough and a
peak utilization, with the peak hour configurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY, hours


@dataclass(frozen=True)
class DiurnalShape:
    """A daily raised-cosine utilization trend.

    Attributes:
        trough: utilization at the quietest time of day.
        peak: utilization at the busiest time of day.
        peak_time_s: seconds-after-midnight of the daily peak.
    """

    trough: float = 0.35
    peak: float = 0.75
    peak_time_s: float = hours(14)

    def __post_init__(self) -> None:
        if not 0.0 <= self.trough <= self.peak <= 1.0:
            raise ConfigurationError(
                "need 0 <= trough <= peak <= 1 for a diurnal shape"
            )

    def value(self, now_s: float) -> float:
        """Trend utilization at simulation time ``now_s``."""
        phase = 2.0 * math.pi * (now_s - self.peak_time_s) / SECONDS_PER_DAY
        # cos(0) = 1 at the peak time.
        blend = (1.0 + math.cos(phase)) / 2.0
        return self.trough + (self.peak - self.trough) * blend


FLAT = DiurnalShape(trough=0.5, peak=0.5, peak_time_s=0.0)
