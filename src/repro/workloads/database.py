"""MySQL database server workload.

Database servers see diurnal user-driven queries plus episodic heavy
operations (backups, schema migrations, replication catch-up).  Figure 6
measures p50 variation 15.1% and p99 45.8% in 60 s windows — between
cache/hadoop and the front-end services.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import StochasticWorkload
from repro.workloads.diurnal import DiurnalShape


class DatabaseWorkload(StochasticWorkload):
    """Diurnal query load plus episodic maintenance bursts."""

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        shape: DiurnalShape | None = None,
    ) -> None:
        # Calibrated to Figure 6's database variation (p50 ~15%, p99 ~46%).
        super().__init__(
            "database",
            rng,
            noise_sigma=0.05,
            noise_tau_s=40.0,
            burst_rate_per_s=1.0 / 900.0,
            burst_magnitude=0.16,
            burst_duration_s=90.0,
        )
        self._shape = shape or DiurnalShape(trough=0.35, peak=0.60)

    def base_utilization(self, now_s: float) -> float:
        """Diurnal query trend."""
        return self._shape.value(now_s)
