"""Cluster load balancer that shifts traffic away from capped servers.

The paper notes that during the Figure 11/12 capping events, request load
balancing "responded by sending less traffic to those servers to improve
their response time during capping".  :class:`LoadBalancer` reproduces
that feedback: a cluster-level demand signal is divided among servers in
proportion to their current capacity, so a capped server receives less
work and uncapped peers absorb the remainder (up to their own limits).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.server.server import Server


class AssignedShareWorkload:
    """A workload whose utilization is set externally by a load balancer."""

    def __init__(self, service: str, initial_utilization: float = 0.0) -> None:
        self.service = service
        self._utilization = float(initial_utilization)

    def utilization(self, now_s: float) -> float:
        """Most recently assigned demand."""
        return self._utilization

    def assign(self, utilization: float) -> None:
        """Set the demand (called by the load balancer)."""
        self._utilization = min(1.0, max(0.0, utilization))


class LoadBalancer:
    """Splits cluster demand across servers, weighted by capacity.

    ``cluster_demand`` is a function of time returning the total demanded
    utilization expressed as an *average per-server* fraction (0.6 means
    the cluster wants 60% of aggregate capacity).  Each rebalance, every
    server's weight is its achievable utilization under its current power
    cap; demand is distributed proportionally, and demand that cannot be
    placed is recorded as shed (lost work / increased latency upstream).
    """

    def __init__(
        self,
        servers: list[Server],
        cluster_demand: Callable[[float], float],
    ) -> None:
        if not servers:
            raise ConfigurationError("load balancer needs at least one server")
        for server in servers:
            if not isinstance(server.workload, AssignedShareWorkload):
                raise ConfigurationError(
                    f"server {server.server_id!r} must use AssignedShareWorkload"
                )
        self._servers = servers
        self._cluster_demand = cluster_demand
        self.shed_demand = 0.0

    def rebalance(self, now_s: float) -> None:
        """Recompute each server's share of the cluster demand."""
        total_demand = self._cluster_demand(now_s) * len(self._servers)
        capacities: list[float] = []
        for server in self._servers:
            if not server.online:
                capacities.append(0.0)
                continue
            cap = server.rapl.limit_w
            if cap is None:
                capacities.append(1.0)
            else:
                capacities.append(
                    server.power_model.utilization_at_power(
                        cap, turbo=server.turbo.enabled
                    )
                )
        total_capacity = sum(capacities)
        if total_capacity <= 0.0:
            for server in self._servers:
                workload: AssignedShareWorkload = server.workload  # type: ignore[assignment]
                workload.assign(0.0)
            self.shed_demand = total_demand
            return
        placed = min(total_demand, total_capacity)
        self.shed_demand = total_demand - placed
        for server, capacity in zip(self._servers, capacities):
            workload: AssignedShareWorkload = server.workload  # type: ignore[assignment]
            workload.assign(placed * capacity / total_capacity)

    @property
    def servers(self) -> list[Server]:
        """The balanced server pool."""
        return list(self._servers)
