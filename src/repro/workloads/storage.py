"""f4 / photo (warm BLOB) storage workload.

Storage servers are IO-bound and mostly idle on CPU, giving the *lowest
median* power variation of any service in Figure 6 (p50 5.9%) — but rare
heavyweight operations (erasure-coding rebuilds, rebalancing, scrubbing)
drive the *highest tail* (p99 87.7%).  The model is a flat low base with
small noise and infrequent, very large, long bursts.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import StochasticWorkload


class StorageWorkload(StochasticWorkload):
    """Flat low demand with rare, large maintenance bursts."""

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        base_level: float = 0.20,
    ) -> None:
        # Calibrated to Figure 6's f4 variation: p50 ~6% (flat IO-bound
        # demand) with a p99 near 88% from rare heavyweight rebuilds —
        # the lowest median and the highest tail of any service.
        super().__init__(
            "f4storage",
            rng,
            noise_sigma=0.022,
            noise_tau_s=90.0,
            burst_rate_per_s=1.0 / 3600.0,
            burst_magnitude=0.45,
            burst_duration_s=240.0,
        )
        self._base_level = base_level

    def base_utilization(self, now_s: float) -> float:
        """Flat base demand."""
        return self._base_level
