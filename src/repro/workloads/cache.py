"""Cache (TAO-style) server workload.

Cache servers serve a very high, steady request rate: the working set is
memory-resident and load balancing smooths per-server demand.  In Figure 6
cache is the steadiest service: p50 variation 9.2%, p99 26.2% in 60 s
windows.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import StochasticWorkload
from repro.workloads.diurnal import DiurnalShape


class CacheWorkload(StochasticWorkload):
    """Gently diurnal, low-noise demand."""

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        shape: DiurnalShape | None = None,
    ) -> None:
        super().__init__(
            "cache",
            rng,
            noise_sigma=0.035,
            noise_tau_s=60.0,
            burst_rate_per_s=1.0 / 1800.0,
            burst_magnitude=0.08,
            burst_duration_s=60.0,
        )
        self._shape = shape or DiurnalShape(trough=0.45, peak=0.65)

    def base_utilization(self, now_s: float) -> float:
        """Mild diurnal trend around a high steady level."""
        return self._shape.value(now_s)
