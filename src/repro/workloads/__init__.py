"""Service workload substrate.

Synthetic-but-faithful workload models for the six Facebook services the
paper characterizes (Figure 6): web, cache, hadoop, database, news feed,
and f4/photo storage.  Each model combines a base traffic shape (diurnal
for user-facing services), an Ornstein-Uhlenbeck noise process, and
service-specific burst behaviour, with parameters tuned so the 60 s-window
power-variation ordering matches the paper: f4 storage has the lowest
median but highest tail variation; news feed and web have the highest
medians; cache is the steadiest overall.
"""

from repro.workloads.base import (
    OrnsteinUhlenbeckNoise,
    StochasticWorkload,
    WorkloadModifier,
)
from repro.workloads.cache import CacheWorkload
from repro.workloads.database import DatabaseWorkload
from repro.workloads.diurnal import DiurnalShape
from repro.workloads.events import (
    LoadTestEvent,
    SiteOutageRecoveryEvent,
    TrafficSurgeEvent,
)
from repro.workloads.hadoop import HadoopWorkload
from repro.workloads.loadbalancer import AssignedShareWorkload, LoadBalancer
from repro.workloads.newsfeed import NewsfeedWorkload
from repro.workloads.registry import (
    SERVICE_SPECS,
    ServiceSpec,
    make_workload,
    service_spec,
)
from repro.workloads.storage import StorageWorkload
from repro.workloads.web import WebWorkload

__all__ = [
    "AssignedShareWorkload",
    "CacheWorkload",
    "DatabaseWorkload",
    "DiurnalShape",
    "HadoopWorkload",
    "LoadBalancer",
    "LoadTestEvent",
    "NewsfeedWorkload",
    "OrnsteinUhlenbeckNoise",
    "SERVICE_SPECS",
    "ServiceSpec",
    "SiteOutageRecoveryEvent",
    "StochasticWorkload",
    "StorageWorkload",
    "TrafficSurgeEvent",
    "WorkloadModifier",
    "make_workload",
    "service_spec",
]
