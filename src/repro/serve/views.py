"""Read-only JSON views over live world objects.

Every observe endpoint renders through these helpers: plain dicts of
JSON-clean scalars walked out of the live ``Fleet`` / ``PowerDevice`` /
controller / ``HealthRegistry`` objects.  Views are pure functions — no
caching, no mutation — and callers are expected to hold the session
lock while a view walks the world (tick-safety invariant 1 in
:mod:`repro.serve.sessions`).
"""

from __future__ import annotations

from typing import Any

from repro.core.failover import FailoverController
from repro.power.device import PowerDevice
from repro.serve.sessions import Session


def device_view(device: PowerDevice, *, depth: int | None = None) -> dict:
    """One power-tree node, recursing into children up to ``depth``."""
    view: dict[str, Any] = {
        "name": device.name,
        "level": device.level.value,
        "rated_power_w": device.rated_power_w,
        "power_quota_w": device.power_quota_w,
        "power_w": device.power_w(),
        "utilization": device.utilization(),
        "breaker": {
            "tripped": device.breaker.tripped,
            "stress": device.breaker.stress,
        },
        "load_count": len(device.load_ids),
    }
    if device.suite is not None:
        view["suite"] = device.suite
    if depth is None or depth > 0:
        child_depth = None if depth is None else depth - 1
        view["children"] = [
            device_view(child, depth=child_depth)
            for child in device.children
        ]
    return view


def tree_view(session: Session, *, depth: int | None = None) -> dict:
    """The whole power tree plus fleet-level aggregates."""
    world = session.world
    return {
        "time_s": world.now_s,
        "total_power_w": world.fleet.total_power_w(),
        "server_count": len(world.fleet.servers),
        "capped_servers": len(world.fleet.capped_servers()),
        "trips": len(world.driver.trips),
        "roots": [
            device_view(root, depth=depth) for root in world.topology.roots
        ],
    }


def controller_view(name: str, controller: Any) -> dict:
    """One controller's observable state (unwrapping failover pairs)."""
    if isinstance(controller, FailoverController):
        instance = controller.active
        kind = "pair"
        extra: dict[str, Any] = {"primary_healthy": controller.primary_healthy}
    else:
        instance = controller
        kind = (
            "leaf" if hasattr(instance, "server_ids") else "upper"
        )
        extra = {}
    machine = getattr(instance, "modes", None)
    view: dict[str, Any] = {
        "name": name,
        "kind": kind,
        "device": controller.device.name,
        "level": controller.device.level.value,
        "last_aggregate_w": controller.last_aggregate_power_w,
        "contractual_limit_w": controller.contractual_limit_w,
        "effective_limit_w": controller.effective_limit_w,
        "cap_events": controller.cap_events,
        "uncap_events": controller.uncap_events,
        "invalid_cycles": controller.invalid_cycles,
        "mode": "n/a" if machine is None else machine.mode.value,
        **extra,
    }
    last_trace = getattr(instance, "last_trace", None)
    if last_trace is not None:
        # Sensing-coverage posture from the latest control cycle (the
        # degraded-sensing subsystem's observable surface).
        view["coverage_fraction"] = last_trace.coverage_fraction
        view["pulls_disaggregated"] = last_trace.disaggregated
        if last_trace.disaggregated:
            view["estimation_error_w"] = last_trace.estimation_error_w
    return view


def controllers_view(session: Session) -> dict:
    """Every controller in the hierarchy, leaves first."""
    hierarchy = session.world.dynamo.hierarchy
    entries = list(hierarchy.leaf_controllers.items()) + list(
        hierarchy.upper_controllers.items()
    )
    return {
        "time_s": session.now_s,
        "controllers": [
            controller_view(name, controller) for name, controller in entries
        ],
    }


def health_view(session: Session) -> dict:
    """Operating modes, endpoint health, and serve-fault status."""
    world = session.world
    dynamo = world.dynamo
    now_s = world.now_s
    endpoints = []
    for endpoint in sorted(dynamo.health.endpoints):
        stats = dynamo.health.stats(endpoint)
        if stats is None:
            continue
        entry: dict[str, Any] = {
            "endpoint": endpoint,
            "attempts": stats.attempts,
            "successes": stats.successes,
            "failures": stats.failures,
            "retries": stats.retries,
            "breaker_opens": stats.breaker_opens,
            "quarantined": stats.quarantined(now_s),
        }
        if dynamo.resilient_transport is not None:
            entry["breaker"] = dynamo.resilient_transport.breaker_state(
                endpoint
            )
        endpoints.append(entry)
    return {
        "time_s": now_s,
        "modes": dynamo.operating_modes(),
        "safe_mode_entries": dynamo.safe_mode_entries(),
        "degraded_mode_entries": dynamo.degraded_mode_entries(),
        "sensor_degraded_entries": dynamo.sensor_degraded_entries(),
        "quarantined": dynamo.health.quarantined_endpoints(now_s),
        "endpoints": endpoints,
        "pending_serve_faults": session.pending_fault_specs(),
    }


def economics_view(session: Session) -> dict:
    """The economic governor's posture plus ledger totals.

    Raises :class:`ValueError` when the session's world carries no
    governor (mapped to 400 by the app layer); callers that want a
    cheap presence probe should check ``session_view()["economics"]``.
    """
    world = session.world
    governor = world.governor
    if governor is None:
        raise ValueError(
            "session has no economic governor; build with the 'econ' recipe"
        )
    config = governor.config
    last = governor.ledger.last_sample
    view: dict[str, Any] = {
        "time_s": world.now_s,
        "shaping": governor.shaping,
        "interval_s": governor.process.interval_s,
        "price_signal": config.price_signal,
        "carbon_signal": config.carbon_signal,
        "deferring": governor.deferring,
        "applied_band_scale": governor.applied_scale,
        "last_score": governor.last_score,
        "ledger": governor.ledger.summary(),
    }
    if last is not None:
        view["last_sample"] = {
            "time_s": last.time_s,
            "price_per_kwh": last.price_per_kwh,
            "carbon_g_per_kwh": last.carbon_g_per_kwh,
            "power_w": last.power_w,
            "shaped": last.shaped,
        }
    return view


def session_view(session: Session) -> dict:
    """One session's summary row (the list/detail endpoints)."""
    world = session.world
    return {
        "id": session.id,
        "source": session.source,
        "time_s": world.now_s,
        "builder": str(world.recipe.get("builder", "?")),
        "server_count": len(world.fleet.servers),
        "device_count": world.topology.device_count,
        "total_power_w": world.fleet.total_power_w(),
        "capped_servers": len(world.fleet.capped_servers()),
        "cap_events": world.dynamo.total_cap_events(),
        "uncap_events": world.dynamo.total_uncap_events(),
        "trips": len(world.driver.trips),
        "economics": world.governor is not None,
        "ticker": session.ticker.state(),
        "pending_serve_faults": len(session.pending_fault_specs()),
        "log_entries": len(session.log),
    }
