"""A tiny stdlib client for the serve API.

Built on :mod:`http.client` only, so tests, the load benchmark, and the
operator demo need nothing the container does not already have.  One
:class:`ServeClient` holds one keep-alive connection for plain requests
(re-opened transparently after a drop); each streaming call opens its
own connection, since the server closes streamed connections when the
stream ends.

``request()`` returns ``(status, payload)`` raw for callers that need
to observe error statuses (the load benchmark); the convenience methods
raise :class:`ServeClientError` on any non-2xx response.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator

from repro.errors import ServeError


class ServeClientError(ServeError):
    """A serve request came back with an error status.

    Attributes:
        status: the HTTP status code.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Blocking client for one serve endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8640, *, timeout_s: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        """Drop the keep-alive connection."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, Any]:
        """One request → ``(status, parsed JSON payload)``.

        Retries once on a dropped keep-alive connection (the server may
        have closed it between requests); never retries non-idempotent
        calls that actually reached the server.
        """
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (
                http.client.NotConnected,
                http.client.CannotSendRequest,
                http.client.BadStatusLine,
                ConnectionError,
                BrokenPipeError,
            ):
                # The request never produced a response; reconnecting and
                # resending is safe because nothing was processed.
                self.close()
                if attempt:
                    raise
        try:
            parsed = json.loads(data) if data else None
        except json.JSONDecodeError:
            parsed = {"error": data.decode("utf-8", "replace")}
        return response.status, parsed

    def _call(self, method: str, path: str, payload: Any | None = None) -> Any:
        status, parsed = self.request(method, path, payload)
        if status >= 400:
            message = (
                parsed.get("error", str(parsed))
                if isinstance(parsed, dict)
                else str(parsed)
            )
            raise ServeClientError(status, message)
        return parsed

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        """Server liveness."""
        return self._call("GET", "/healthz")

    def sessions(self) -> list[dict]:
        """All live sessions."""
        return self._call("GET", "/sessions")["sessions"]

    def create_session(self, **spec: Any) -> dict:
        """Create a session; see ``SessionManager.create`` for the spec."""
        return self._call("POST", "/sessions", spec)

    def session(self, sid: str) -> dict:
        """One session's summary."""
        return self._call("GET", f"/sessions/{sid}")

    def delete_session(self, sid: str) -> dict:
        """Tear one session down."""
        return self._call("DELETE", f"/sessions/{sid}")

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def step(
        self,
        sid: str,
        *,
        dt_s: float | None = None,
        until_s: float | None = None,
    ) -> dict:
        """Advance a session on demand."""
        payload: dict[str, float] = {}
        if dt_s is not None:
            payload["dt_s"] = dt_s
        if until_s is not None:
            payload["until_s"] = until_s
        return self._call("POST", f"/sessions/{sid}/step", payload)

    def ticker(
        self,
        sid: str,
        *,
        ratio: float | None = None,
        interval_s: float | None = None,
        running: bool | None = None,
    ) -> dict:
        """Configure/start/stop real-time ticking."""
        payload: dict[str, Any] = {}
        if ratio is not None:
            payload["ratio"] = ratio
        if interval_s is not None:
            payload["interval_s"] = interval_s
        if running is not None:
            payload["running"] = running
        return self._call("POST", f"/sessions/{sid}/ticker", payload)

    # ------------------------------------------------------------------
    # Observe
    # ------------------------------------------------------------------

    def tree(self, sid: str, *, depth: int | None = None) -> dict:
        """The power tree."""
        suffix = "" if depth is None else f"?depth={depth}"
        return self._call("GET", f"/sessions/{sid}/tree{suffix}")

    def controllers(self, sid: str) -> dict:
        """Every controller's state."""
        return self._call("GET", f"/sessions/{sid}/controllers")

    def controller(self, sid: str, name: str) -> dict:
        """One controller's state."""
        return self._call("GET", f"/sessions/{sid}/controllers/{name}")

    def health(self, sid: str) -> dict:
        """Operating modes and endpoint health."""
        return self._call("GET", f"/sessions/{sid}/health")

    # ------------------------------------------------------------------
    # Act
    # ------------------------------------------------------------------

    def set_band(
        self,
        sid: str,
        device: str,
        *,
        capping_threshold: float,
        capping_target: float,
        uncapping_threshold: float,
    ) -> dict:
        """Replace one controller's three-band thresholds."""
        return self._call(
            "POST",
            f"/sessions/{sid}/band",
            {
                "device": device,
                "capping_threshold": capping_threshold,
                "capping_target": capping_target,
                "uncapping_threshold": uncapping_threshold,
            },
        )

    def inject_fault(
        self,
        sid: str,
        kind: str,
        *,
        duration_s: float | None = None,
        targets: list[str] | tuple[str, ...] = (),
        params: dict | None = None,
    ) -> dict:
        """Inject one catalogue fault at the session's current time."""
        return self._call(
            "POST",
            f"/sessions/{sid}/faults",
            {
                "kind": kind,
                "duration_s": duration_s,
                "targets": list(targets),
                "params": params or {},
            },
        )

    def failover(self, sid: str, device: str, action: str = "enable") -> dict:
        """Enable a failover pair or fail/restore its primary."""
        return self._call(
            "POST",
            f"/sessions/{sid}/failover",
            {"device": device, "action": action},
        )

    def snapshot(
        self,
        sid: str,
        *,
        path: str | None = None,
        include_state: bool = False,
    ) -> dict:
        """Checkpoint the live session."""
        payload: dict[str, Any] = {"include_state": include_state}
        if path is not None:
            payload["path"] = path
        return self._call("POST", f"/sessions/{sid}/snapshot", payload)

    def restore(
        self,
        sid: str,
        *,
        path: str | None = None,
        snapshot: dict | None = None,
    ) -> dict:
        """Restore a checkpoint into the live session."""
        payload: dict[str, Any] = {}
        if path is not None:
            payload["path"] = path
        if snapshot is not None:
            payload["snapshot"] = snapshot
        return self._call("POST", f"/sessions/{sid}/restore", payload)

    # ------------------------------------------------------------------
    # Stream
    # ------------------------------------------------------------------

    def stream(
        self,
        sid: str,
        *,
        kind: str = "traces",
        limit: int | None = None,
        follow: bool = False,
        controller: str | None = None,
    ) -> Iterator[dict]:
        """Yield NDJSON telemetry records as dicts.

        Opens a dedicated connection; the server closes it when the
        stream ends (``limit`` reached or, without ``follow``, the
        backlog drained).
        """
        params = [f"kind={kind}"]
        if limit is not None:
            params.append(f"limit={limit}")
        if follow:
            params.append("follow=true")
        if controller is not None:
            params.append(f"controller={controller}")
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(
                "GET", f"/sessions/{sid}/stream?" + "&".join(params)
            )
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except (json.JSONDecodeError, AttributeError):
                    message = data.decode("utf-8", "replace")
                raise ServeClientError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
