"""Sessions: isolated live worlds behind the serve API.

A :class:`Session` wraps one built :class:`~repro.state.worlds.World`
with the machinery a long-running service needs around it: a lock
establishing the single-writer discipline, an action log, serve-level
fault bookkeeping, and a :class:`Ticker` that advances the engine at a
configurable real-time ratio.  The :class:`SessionManager` creates
sessions from named recipes or — the cheap path for many concurrent
clients — forks them from a warm snapshot via
:func:`~repro.state.fork.fork_inprocess`, so N tenants each get an
isolated, resumable datacenter sharing one warmed-up origin.

Tick-safety invariants
----------------------

The engine is single-threaded and not re-entrant, so the serve layer
imposes a single-writer discipline:

1. **Every access to a session's world — read or write — happens while
   holding ``Session.lock``** (a reentrant lock).  Under the asyncio
   transport all handlers run on the event-loop thread, so the lock is
   uncontended there; it exists so in-process callers (tests, the
   operator demo) and threaded transports stay correct too.
2. **An engine step never spans an await or yield.**  ``Session.step``
   drives ``engine.run_until`` to completion under the lock; streaming
   handlers copy telemetry out under the lock and yield bytes outside
   it.
3. **Serve-injected faults never enqueue engine events.**  Injection is
   applied synchronously at the session's current simulation time and
   finite-duration recoveries are applied by :meth:`Session.step` when
   the clock passes their deadline — the engine queue stays fully
   snapshot-coverable, so a live session can be checkpointed at any
   time.
4. **Restoring into a live session swaps the world object atomically
   under the lock** and drops pending serve-fault recoveries (their
   save-lists reference the replaced world's objects); the drop is
   recorded in the session's action log.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.chaos.faults import FaultSpec, build_fault
from repro.chaos.orchestrator import ChaosContext
from repro.config import ThreeBandConfig
from repro.errors import ServeError, UnknownSessionError
from repro.state.fork import fork_branch
from repro.state.registry import SnapshotRegistry
from repro.state.snapshot import WorldSnapshot, fingerprint
from repro.state.worlds import (
    World,
    build_chaos_world,
    build_quickstart_world,
    build_world,
)
from repro.telemetry.events import EventLog

#: Fault kinds whose targets name power devices rather than fleet
#: servers; their builders/injectors validate device names themselves.
_DEVICE_TARGET_KINDS = frozenset({"controller-crash", "breaker-derate"})


class Ticker:
    """Advances one session in real time at a configurable ratio.

    ``ratio`` is simulated seconds per wall-clock second; every
    ``interval_s`` wall seconds the ticker takes the session lock and
    steps the engine by ``ratio * interval_s`` simulated seconds.  The
    task runs on the serve event loop, so ticks serialize with request
    handlers by construction (invariant 1) — a handler never observes a
    half-stepped world.
    """

    def __init__(self, session: "Session") -> None:
        self._session = session
        self.ratio = 1.0
        self.interval_s = 1.0
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.ticks = 0

    @property
    def running(self) -> bool:
        """Whether the tick task is live."""
        return self._task is not None and not self._task.done()

    def configure(
        self, *, ratio: float | None = None, interval_s: float | None = None
    ) -> None:
        """Update pacing; takes effect from the next tick."""
        if ratio is not None:
            if ratio <= 0:
                raise ServeError("ticker ratio must be positive")
            self.ratio = float(ratio)
        if interval_s is not None:
            if interval_s <= 0:
                raise ServeError("ticker interval must be positive")
            self.interval_s = float(interval_s)

    def start(self) -> None:
        """Start ticking on the current thread's running event loop."""
        if self.running:
            return
        try:
            self._loop = asyncio.get_running_loop()
        except RuntimeError:
            raise ServeError(
                "the ticker needs a running event loop; use on-demand "
                "stepping (POST /sessions/{id}/step) outside the server"
            ) from None
        self._task = self._loop.create_task(self._run())

    def stop(self) -> None:
        """Cancel the tick task (safe to call from any thread)."""
        task, loop = self._task, self._loop
        self._task = None
        if task is None or task.done() or loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(task.cancel)

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            self._session.step(dt_s=self.ratio * self.interval_s)
            self.ticks += 1

    def state(self) -> dict:
        """JSON view of the ticker."""
        return {
            "running": self.running,
            "ratio": self.ratio,
            "interval_s": self.interval_s,
            "ticks": self.ticks,
        }


class Session:
    """One isolated live world plus its serve-side bookkeeping."""

    def __init__(self, session_id: str, world: World, source: dict) -> None:
        self.id = session_id
        self.world = world
        #: How the session was created (recipe / snapshot / fork index).
        self.source = source
        #: Reentrant so a handler holding the lock can call helpers that
        #: take it again (invariant 1 in the module docstring).
        self.lock = threading.RLock()
        #: Serve-level action log: create/step/act/restore occurrences.
        #: Session-local — distinct from any chaos EventLog in the world.
        self.log = EventLog()
        self.ticker = Ticker(self)
        #: Serve-injected finite faults awaiting recovery, as
        #: ``(end_s, insertion order, fault)`` kept sorted by deadline.
        self._pending_faults: list[tuple[float, int, Any]] = []
        self._fault_counter = itertools.count()
        self._registry = SnapshotRegistry()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self.world.now_s

    def pending_fault_specs(self) -> list[dict]:
        """Serve faults awaiting recovery, soonest deadline first."""
        with self.lock:
            return [
                {
                    "kind": fault.kind,
                    "end_s": end_s,
                    "spec": fault.spec.describe(),
                }
                for end_s, _, fault in sorted(self._pending_faults)
            ]

    def fingerprint(self) -> str:
        """Run-comparable digest of the session's current state."""
        with self.lock:
            return fingerprint(self._registry.capture(self.world).state)

    # ------------------------------------------------------------------
    # Advancing time
    # ------------------------------------------------------------------

    def step(
        self, *, dt_s: float | None = None, until_s: float | None = None
    ) -> dict:
        """Advance the session's engine; returns a step summary.

        Exactly one of ``dt_s``/``until_s`` selects the target time.
        The run is segmented at serve-fault recovery deadlines so each
        recovery is applied at precisely its ``end_s`` — the same
        semantics the chaos orchestrator's engine events would give.
        """
        if (dt_s is None) == (until_s is None):
            raise ServeError("step needs exactly one of dt_s or until_s")
        with self.lock:
            now = self.world.now_s
            end = now + float(dt_s) if dt_s is not None else float(until_s)  # type: ignore[arg-type]
            if end < now:
                raise ServeError(
                    f"cannot step to t={end:.3f}s before now (t={now:.3f}s)"
                )
            events_before = self.world.engine.events_executed
            while True:
                bound = end
                due = [e for e in self._pending_faults if e[0] <= end]
                if due:
                    bound = min(bound, min(e[0] for e in due))
                self.world.run_until(bound)
                self._recover_due_faults()
                if bound >= end:
                    break
            return {
                "time_s": self.world.now_s,
                "advanced_s": self.world.now_s - now,
                "events_executed": (
                    self.world.engine.events_executed - events_before
                ),
            }

    def _recover_due_faults(self) -> None:
        now = self.world.now_s
        remaining: list[tuple[float, int, Any]] = []
        for end_s, order, fault in sorted(self._pending_faults):
            if end_s <= now:
                detail = fault.recover(self._ctx())
                self.log.record(
                    now, "serve", f"recover.{fault.kind}", detail
                )
            else:
                remaining.append((end_s, order, fault))
        self._pending_faults = remaining

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _ctx(self) -> ChaosContext:
        return ChaosContext(
            engine=self.world.engine,
            dynamo=self.world.dynamo,
            topology=self.world.topology,
            fleet=self.world.fleet,
            driver=self.world.driver,
        )

    def inject_fault(
        self,
        kind: str,
        *,
        duration_s: float | None = None,
        targets: tuple[str, ...] = (),
        params: dict | None = None,
    ) -> dict:
        """Apply one catalogue fault right now (invariant 3).

        Finite faults recover when :meth:`step` carries the clock past
        ``now + duration_s``; open-ended faults persist until something
        in the world (e.g. the watchdog) repairs them.
        """
        with self.lock:
            now = self.world.now_s
            spec = FaultSpec(
                kind=kind,
                start_s=now,
                duration_s=duration_s,
                targets=tuple(targets),
                params=dict(params or {}),
            )
            if kind not in _DEVICE_TARGET_KINDS:
                # Server-targeted kinds KeyError mid-injection on a bad
                # id, which would leave the fault half-applied; reject
                # the whole request up front instead.
                unknown = [
                    t for t in spec.targets if t not in self.world.fleet.servers
                ]
                if unknown:
                    raise ServeError(
                        f"unknown server target(s) {unknown} for "
                        f"{kind!r}; targets must be fleet server ids"
                    )
            fault = build_fault(spec)
            detail = fault.inject(self._ctx())
            self.log.record(
                now, "serve", f"inject.{kind}", f"{spec.describe()} -> {detail}"
            )
            if spec.end_s is not None:
                self._pending_faults.append(
                    (spec.end_s, next(self._fault_counter), fault)
                )
            return {"detail": detail, "end_s": spec.end_s, "time_s": now}

    def set_band(self, device: str, band: ThreeBandConfig) -> dict:
        """Replace one controller's three-band thresholds."""
        with self.lock:
            self.world.dynamo.set_band_config(device, band)
            self.log.record(
                self.world.now_s,
                "serve",
                "band.replace",
                f"{device} cap={band.capping_threshold:g} "
                f"target={band.capping_target:g} "
                f"uncap={band.uncapping_threshold:g}",
            )
            return {"device": device, "time_s": self.world.now_s}

    def failover(self, device: str, action: str = "enable") -> dict:
        """Enable a failover pair, or fail/restore its primary."""
        with self.lock:
            pair = self.world.dynamo.enable_failover(device)
            if action == "fail":
                pair.fail_primary()
            elif action == "restore":
                pair.restore_primary()
            elif action != "enable":
                raise ServeError(
                    f"unknown failover action {action!r}; "
                    "known: enable, fail, restore"
                )
            self.log.record(
                self.world.now_s, "serve", f"failover.{action}", device
            )
            return {
                "device": device,
                "action": action,
                "primary_healthy": pair.primary_healthy,
                "time_s": self.world.now_s,
            }

    def snapshot(
        self, *, path: str | None = None, include_state: bool = False
    ) -> tuple[WorldSnapshot, dict]:
        """Checkpoint the live session.

        Pending serve-fault recoveries are session-side bookkeeping, not
        world state; their count rides in the summary so a caller knows
        the capture is mid-fault.
        """
        with self.lock:
            snapshot = self._registry.capture(self.world)
            summary = {
                "time_s": snapshot.time_s,
                "fingerprint": fingerprint(snapshot.state),
                "integrity": snapshot.integrity(),
                "pending_serve_faults": len(self._pending_faults),
            }
            if path is not None:
                summary["path"] = str(snapshot.save(path))
            if include_state:
                summary["snapshot"] = snapshot.to_envelope()
            self.log.record(
                self.world.now_s, "serve", "snapshot.capture", path or "inline"
            )
            return snapshot, summary

    def restore(self, snapshot: WorldSnapshot) -> dict:
        """Swap in a restored world atomically (invariant 4)."""
        with self.lock:
            world = self._registry.restore(snapshot)
            dropped = len(self._pending_faults)
            self._pending_faults = []
            self.world = world
            self.log.record(
                world.now_s,
                "serve",
                "snapshot.restore",
                f"t={world.now_s:.1f}s dropped_serve_faults={dropped}",
            )
            return {"time_s": world.now_s, "dropped_serve_faults": dropped}

    def close(self) -> None:
        """Stop ticking; the world is garbage after this."""
        self.ticker.stop()


#: Scenario names the manager accepts for ``{"scenario": ...}`` creates.
QUICKSTART = "quickstart"


class SessionManager:
    """Creates, indexes, and tears down isolated sessions.

    Creation requests are plain dicts (the POST body of the create
    endpoint); exactly one origin key picks the path:

    * ``{"scenario": name, "seed": ..., "physics_backend": ...,
      "control_backend": ...}`` — build a named world (``quickstart``
      or any chaos scenario).
    * ``{"recipe": {...}}`` — any full world recipe
      (:func:`~repro.state.worlds.build_world`).
    * ``{"snapshot_path": p}`` / ``{"snapshot": envelope}`` — restore a
      checkpoint; add ``"fork_index": k`` to fork branch ``k`` instead
      (divergent RNG streams, shared warm state).

    Loaded snapshots are cached by integrity hash so a fleet of clients
    forking the same warm origin parses and verifies it once.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        default_control_backend: str = "scalar",
    ) -> None:
        if max_sessions <= 0:
            raise ServeError("max_sessions must be positive")
        self.max_sessions = max_sessions
        #: Control backend for scenario sessions whose spec omits
        #: ``control_backend`` (the ``repro serve --control-backend``
        #: default; recipe and snapshot sessions carry their own).
        self.default_control_backend = default_control_backend
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self._snapshot_cache: dict[str, WorldSnapshot] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(self, spec: dict) -> Session:
        """Build one session from a creation request dict."""
        if not isinstance(spec, dict):
            raise ServeError("session spec must be a JSON object")
        origin_keys = [
            k
            for k in ("scenario", "recipe", "snapshot_path", "snapshot")
            if k in spec
        ]
        if len(origin_keys) != 1:
            raise ServeError(
                "session spec needs exactly one of scenario, recipe, "
                f"snapshot_path, snapshot (got {origin_keys or 'none'})"
            )
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise ServeError(
                    f"session limit reached ({self.max_sessions}); "
                    "delete a session first"
                )
            session_id = f"s{next(self._counter):04d}"
        world, source = self._build(origin_keys[0], spec)
        session = Session(session_id, world, source)
        session.log.record(world.now_s, "serve", "session.create", session_id)
        with self._lock:
            self._sessions[session_id] = session
        return session

    def _build(self, origin: str, spec: dict) -> tuple[World, dict]:
        if origin == "scenario":
            name = str(spec["scenario"])
            seed = int(spec.get("seed", 0))
            backend = str(spec.get("physics_backend", "scalar"))
            control = str(
                spec.get("control_backend", self.default_control_backend)
            )
            if name == QUICKSTART:
                world = build_quickstart_world(
                    seed=seed,
                    physics_backend=backend,
                    control_backend=control,
                )
            else:
                world = build_chaos_world(
                    name,
                    seed=seed,
                    physics_backend=backend,
                    control_backend=control,
                )
            return world, {"scenario": name, "seed": seed}
        if origin == "recipe":
            recipe = spec["recipe"]
            if not isinstance(recipe, dict):
                raise ServeError("recipe must be a JSON object")
            return build_world(recipe), {"recipe": recipe}
        snapshot = self._load_snapshot(origin, spec)
        fork_index = spec.get("fork_index")
        source = {
            "snapshot_time_s": snapshot.time_s,
            "snapshot_integrity": snapshot.integrity(),
            "fork_index": fork_index,
        }
        if origin == "snapshot_path":
            source["snapshot_path"] = str(spec["snapshot_path"])
        if fork_index is None:
            return SnapshotRegistry().restore(snapshot), source
        return fork_branch(snapshot, int(fork_index)), source

    def _load_snapshot(self, origin: str, spec: dict) -> WorldSnapshot:
        if origin == "snapshot":
            return WorldSnapshot.from_envelope(
                spec["snapshot"], origin="posted snapshot"
            )
        path = Path(str(spec["snapshot_path"]))
        # One stat-free cache hit per (path, mtime) would be fragile on
        # rewritten files; keying by content hash after a load is not —
        # but we must read the file to hash it, so key by resolved path
        # + size + mtime and verify integrity on every cache miss.
        try:
            stat = path.stat()
        except OSError as exc:
            raise ServeError(f"cannot read snapshot {path}: {exc}") from exc
        cache_key = f"{path.resolve()}:{stat.st_size}:{stat.st_mtime_ns}"
        cached = self._snapshot_cache.get(cache_key)
        if cached is None:
            cached = WorldSnapshot.load(path)
            self._snapshot_cache.clear()
            self._snapshot_cache[cache_key] = cached
        return cached

    def get(self, session_id: str) -> Session:
        """Look one session up; raises :class:`UnknownSessionError`."""
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise UnknownSessionError(session_id) from None

    def delete(self, session_id: str) -> None:
        """Tear one session down (stops its ticker)."""
        with self._lock:
            try:
                session = self._sessions.pop(session_id)
            except KeyError:
                raise UnknownSessionError(session_id) from None
        session.close()

    def sessions(self) -> list[Session]:
        """All live sessions, in creation order."""
        with self._lock:
            return list(self._sessions.values())

    def close_all(self) -> None:
        """Tear every session down."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions())
