"""The serve application: route table and request handlers.

This layer is deliberately transport-agnostic — handlers consume a plain
:class:`Request` and return a plain :class:`Response`, so the asyncio
HTTP/1.1 transport in :mod:`repro.serve.http` could be swapped for a
threaded ``http.server`` façade or FastAPI without touching a handler.

Endpoints
---------

======  =====================================  ==============================
method  path                                   effect
======  =====================================  ==============================
GET     /healthz                               liveness probe
GET     /sessions                              list sessions
POST    /sessions                              create (recipe/snapshot/fork)
GET     /sessions/{id}                         session summary
DELETE  /sessions/{id}                         tear a session down
POST    /sessions/{id}/step                    advance ``dt_s``/``until_s``
POST    /sessions/{id}/ticker                  configure real-time ticking
GET     /sessions/{id}/tree                    power-tree JSON (``?depth=``)
GET     /sessions/{id}/controllers             every controller's state
GET     /sessions/{id}/controllers/{name}      one controller
GET     /sessions/{id}/health                  modes + endpoint health
GET     /sessions/{id}/economics               governor posture + ledger
POST    /sessions/{id}/band                    replace band thresholds
POST    /sessions/{id}/faults                  inject a catalogue fault
POST    /sessions/{id}/failover                enable/fail/restore a pair
POST    /sessions/{id}/snapshot                checkpoint the live session
POST    /sessions/{id}/restore                 restore into the session
GET     /sessions/{id}/stream                  NDJSON telemetry stream
======  =====================================  ==============================

Streaming responses carry ``Response.stream``, an iterator of NDJSON
lines; a ``None`` item means "no data right now — poll again", which the
asyncio transport turns into a short sleep so follow-mode streams do not
spin.  Error mapping: unknown session → 404, invalid input (including
bad fault kinds, band configs, and snapshot envelopes) → 400, session
limit → 409, anything unexpected → 500 with the exception rendered.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator
from urllib.parse import parse_qs, urlsplit

from repro.config import ThreeBandConfig
from repro.errors import (
    ConfigurationError,
    ReproError,
    ServeError,
    SnapshotError,
    TopologyError,
    UnknownSessionError,
)
from repro.serve.sessions import Session, SessionManager
from repro.serve.views import (
    controller_view,
    controllers_view,
    economics_view,
    health_view,
    session_view,
    tree_view,
)
from repro.state.snapshot import WorldSnapshot

#: Hard cap on request bodies (a posted snapshot envelope is a few MB).
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request, transport-independent."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The request body parsed as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc

    @classmethod
    def make(
        cls,
        method: str,
        target: str,
        *,
        payload: Any | None = None,
        headers: dict[str, str] | None = None,
    ) -> "Request":
        """Build a request from a target like ``/sessions?limit=3``.

        The in-process test harness and the transport both come through
        here so query parsing has one home.
        """
        parts = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        return cls(
            method=method.upper(),
            path=parts.path,
            query=query,
            headers={k.lower(): v for k, v in (headers or {}).items()},
            body=body,
        )


@dataclass
class Response:
    """One response: a JSON body or an NDJSON stream, never both."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    #: NDJSON line iterator; ``None`` items mean "poll again later".
    stream: Iterator[bytes | None] | None = None

    def json(self) -> Any:
        """Parse the body back (test convenience)."""
        return json.loads(self.body) if self.body else None


def json_response(payload: Any, status: int = 200) -> Response:
    """A JSON-encoded response."""
    return Response(
        status=status,
        body=(json.dumps(payload) + "\n").encode("utf-8"),
    )


def error_response(status: int, message: str) -> Response:
    """The uniform error shape: ``{"error": ...}``."""
    return json_response({"error": message}, status=status)


_Handler = Callable[..., Response]


def _compile(pattern: str) -> re.Pattern[str]:
    regex = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
    return re.compile(f"^{regex}$")


class ServeApp:
    """Routes requests to handlers over one :class:`SessionManager`."""

    def __init__(self, manager: SessionManager | None = None) -> None:
        # `manager or ...` would discard an empty manager (len() == 0
        # makes it falsy), silently ignoring a caller's session cap.
        self.manager = manager if manager is not None else SessionManager()
        self._routes: list[tuple[str, re.Pattern[str], _Handler]] = [
            ("GET", _compile("/healthz"), self._healthz),
            ("GET", _compile("/sessions"), self._list_sessions),
            ("POST", _compile("/sessions"), self._create_session),
            ("GET", _compile("/sessions/{sid}"), self._get_session),
            ("DELETE", _compile("/sessions/{sid}"), self._delete_session),
            ("POST", _compile("/sessions/{sid}/step"), self._step),
            ("POST", _compile("/sessions/{sid}/ticker"), self._ticker),
            ("GET", _compile("/sessions/{sid}/tree"), self._tree),
            ("GET", _compile("/sessions/{sid}/controllers"), self._controllers),
            (
                "GET",
                _compile("/sessions/{sid}/controllers/{name}"),
                self._controller,
            ),
            ("GET", _compile("/sessions/{sid}/health"), self._health),
            ("GET", _compile("/sessions/{sid}/economics"), self._economics),
            ("POST", _compile("/sessions/{sid}/band"), self._band),
            ("POST", _compile("/sessions/{sid}/faults"), self._fault),
            ("POST", _compile("/sessions/{sid}/failover"), self._failover),
            ("POST", _compile("/sessions/{sid}/snapshot"), self._snapshot),
            ("POST", _compile("/sessions/{sid}/restore"), self._restore),
            ("GET", _compile("/sessions/{sid}/stream"), self._stream),
        ]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Dispatch one request; exceptions become error responses."""
        matched_path = False
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            matched_path = True
            if method != request.method:
                continue
            try:
                return handler(request, **match.groupdict())
            except UnknownSessionError as exc:
                return error_response(404, str(exc))
            except ServeError as exc:
                status = 409 if "session limit" in str(exc) else 400
                return error_response(status, str(exc))
            except (
                ConfigurationError,
                SnapshotError,
                TopologyError,
                ValueError,
            ) as exc:
                return error_response(400, str(exc))
            except ReproError as exc:
                return error_response(500, str(exc))
        if matched_path:
            return error_response(
                405, f"method {request.method} not allowed on {request.path}"
            )
        return error_response(404, f"no route for {request.path}")

    def _session(self, sid: str) -> Session:
        return self.manager.get(sid)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _healthz(self, request: Request) -> Response:
        return json_response(
            {"status": "ok", "sessions": len(self.manager)}
        )

    def _list_sessions(self, request: Request) -> Response:
        views = []
        for session in self.manager.sessions():
            with session.lock:
                views.append(session_view(session))
        return json_response({"sessions": views})

    def _create_session(self, request: Request) -> Response:
        session = self.manager.create(request.json())
        with session.lock:
            return json_response(session_view(session), status=201)

    def _get_session(self, request: Request, sid: str) -> Response:
        session = self._session(sid)
        with session.lock:
            return json_response(session_view(session))

    def _delete_session(self, request: Request, sid: str) -> Response:
        self.manager.delete(sid)
        return json_response({"deleted": sid})

    def _step(self, request: Request, sid: str) -> Response:
        payload = request.json()
        dt_s = payload.get("dt_s")
        until_s = payload.get("until_s")
        result = self._session(sid).step(
            dt_s=None if dt_s is None else float(dt_s),
            until_s=None if until_s is None else float(until_s),
        )
        return json_response(result)

    def _ticker(self, request: Request, sid: str) -> Response:
        payload = request.json()
        session = self._session(sid)
        ticker = session.ticker
        ratio = payload.get("ratio")
        interval_s = payload.get("interval_s")
        ticker.configure(
            ratio=None if ratio is None else float(ratio),
            interval_s=None if interval_s is None else float(interval_s),
        )
        running = payload.get("running")
        if running is True:
            ticker.start()
        elif running is False:
            ticker.stop()
        return json_response(ticker.state())

    def _tree(self, request: Request, sid: str) -> Response:
        depth = request.query.get("depth")
        session = self._session(sid)
        with session.lock:
            return json_response(
                tree_view(
                    session, depth=None if depth is None else int(depth)
                )
            )

    def _controllers(self, request: Request, sid: str) -> Response:
        session = self._session(sid)
        with session.lock:
            return json_response(controllers_view(session))

    def _controller(self, request: Request, sid: str, name: str) -> Response:
        session = self._session(sid)
        with session.lock:
            try:
                controller = session.world.dynamo.controller(name)
            except ConfigurationError:
                known = ", ".join(
                    sorted(
                        c.name
                        for c in session.world.dynamo.hierarchy.all_controllers
                    )
                )
                return error_response(
                    404, f"no controller {name!r}; known: {known}"
                )
            return json_response(controller_view(name, controller))

    def _health(self, request: Request, sid: str) -> Response:
        session = self._session(sid)
        with session.lock:
            return json_response(health_view(session))

    def _economics(self, request: Request, sid: str) -> Response:
        session = self._session(sid)
        with session.lock:
            return json_response(economics_view(session))

    def _band(self, request: Request, sid: str) -> Response:
        payload = request.json()
        device = payload.get("device")
        if not device:
            raise ServeError("band change needs a device name")
        band = ThreeBandConfig(
            capping_threshold=float(payload["capping_threshold"]),
            capping_target=float(payload["capping_target"]),
            uncapping_threshold=float(payload["uncapping_threshold"]),
        )
        return json_response(self._session(sid).set_band(str(device), band))

    def _fault(self, request: Request, sid: str) -> Response:
        payload = request.json()
        kind = payload.get("kind")
        if not kind:
            raise ServeError("fault injection needs a kind")
        duration_s = payload.get("duration_s")
        result = self._session(sid).inject_fault(
            str(kind),
            duration_s=None if duration_s is None else float(duration_s),
            targets=tuple(str(t) for t in payload.get("targets", [])),
            params=payload.get("params") or {},
        )
        return json_response(result)

    def _failover(self, request: Request, sid: str) -> Response:
        payload = request.json()
        device = payload.get("device")
        if not device:
            raise ServeError("failover needs a device name")
        return json_response(
            self._session(sid).failover(
                str(device), str(payload.get("action", "enable"))
            )
        )

    def _snapshot(self, request: Request, sid: str) -> Response:
        payload = request.json()
        path = payload.get("path")
        _, summary = self._session(sid).snapshot(
            path=None if path is None else str(path),
            include_state=bool(payload.get("include_state", False)),
        )
        return json_response(summary)

    def _restore(self, request: Request, sid: str) -> Response:
        payload = request.json()
        has_path = "path" in payload
        has_envelope = "snapshot" in payload
        if has_path == has_envelope:
            raise ServeError("restore needs exactly one of path or snapshot")
        if has_path:
            snapshot = WorldSnapshot.load(str(payload["path"]))
        else:
            snapshot = WorldSnapshot.from_envelope(
                payload["snapshot"], origin="posted snapshot"
            )
        return json_response(self._session(sid).restore(snapshot))

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def _stream(self, request: Request, sid: str) -> Response:
        kind = request.query.get("kind", "traces")
        if kind not in ("traces", "events", "log"):
            raise ServeError(
                f"unknown stream kind {kind!r}; known: traces, events, log"
            )
        limit_raw = request.query.get("limit")
        limit = None if limit_raw is None else int(limit_raw)
        follow = request.query.get("follow", "false").lower() in (
            "1",
            "true",
            "yes",
        )
        controller = request.query.get("controller")
        session = self._session(sid)
        return Response(
            stream=self._stream_lines(
                session, kind, limit=limit, follow=follow, controller=controller
            ),
            content_type="application/x-ndjson",
        )

    def _stream_lines(
        self,
        session: Session,
        kind: str,
        *,
        limit: int | None,
        follow: bool,
        controller: str | None,
    ) -> Iterator[bytes | None]:
        """NDJSON lines; yields ``None`` when follow-mode has no news.

        Cursoring: traces track the buffer's lifetime ``recorded``
        counter (the ring may drop ticks under overload — streaming is
        lossy by design, snapshots are not), event/log streams track the
        append-only list index.
        """
        sent = 0
        cursor = 0
        primed = False
        while True:
            batch: list[dict]
            with session.lock:
                if kind == "traces":
                    buffer = session.world.dynamo.traces
                    if not primed:
                        cursor = buffer.recorded - len(buffer)
                    fresh = buffer.recorded - cursor
                    traces = buffer.latest(fresh) if fresh > 0 else []
                    cursor = buffer.recorded
                    if controller is not None:
                        traces = [
                            t for t in traces if t.controller == controller
                        ]
                    batch = [t.to_dict() for t in traces]
                else:
                    log = (
                        session.log
                        if kind == "log"
                        else session.world.orchestrator.events
                        if session.world.orchestrator is not None
                        else session.log
                    )
                    events = log.events[cursor:]
                    cursor += len(events)
                    batch = [
                        {
                            "time_s": e.time_s,
                            "source": e.source,
                            "kind": e.kind,
                            "detail": e.detail,
                        }
                        for e in events
                    ]
            primed = True
            for item in batch:
                yield (json.dumps(item) + "\n").encode("utf-8")
                sent += 1
                if limit is not None and sent >= limit:
                    return
            if not follow:
                return
            yield None
