"""A small asyncio HTTP/1.1 transport for the serve app.

Hand-rolled on :func:`asyncio.start_server` — no dependencies beyond the
stdlib — and deliberately thin: parse a request, hand it to
:meth:`~repro.serve.app.ServeApp.handle`, write the response.  Normal
responses use ``Content-Length`` and keep-alive; streaming responses use
chunked transfer encoding and close the connection when the stream ends.

Handlers run synchronously on the event loop, so one long engine step
blocks other clients for its duration.  That is the documented
trade-off of the single-writer design (see :mod:`repro.serve.sessions`):
requests serialize, state never tears.  A ``None`` item from a response
stream means "no data yet"; the transport sleeps :data:`STREAM_POLL_S`
and polls again, which is what keeps follow-mode streams cooperative.

:class:`ServeServer` wraps the transport two ways: ``serve_forever()``
runs in the current thread (the ``python -m repro serve`` path), and
``start()``/``stop()`` run the loop on a daemon thread — the harness
tests, the load benchmark, and the operator demo use to host a real
server next to blocking clients.
"""

from __future__ import annotations

import asyncio
import threading
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServeError
from repro.serve.app import MAX_BODY_BYTES, Request, Response, ServeApp

#: Follow-mode poll cadence (real seconds) when a stream has no news.
STREAM_POLL_S = 0.05

#: Maximum bytes in a request line or header line.
_MAX_LINE = 16 * 1024


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the wire; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > _MAX_LINE:
        raise ServeError("request line too long")
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except ValueError:
        raise ServeError(f"malformed request line {line!r}") from None
    headers: dict[str, str] = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        if len(header) > _MAX_LINE:
            raise ServeError("header line too long")
        name, _, value = header.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ServeError(f"request body of {length} bytes exceeds the cap")
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
    return Request(
        method=method.upper(),
        path=parts.path,
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, extra: str = "") -> bytes:
    reason = {200: "OK", 201: "Created", 404: "Not Found"}.get(status, "")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"{extra}"
    ).encode("ascii")


async def _write_response(
    writer: asyncio.StreamWriter, response: Response
) -> bool:
    """Send one response; returns whether the connection may be reused."""
    if response.stream is None:
        writer.write(
            _head(
                response.status,
                response.content_type,
                f"Content-Length: {len(response.body)}\r\n\r\n",
            )
            + response.body
        )
        await writer.drain()
        return True
    writer.write(
        _head(
            response.status,
            response.content_type,
            "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        )
    )
    await writer.drain()
    try:
        for item in response.stream:
            if item is None:
                await asyncio.sleep(STREAM_POLL_S)
                continue
            writer.write(f"{len(item):x}\r\n".encode("ascii") + item + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
    finally:
        close = getattr(response.stream, "close", None)
        if close is not None:
            close()
    return False


async def handle_connection(
    app: ServeApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection (keep-alive until close/stream)."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ServeError, asyncio.IncompleteReadError):
                break
            except asyncio.CancelledError:
                # Server shutdown while idle between requests; finish
                # the task cleanly so the streams-module done-callback
                # doesn't log the cancellation as an error.
                break
            if request is None:
                break
            try:
                response = app.handle(request)
            except Exception as exc:  # the app maps its own errors; this
                # is the transport-level belt-and-braces 500.
                response = Response(
                    status=500,
                    body=(
                        f'{{"error": "internal error: {type(exc).__name__}"}}\n'
                    ).encode("utf-8"),
                )
            try:
                reusable = await _write_response(writer, response)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                break
            if not reusable or request.headers.get("connection") == "close":
                break
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass


class ServeServer:
    """Hosts a :class:`ServeApp` over the asyncio transport."""

    def __init__(
        self,
        app: ServeApp | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.app = app if app is not None else ServeApp()
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Foreground (CLI) path
    # ------------------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                lambda r, w: handle_connection(self.app, r, w),
                host=self.host,
                port=self.port,
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._ready.set()
        async with self._server:
            await self._shutdown.wait()
        self.app.manager.close_all()

    def serve_forever(self) -> None:
        """Run the server in the current thread until interrupted."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            self.app.manager.close_all()

    # ------------------------------------------------------------------
    # Background-thread harness
    # ------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Run the server on a daemon thread; returns (host, port)."""
        if self._thread is not None:
            raise ServeError("server already started")
        self._ready.clear()
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServeError("server failed to start within 10s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise ServeError(
                f"server failed to bind: {self._startup_error}"
            )
        return self.host, self.port

    def stop(self) -> None:
        """Signal shutdown and join the server thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.app.manager.close_all()

    def __enter__(self) -> "ServeServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
