"""Long-running simulation service: many isolated worlds behind HTTP.

The serve layer hosts concurrent simulation sessions — each a fully
isolated world created from a scenario recipe or forked from a
snapshot — and exposes them over a hand-rolled asyncio HTTP/1.1 API:
observe (power tree, controllers, health), act (bands, faults,
failover, snapshot/restore), and stream telemetry as NDJSON.

Layering, bottom up:

- :mod:`repro.serve.sessions` — ``Session`` / ``SessionManager`` /
  ``Ticker``: world lifecycle and the tick-safety invariants.
- :mod:`repro.serve.views` — pure JSON views over live world objects.
- :mod:`repro.serve.app` — transport-agnostic ``Request`` →
  ``Response`` routing (swap the transport without touching handlers).
- :mod:`repro.serve.http` — the asyncio transport and ``ServeServer``.
- :mod:`repro.serve.client` — blocking stdlib client used by tests,
  the load benchmark, and the operator demo.
"""

from repro.serve.app import Request, Response, ServeApp
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import ServeServer
from repro.serve.sessions import Session, SessionManager, Ticker

__all__ = [
    "Request",
    "Response",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeServer",
    "Session",
    "SessionManager",
    "Ticker",
]
