"""Online power disaggregation: capping when sensors go dark.

The paper's rule for widespread sensor loss is abort-and-alert; this
package is the ROADMAP's WattScope-direction answer: fit per-service
power models while sensing is healthy, then reconstruct dark servers
from the device-metering residual so the leaf controller can keep
capping — against an uncertainty-inflated total, in the
SENSOR_DEGRADED posture — instead of leaving the breaker unprotected.
"""

from repro.estimation.attribution import (
    ServiceAttribution,
    attribute_leaf,
    render_attribution,
)
from repro.estimation.disaggregator import (
    MAX_ESTIMATE_CONFIDENCE,
    PowerDisaggregator,
    ServerEstimate,
    ServiceModel,
    ServerState,
    uncertainty_margin_w,
)

__all__ = [
    "MAX_ESTIMATE_CONFIDENCE",
    "PowerDisaggregator",
    "ServerEstimate",
    "ServiceAttribution",
    "ServiceModel",
    "ServerState",
    "attribute_leaf",
    "render_attribution",
    "uncertainty_margin_w",
]
