"""Per-service power attribution for one leaf device.

The composition target of the nvPAX/allocation direction: given a leaf
controller's latest readings (measured, stale, or disaggregated) and its
fitted service models, report where the device's power is going,
service by service, with the aggregate confidence of each service's
share.  Consumed by ``python -m repro attribute <device>``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceAttribution:
    """One service's share of a leaf device's power."""

    service: str
    servers: int
    power_w: float
    #: Power-weighted mean confidence of the underlying readings.
    confidence: float
    #: Fitted per-server mean from the disaggregation model, if any.
    model_mean_w: float | None


def attribute_leaf(leaf) -> list[ServiceAttribution]:
    """Per-service attribution from a leaf controller's reading cache.

    Works on any :class:`~repro.core.leaf_controller.LeafPowerController`
    — with the estimator disabled the attribution is simply the last
    measured readings grouped by service (model means then read None).
    Sorted by descending power.
    """
    totals: dict[str, float] = {}
    weighted_conf: dict[str, float] = {}
    counts: dict[str, int] = {}
    last_cycle = getattr(leaf, "last_cycle_readings", None)
    if last_cycle is not None:
        readings = last_cycle()
    else:
        readings = [reading for _, reading in leaf._iter_last_readings()]
    for reading in readings:
        service = reading.service
        totals[service] = totals.get(service, 0.0) + reading.power_w
        weighted_conf[service] = (
            weighted_conf.get(service, 0.0)
            + reading.power_w * reading.confidence
        )
        counts[service] = counts.get(service, 0) + 1
    estimator = getattr(leaf, "estimator", None)
    rows = []
    for service, power_w in totals.items():
        confidence = (
            weighted_conf[service] / power_w if power_w > 0.0 else 1.0
        )
        model_mean = (
            estimator.service_mean_w(service)
            if estimator is not None
            else None
        )
        rows.append(
            ServiceAttribution(
                service=service,
                servers=counts[service],
                power_w=power_w,
                confidence=confidence,
                model_mean_w=model_mean,
            )
        )
    rows.sort(key=lambda row: (-row.power_w, row.service))
    return rows


def render_attribution(
    device_name: str, rows: list[ServiceAttribution]
) -> str:
    """Aligned text table for the ``repro attribute`` CLI."""
    # Imported here: repro.analysis pulls in the full scenario stack,
    # which would close an import cycle back into the leaf controller.
    from repro.analysis.report import Table

    table = Table(
        f"Per-service power attribution: {device_name}",
        ["service", "servers", "power", "share", "confidence", "model mean"],
    )
    total_w = sum(row.power_w for row in rows)
    for row in rows:
        share = row.power_w / total_w if total_w > 0.0 else 0.0
        table.add_row(
            row.service,
            row.servers,
            f"{row.power_w:.1f} W",
            f"{share:.1%}",
            f"{row.confidence:.2f}",
            "-" if row.model_mean_w is None else f"{row.model_mean_w:.1f} W",
        )
    table.add_row("total", sum(r.servers for r in rows), f"{total_w:.1f} W",
                  "100.0%", "", "")
    return table.render()
