"""Online power disaggregation for degraded sensing (WattScope-style).

When a leaf controller loses more than the paper's tolerated fraction of
its power pulls, the sum-of-servers aggregate is gone — but the device
itself is still metered (breaker-side metering exists in every
deployment; the paper only dismisses it as too *slow* for control, not
as absent).  :class:`PowerDisaggregator` turns that one aggregate number
back into per-server readings:

1. **Fit** — during healthy operation every measured reading updates a
   per-service EWMA of mean server power, and a per-service EWMA of the
   model's own relative prediction error (computed by predicting each
   reading before consuming it — continuous self-validation for free).
2. **Disaggregate** — on sensor loss, the residual
   ``device metering − overheads − Σ measured − Σ stale`` is distributed
   across the dark servers proportionally to their model predictions
   (last measured power scaled by the service mean's drift since that
   measurement, falling back to the service mean, then to a generic
   default).  The estimates sum to the residual by construction, so the
   reconstructed total matches the metered truth up to sensor noise on
   the measured fraction.
3. **Confidence** — every estimate carries
   ``clamp(1 − fit error, min_confidence, MAX)`` from its service
   model.  The aggregation stage inflates the total by
   ``uncertainty_inflation × Σ power·(1 − confidence)`` so degraded
   sensing can only over-cap, never under-cap.

Everything here is deterministic and draw-free: no RNG stream is
touched, so enabling the estimator leaves fully healthy runs
bit-identical (golden-fingerprint parity) and scalar/vectorized control
lanes agree so long as they feed observations in the same order — which
both do (broadcast position order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.config import EstimationConfig

#: Confidence ceiling for anything that is not a direct measurement.
MAX_ESTIMATE_CONFIDENCE = 0.99

#: Confidence assigned while a service model has no validated history.
UNVALIDATED_CONFIDENCE = 0.5


@dataclass
class ServiceModel:
    """EWMA power model for one service."""

    mean_power_w: float = 0.0
    #: EWMA of |prediction − measurement| / measurement; None until the
    #: first self-validation.
    ewma_rel_error: float | None = None
    observed_cycles: int = 0


@dataclass
class ServerState:
    """Last measurement for one server, with its model basis."""

    last_power_w: float
    #: The service mean at the end of the cycle that measured this
    #: server; predictions scale ``last_power_w`` by the mean's drift
    #: since then.
    basis_mean_w: float
    service: str


@dataclass(frozen=True)
class ServerEstimate:
    """One dark server's share of the disaggregated residual."""

    server_id: str
    power_w: float
    confidence: float
    service: str


def uncertainty_margin_w(
    readings: Iterable, inflation: float
) -> float:
    """Aggregate safety margin from per-reading confidence.

    Left-to-right sum of ``power · (1 − confidence)`` over readings with
    confidence below 1.0 (skipping full-confidence readings keeps the
    addition sequence identical between the scalar lane, which passes
    the full reading list, and the batched lane, which passes only the
    stale + estimated tails).
    """
    margin = 0.0
    for reading in readings:
        if reading.confidence < 1.0:
            margin += reading.power_w * (1.0 - reading.confidence)
    return margin * inflation


class PowerDisaggregator:
    """Per-service power models plus residual distribution.

    One instance per leaf controller.  ``observe_cycle`` must see every
    *measured* reading of a cycle exactly once, in a deterministic
    order, in every cycle the estimator is enabled — healthy cycles are
    where the models train.
    """

    def __init__(self, config: EstimationConfig) -> None:
        self.config = config
        self._services: dict[str, ServiceModel] = {}
        self._servers: dict[str, ServerState] = {}

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def observe_cycle(
        self, observations: Iterable[tuple[str, float, str]]
    ) -> None:
        """Consume one cycle's measured ``(server_id, power_w, service)``.

        Scalar accumulation in iteration order: both control lanes feed
        broadcast position order, so the fitted floats are bit-identical
        across backends.
        """
        alpha = self.config.ewma_alpha
        cycle_sum: dict[str, float] = {}
        cycle_count: dict[str, int] = {}
        observed: list[tuple[str, float, str]] = []
        for server_id, power_w, service in observations:
            # Self-validate before consuming: what would the model have
            # said about this server had the pull failed?
            prediction = self.predict_w(server_id)
            if prediction is not None and power_w > 0.0:
                model = self._services.setdefault(service, ServiceModel())
                rel = abs(prediction - power_w) / power_w
                if model.ewma_rel_error is None:
                    model.ewma_rel_error = rel
                else:
                    model.ewma_rel_error = (
                        alpha * rel + (1.0 - alpha) * model.ewma_rel_error
                    )
            cycle_sum[service] = cycle_sum.get(service, 0.0) + power_w
            cycle_count[service] = cycle_count.get(service, 0) + 1
            observed.append((server_id, power_w, service))
        for service, total in cycle_sum.items():
            model = self._services.setdefault(service, ServiceModel())
            cycle_mean = total / cycle_count[service]
            if model.observed_cycles == 0:
                model.mean_power_w = cycle_mean
            else:
                model.mean_power_w = (
                    alpha * cycle_mean + (1.0 - alpha) * model.mean_power_w
                )
            model.observed_cycles += 1
        for server_id, power_w, service in observed:
            self._servers[server_id] = ServerState(
                last_power_w=power_w,
                basis_mean_w=self._services[service].mean_power_w,
                service=service,
            )

    # ------------------------------------------------------------------
    # Prediction / confidence
    # ------------------------------------------------------------------

    def predict_w(self, server_id: str) -> float | None:
        """Model prediction for one server, or None without history.

        The server's last measurement scaled by its service mean's
        drift since that measurement — a util→power proxy: when the
        service-wide load rises 10%, the dark server likely did too.
        """
        state = self._servers.get(server_id)
        if state is None:
            return None
        model = self._services.get(state.service)
        if (
            model is not None
            and model.mean_power_w > 0.0
            and state.basis_mean_w > 0.0
        ):
            return state.last_power_w * (
                model.mean_power_w / state.basis_mean_w
            )
        if state.last_power_w > 0.0:
            return state.last_power_w
        return None

    def service_mean_w(self, service: str) -> float | None:
        """Fitted mean power for one service, or None."""
        model = self._services.get(service)
        if model is None or model.observed_cycles == 0:
            return None
        return model.mean_power_w

    def confidence(self, service: str) -> float:
        """Estimate confidence for one service, from its fit error."""
        model = self._services.get(service)
        if model is None or model.ewma_rel_error is None:
            return max(UNVALIDATED_CONFIDENCE, self.config.min_confidence)
        return min(
            MAX_ESTIMATE_CONFIDENCE,
            max(self.config.min_confidence, 1.0 - model.ewma_rel_error),
        )

    def stale_confidence(self, age_s: float, ttl_s: float) -> float:
        """Confidence of a cache hit, decaying linearly with age."""
        if ttl_s <= 0.0:
            return self.config.min_confidence
        decayed = 1.0 - (age_s / ttl_s) * (1.0 - self.config.min_confidence)
        return min(
            MAX_ESTIMATE_CONFIDENCE,
            max(self.config.min_confidence, decayed),
        )

    # ------------------------------------------------------------------
    # Disaggregation
    # ------------------------------------------------------------------

    def disaggregate(
        self, residual_w: float, dark: list[tuple[str, str]]
    ) -> list[ServerEstimate]:
        """Distribute the aggregate residual across dark servers.

        ``dark`` is ``[(server_id, service), ...]`` in the caller's
        deterministic order.  Weights are model predictions with the
        service mean, then the configured default, as fallbacks; a
        non-positive residual yields zero-power estimates (the metering
        says the dark servers draw nothing).
        """
        if not dark:
            return []
        weights: list[float] = []
        for server_id, service in dark:
            weight = self.predict_w(server_id)
            if weight is None:
                weight = self.service_mean_w(service)
            if weight is None or weight <= 0.0:
                weight = self.config.default_power_w
            weights.append(weight)
        total_weight = 0.0
        for weight in weights:
            total_weight += weight
        residual = max(residual_w, 0.0)
        estimates: list[ServerEstimate] = []
        for (server_id, service), weight in zip(dark, weights):
            share = weight / total_weight if total_weight > 0.0 else (
                1.0 / len(dark)
            )
            estimates.append(
                ServerEstimate(
                    server_id=server_id,
                    power_w=residual * share,
                    confidence=self.confidence(service),
                    service=service,
                )
            )
        return estimates

    # ------------------------------------------------------------------
    # Introspection / snapshots
    # ------------------------------------------------------------------

    @property
    def services(self) -> dict[str, ServiceModel]:
        """Fitted per-service models (live view)."""
        return self._services

    @property
    def servers(self) -> dict[str, ServerState]:
        """Per-server last-measurement state (live view)."""
        return self._servers

    def snapshot_state(self) -> dict:
        """Serializable model state (config is rebuilt by recipe)."""
        return {
            "services": {
                name: {
                    "mean_power_w": model.mean_power_w,
                    "ewma_rel_error": model.ewma_rel_error,
                    "observed_cycles": model.observed_cycles,
                }
                for name, model in self._services.items()
            },
            "servers": {
                server_id: {
                    "last_power_w": state.last_power_w,
                    "basis_mean_w": state.basis_mean_w,
                    "service": state.service,
                }
                for server_id, state in self._servers.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore fitted models in place."""
        self._services = {
            name: ServiceModel(
                mean_power_w=float(model["mean_power_w"]),
                ewma_rel_error=(
                    None
                    if model["ewma_rel_error"] is None
                    else float(model["ewma_rel_error"])
                ),
                observed_cycles=int(model["observed_cycles"]),
            )
            for name, model in state["services"].items()
        }
        self._servers = {
            server_id: ServerState(
                last_power_w=float(entry["last_power_w"]),
                basis_mean_w=float(entry["basis_mean_w"]),
                service=str(entry["service"]),
            )
            for server_id, entry in state["servers"].items()
        }

    def __repr__(self) -> str:
        return (
            f"PowerDisaggregator(services={len(self._services)}, "
            f"servers={len(self._servers)})"
        )
