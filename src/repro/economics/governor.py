"""The EconomicGovernor: shape deferrable demand into cheap/clean hours.

The governor sits *above* the controller hierarchy and runs on a slow
cadence (minutes, vs seconds for the leaves).  Each tick it:

1. Scores the moment: price and carbon signals are normalized against
   their own envelopes and blended into one expensive/dirty score.
2. Water-fills a shaped power budget over the service priority groups.
   Every group first receives its SLA floor (the per-server minimum cap
   the registry already defines), then remaining budget pours into the
   highest-priority groups first — so the lowest group (batch: hadoop,
   f4storage) is what actually gets squeezed during expensive hours,
   exactly the group whose work can wait.
3. Actuates only *advisory*, never-loosening knobs: batch servers get a
   :class:`~repro.workloads.events.DeferModifier` utilization ceiling
   and their Turbo grants revoked, and leaf controllers receive
   proportionally tightened three-band configs via the existing
   ``set_band_config`` seam.  Scaling all three thresholds by a factor
   in (0, 1] keeps the band ordering invariants, and the scale is
   clamped to at most ``max_shaping`` below baseline — the governor can
   only make controllers cap *earlier*, never later.
4. Books the interval in the :class:`~repro.economics.ledger.CostCarbonLedger`.

Safety precedence is structural, not best-effort: a leaf whose
operating mode is not NORMAL (degraded sensing, SAFE fail-safe) has its
baseline band restored and receives no shaping until it recovers, and
deferral is force-released (and booked as an SLA-deadline miss) once a
batch deadline window has spent its allowed deferral budget.

A governor built with ``shaping=False`` meters without actuating — the
price-blind baseline with an identical physics trajectory, which is
what the scorecard comparisons and the econ benchmark lean on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.config import EconomicsConfig, ThreeBandConfig
from repro.core.health import OperatingMode
from repro.economics.ledger import CostCarbonLedger
from repro.economics.signals import get_signal, normalized_score
from repro.errors import ConfigurationError
from repro.simulation.process import PeriodicProcess
from repro.workloads.events import DeferModifier
from repro.workloads.registry import service_spec

if TYPE_CHECKING:
    from repro.core.controller import PowerController
    from repro.core.dynamo import Dynamo
    from repro.fleet import Fleet
    from repro.simulation.engine import SimulationEngine

# Between the chaos injector (2) and the leaf controllers (10): the
# governor adjusts bands before the leaves tick at the same instant,
# and never preempts the fleet physics step (0).
PRIORITY_GOVERNOR = 8

# Smoothing for the batch-group power baseline used in deferred-energy
# accounting; slow enough to ride out workload noise at minute cadence.
_EWMA_ALPHA = 0.2

# Allowance this close to 1.0 is "not squeezed" — avoids flapping the
# deferral state on float dust.
_ALLOWANCE_EPS = 1e-3


@dataclass(frozen=True)
class GroupDemand:
    """One priority group's momentary demand and SLA floor, in watts."""

    group: int
    demand_w: float
    floor_w: float

    def __post_init__(self) -> None:
        if self.demand_w < 0 or self.floor_w < 0:
            raise ConfigurationError("group demand/floor cannot be negative")


def water_fill(
    groups: list[GroupDemand], budget_w: float
) -> dict[int, float]:
    """Allocate ``budget_w`` over priority groups, SLA floors first.

    Two passes, both highest-priority-group first (larger group number =
    higher priority, matching the leaf controllers' cap-lowest-first
    convention): every group first claims ``min(floor, demand)``, then
    the remainder pours until each group reaches its full demand.  The
    lowest group is therefore the first to be starved of
    headroom-above-floor — the batch work the governor exists to defer.
    """
    allocation = {g.group: 0.0 for g in groups}
    remaining = max(0.0, budget_w)
    ordered = sorted(groups, key=lambda g: g.group, reverse=True)
    for g in ordered:
        take = min(g.floor_w, g.demand_w, remaining)
        allocation[g.group] += take
        remaining -= take
    for g in ordered:
        take = min(g.demand_w - allocation[g.group], remaining)
        if take > 0.0:
            allocation[g.group] += take
            remaining -= take
    return allocation


def _active_instance(controller: "PowerController") -> Any:
    """Unwrap a failover pair to the instance currently in control."""
    return getattr(controller, "active", controller)


class EconomicGovernor:
    """Price/carbon-aware shaper above the upper controllers."""

    def __init__(
        self,
        engine: "SimulationEngine",
        dynamo: "Dynamo",
        fleet: "Fleet",
        *,
        config: EconomicsConfig | None = None,
        shaping: bool = True,
    ) -> None:
        config = config if config is not None else dynamo.config.economics
        if not config.enabled:
            raise ConfigurationError(
                "economics is disabled in this DynamoConfig; build the "
                "world with EconomicsConfig(enabled=True) to attach a "
                "governor"
            )
        self.config = config
        self.dynamo = dynamo
        self.fleet = fleet
        self.shaping = shaping
        self.price = get_signal(config.price_signal)
        self.carbon = get_signal(config.carbon_signal)
        self.ledger = CostCarbonLedger()
        # Baseline three-band configs, captured before any shaping, so
        # the governor always knows what "unshaped" means per leaf.
        self._baseline_bands: dict[str, ThreeBandConfig] = {
            name: _active_instance(ctrl).band.config
            for name, ctrl in sorted(
                dynamo.hierarchy.leaf_controllers.items()
            )
        }
        self._applied_scale: dict[str, float] = {}
        self._deferring = False
        self._turbo_disabled: list[str] = []
        self._window_start_s = float(engine.clock.now)
        self._window_deferred_s = 0.0
        self._window_missed = False
        self._group0_ewma_w = 0.0
        self.last_score = 0.0
        self.process = PeriodicProcess(
            engine,
            config.governor_interval_s,
            self._tick,
            label="econ-governor",
            priority=PRIORITY_GOVERNOR,
        )
        dynamo.economics = self

    def start(self, phase: float = 0.0) -> None:
        """Begin governing."""
        self.process.start(phase)

    def stop(self) -> None:
        """Stop governing; applied shaping stays in place."""
        self.process.stop()

    @property
    def deferring(self) -> bool:
        """Whether a deferral window is currently open."""
        return self._deferring

    @property
    def applied_scale(self) -> dict[str, float]:
        """Per-leaf band scales currently in force (a copy)."""
        return dict(self._applied_scale)

    # ------------------------------------------------------------------
    # The governing tick
    # ------------------------------------------------------------------

    def _tick(self, now_s: float) -> None:
        cfg = self.config
        price_n = normalized_score(self.price, now_s)
        carbon_n = normalized_score(self.carbon, now_s)
        weight_sum = cfg.price_weight + cfg.carbon_weight
        score = (
            cfg.price_weight * price_n + cfg.carbon_weight * carbon_n
        ) / weight_sum
        self.last_score = score
        excess = max(0.0, score - cfg.shape_threshold) / (
            1.0 - cfg.shape_threshold
        )
        interval_s = self.process.interval_s

        # Roll the SLA deadline window.
        while now_s - self._window_start_s >= cfg.sla_deadline_s:
            self._window_start_s += cfg.sla_deadline_s
            self._window_deferred_s = 0.0
            self._window_missed = False

        groups = self._group_demands()
        total_w = sum(g.demand_w for g in groups)
        budget_w = total_w * (1.0 - cfg.max_shaping * excess)
        allocation = water_fill(groups, budget_w)
        allowance = {
            g.group: (
                allocation[g.group] / g.demand_w if g.demand_w > 0 else 1.0
            )
            for g in groups
        }

        want_defer = (
            self.shaping
            and excess > 0.0
            and allowance.get(0, 1.0) < 1.0 - _ALLOWANCE_EPS
        )
        # SLA deadline floor: once this window has spent its deferral
        # budget, batch work must run regardless of price.
        defer_budget_s = cfg.sla_max_defer_fraction * cfg.sla_deadline_s
        if want_defer and (
            self._window_deferred_s + interval_s > defer_budget_s
        ):
            want_defer = False
            if not self._window_missed:
                self._window_missed = True
                self.ledger.sla_deadline_misses += 1

        if want_defer and not self._deferring:
            self._start_deferral()
            self.ledger.defer_windows += 1
        elif self._deferring and not want_defer:
            self._end_deferral()
        if self._deferring:
            self._window_deferred_s += interval_s

        # Deferred-energy accounting: while deferring, the gap between
        # the batch group's smoothed undeferred draw and its actual draw
        # is energy shifted out of this (expensive) window.
        group0_w = sum(
            g.demand_w for g in groups if g.group == 0
        )
        if self._deferring:
            avoided_w = max(0.0, self._group0_ewma_w - group0_w)
            self.ledger.deferred_energy_kwh += (
                avoided_w * interval_s / 3_600_000.0
            )
        elif group0_w > 0.0:
            if self._group0_ewma_w == 0.0:
                self._group0_ewma_w = group0_w
            else:
                self._group0_ewma_w += _EWMA_ALPHA * (
                    group0_w - self._group0_ewma_w
                )

        shaped = False
        if self.shaping:
            shaped = self._apply_bands(allowance)

        self.ledger.record(
            time_s=now_s,
            interval_s=interval_s,
            power_w=self.fleet.total_power_w(),
            price_per_kwh=self.price.value(now_s),
            carbon_g_per_kwh=self.carbon.value(now_s),
            score=score,
            shaped=shaped or self._deferring,
            deferring=self._deferring,
        )

    def _group_demands(self) -> list[GroupDemand]:
        """Momentary per-priority-group demand and SLA floors."""
        demand: dict[int, float] = {}
        floor: dict[int, float] = {}
        for _, server in sorted(self.fleet.servers.items()):
            spec = service_spec(server.service)
            power = server.power_w()
            group = spec.priority_group
            demand[group] = demand.get(group, 0.0) + power
            floor[group] = floor.get(group, 0.0) + min(
                power, spec.sla_min_cap_w
            )
        return [
            GroupDemand(group=g, demand_w=demand[g], floor_w=floor[g])
            for g in sorted(demand)
        ]

    # ------------------------------------------------------------------
    # Actuation: batch deferral
    # ------------------------------------------------------------------

    def _deferrable_servers(self) -> list[tuple[str, Any]]:
        """(id, server) pairs in priority group 0, id-sorted."""
        return [
            (server_id, server)
            for server_id, server in sorted(self.fleet.servers.items())
            if service_spec(server.service).priority_group == 0
        ]

    def _start_deferral(self) -> None:
        modifier = DeferModifier(ceiling=self.config.defer_ceiling)
        self._turbo_disabled = []
        for server_id, server in self._deferrable_servers():
            server.workload.add_modifier(modifier)
            if server.turbo.enabled:
                server.turbo.disable()
                self._turbo_disabled.append(server_id)
        self._deferring = True

    def _end_deferral(self) -> None:
        modifier = DeferModifier(ceiling=self.config.defer_ceiling)
        for _, server in self._deferrable_servers():
            # Modifiers compare by value (frozen dataclass), so removal
            # finds the instance added at deferral start; guard anyway
            # in case a snapshot/restore rebuilt the list differently.
            if modifier in server.workload._modifiers:
                server.workload.remove_modifier(modifier)
        for server_id in self._turbo_disabled:
            server = self.fleet.servers.get(server_id)
            if server is not None:
                server.turbo.enable()
        self._turbo_disabled = []
        self._deferring = False

    # ------------------------------------------------------------------
    # Actuation: advisory bands
    # ------------------------------------------------------------------

    def _leaf_scale(self, name: str, allowance: dict[int, float]) -> float:
        """The band scale for one leaf: power-weighted group allowance."""
        instance = _active_instance(
            self.dynamo.hierarchy.leaf_controllers[name]
        )
        if instance.modes.mode is not OperatingMode.NORMAL:
            # Degraded/SAFE posture wins: restore the baseline band and
            # stand back until the controller recovers.
            return 1.0
        weighted = 0.0
        total = 0.0
        for server_id in instance.server_ids:
            server = self.fleet.servers.get(server_id)
            if server is None:
                continue
            power = server.power_w()
            group = service_spec(server.service).priority_group
            weighted += power * allowance.get(group, 1.0)
            total += power
        scale = weighted / total if total > 0.0 else 1.0
        scale = max(1.0 - self.config.max_shaping, min(1.0, scale))
        # Quantize to 1% steps: workload noise wiggles the power
        # weighting every tick, and sub-percent band churn is all cost
        # (a replacement per leaf per tick) and no control value.
        return round(scale, 2)

    def _scaled_band(self, name: str, scale: float) -> ThreeBandConfig:
        base = self._baseline_bands[name]
        if scale >= 1.0:
            return base
        return ThreeBandConfig(
            capping_threshold=base.capping_threshold * scale,
            capping_target=base.capping_target * scale,
            uncapping_threshold=base.uncapping_threshold * scale,
        )

    def _apply_bands(self, allowance: dict[int, float]) -> bool:
        shaped = False
        for name in self._baseline_bands:
            scale = self._leaf_scale(name, allowance)
            if scale < 1.0:
                shaped = True
            if abs(scale - self._applied_scale.get(name, 1.0)) < 1e-9:
                continue
            self.dynamo.set_band_config(name, self._scaled_band(name, scale))
            self._applied_scale[name] = scale
            self.ledger.band_adjustments += 1
        return shaped

    # ------------------------------------------------------------------
    # Snapshot/restore
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Serialize governor + ledger state for bit-exact resume.

        The process schedule itself is captured by the world process
        registry (label ``econ-governor``), alongside every other
        periodic process.
        """
        return {
            "ledger": self.ledger.snapshot_state(),
            "applied_scale": dict(self._applied_scale),
            "deferring": self._deferring,
            "turbo_disabled": list(self._turbo_disabled),
            "window_start_s": self._window_start_s,
            "window_deferred_s": self._window_deferred_s,
            "window_missed": self._window_missed,
            "group0_ewma_w": self._group0_ewma_w,
            "last_score": self.last_score,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore governor state and reapply shaped bands.

        Controller snapshots capture band *hysteresis* but not band
        *config* — a restored world holds builder-fresh baseline bands —
        so any scale the governor had in force must be reapplied here.
        Deferral modifiers and Turbo posture are NOT reapplied: server
        snapshots already restore workload modifiers and turbo state.
        """
        self.ledger.restore_state(state["ledger"])
        self._applied_scale = {
            str(k): float(v) for k, v in state["applied_scale"].items()
        }
        self._deferring = bool(state["deferring"])
        self._turbo_disabled = [str(s) for s in state["turbo_disabled"]]
        self._window_start_s = float(state["window_start_s"])
        self._window_deferred_s = float(state["window_deferred_s"])
        self._window_missed = bool(state["window_missed"])
        self._group0_ewma_w = float(state["group0_ewma_w"])
        self.last_score = float(state["last_score"])
        for name, scale in sorted(self._applied_scale.items()):
            if name in self._baseline_bands and scale < 1.0:
                self.dynamo.set_band_config(
                    name, self._scaled_band(name, scale)
                )


__all__ = ["PRIORITY_GOVERNOR", "EconomicGovernor", "GroupDemand", "water_fill"]
