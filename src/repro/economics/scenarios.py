"""Recipe-built economics worlds (the ``repro econ`` scenarios).

An economics scenario is the quickstart deployment plus a batch tier
worth shifting: hadoop servers (priority group 0, Turbo granted) ride
alongside the web and cache tiers, and an
:class:`~repro.economics.governor.EconomicGovernor` governs against a
named price/carbon signal pair.  Building with ``governed=False``
attaches a metering-only governor — the price-blind baseline with an
identical physics trajectory, so governed-vs-blind comparisons isolate
exactly what shaping changed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DynamoConfig, EconomicsConfig
from repro.core.dynamo import Dynamo
from repro.economics.governor import EconomicGovernor
from repro.errors import ConfigurationError
from repro.fleet import FleetDriver, ServiceAllocation, populate_fleet
from repro.power.builder import DataCenterSpec, build_datacenter
from repro.power.oversubscription import plan_quotas
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams
from repro.state.worlds import World
from repro.units import SECONDS_PER_DAY


@dataclass(frozen=True)
class EconScenario:
    """One named price/carbon day for the governor to run against."""

    name: str
    price_signal: str
    carbon_signal: str
    end_s: float = SECONDS_PER_DAY
    description: str = ""

    def __post_init__(self) -> None:
        if self.end_s <= 0:
            raise ConfigurationError("scenario must have positive duration")


ECON_SCENARIOS: dict[str, EconScenario] = {
    "flat-day": EconScenario(
        "flat-day",
        price_signal="price-flat",
        carbon_signal="carbon-flat",
        description="flat price and carbon: the governor should not act",
    ),
    "diurnal-day": EconScenario(
        "diurnal-day",
        price_signal="price-diurnal",
        carbon_signal="carbon-diurnal",
        description="ordinary diurnal price and carbon cycles",
    ),
    "price-spike-day": EconScenario(
        "price-spike-day",
        price_signal="price-spike-day",
        carbon_signal="carbon-diurnal",
        description="diurnal day with morning and evening price spikes",
    ),
    "carbon-spike-day": EconScenario(
        "carbon-spike-day",
        price_signal="price-diurnal",
        carbon_signal="carbon-spike-day",
        description="a dirty-grid morning (coal covering a wind lull)",
    ),
}


def get_econ_scenario(name: str) -> EconScenario:
    """Look up a named economics scenario."""
    try:
        return ECON_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(ECON_SCENARIOS))
        raise ConfigurationError(
            f"unknown econ scenario {name!r}; known: {known}"
        ) from None


def build_econ_world(
    scenario: str = "price-spike-day",
    seed: int = 0,
    governed: bool = True,
    physics_backend: str = "scalar",
    control_backend: str = "scalar",
) -> World:
    """Build an economics world, armed and started at t=0.

    The quickstart topology with a deferrable batch tier: 16 web +
    8 cache servers plus 12 hadoop servers with Turbo granted — the
    headroom the governor can revoke during expensive hours.
    """
    spec = get_econ_scenario(scenario)
    engine = SimulationEngine()
    topology = build_datacenter(
        DataCenterSpec(
            msb_count=1, sbs_per_msb=2, rpps_per_sb=2, racks_per_rpp=3
        )
    )
    plan_quotas(topology)
    rng = RngStreams(seed)
    fleet = populate_fleet(
        topology,
        [
            ServiceAllocation("web", 16),
            ServiceAllocation("cache", 8),
            ServiceAllocation("hadoop", 12, turbo_enabled=True),
        ],
        rng,
    )
    config = DynamoConfig(
        economics=EconomicsConfig(
            enabled=True,
            price_signal=spec.price_signal,
            carbon_signal=spec.carbon_signal,
        )
    )
    dynamo = Dynamo(
        engine, topology, fleet, config=config, rng_streams=rng.fork("dynamo")
    )
    driver = FleetDriver(
        engine, topology, fleet, physics_backend=physics_backend
    )
    if control_backend == "vectorized":
        dynamo.enable_vectorized_control(driver)
    governor = EconomicGovernor(engine, dynamo, fleet, shaping=governed)
    driver.start()
    dynamo.start()
    governor.start()
    return World(
        recipe={
            "builder": "econ",
            "kwargs": {
                "scenario": scenario,
                "seed": seed,
                "governed": governed,
                "physics_backend": physics_backend,
                "control_backend": control_backend,
            },
        },
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        rng=rng,
        governor=governor,
        extras={"scenario": scenario, "end_s": spec.end_s},
    )


def run_econ_day(
    scenario: str = "price-spike-day",
    *,
    seed: int = 0,
    governed: bool = True,
    duration_s: float | None = None,
    physics_backend: str = "scalar",
    control_backend: str = "scalar",
) -> World:
    """Build an economics world and run it to the scenario's end."""
    world = build_econ_world(
        scenario=scenario,
        seed=seed,
        governed=governed,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )
    end_s = duration_s if duration_s is not None else world.extras["end_s"]
    world.run_until(float(end_s))
    return world


__all__ = [
    "ECON_SCENARIOS",
    "EconScenario",
    "build_econ_world",
    "get_econ_scenario",
    "run_econ_day",
]
