"""Electricity-price and grid-carbon-intensity signals.

The signals layer plays the same role for the economics subsystem that
the workload registry plays for the fleet: deterministic, named time
series that scenarios compose.  A signal is a pure function of
simulation time — constructed once, never mutated — so it needs no
snapshot state and two runs of the same scenario read identical series.

Three shapes cover what grid data actually looks like:

* :class:`DiurnalSignal` — a raised-cosine daily cycle between a low
  and a high (day-ahead prices peak in the evening; carbon intensity
  sags at midday when solar is on the grid), optionally decorated with
  :class:`SpikeEvent` excursions (scarcity pricing, a coal plant
  covering a lull).
* :func:`seeded_spikes` — deterministic, seedable spike schedules for
  scenario authoring.
* :class:`ReplaySignal` — replay a recorded ``time_s,value`` CSV trace
  (day-ahead market data, a grid operator's carbon feed) with linear
  interpolation and optional looping, mirroring
  :class:`~repro.workloads.replay.TraceWorkload`.
"""

from __future__ import annotations

import bisect
import csv
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.analysis.report import Table
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY, format_duration, hours


@runtime_checkable
class EconomicSignal(Protocol):
    """A named, unit-carrying time series the governor can score."""

    name: str
    unit: str

    def value(self, now_s: float) -> float:
        """The signal value at simulation time ``now_s``."""
        ...

    def bounds(self) -> tuple[float, float]:
        """(low, high) envelope used to normalize values into [0, 1]."""
        ...


@dataclass(frozen=True)
class SpikeEvent:
    """One additive excursion on top of a signal's base shape.

    The contribution is a trapezoid: zero outside
    ``[start_s, start_s + duration_s]``, linear ramps of ``ramp_s`` at
    each edge, ``magnitude`` in between.  Negative magnitudes model
    sags (a wind surge crashing prices).
    """

    start_s: float
    duration_s: float
    magnitude: float
    ramp_s: float = 600.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("spike duration must be positive")
        if self.ramp_s < 0:
            raise ConfigurationError("spike ramp cannot be negative")

    def contribution(self, now_s: float) -> float:
        """The spike's additive value at ``now_s``."""
        end_s = self.start_s + self.duration_s
        if now_s <= self.start_s or now_s >= end_s:
            return 0.0
        envelope = 1.0
        if self.ramp_s > 0.0 and now_s < self.start_s + self.ramp_s:
            envelope = (now_s - self.start_s) / self.ramp_s
        elif self.ramp_s > 0.0 and now_s > end_s - self.ramp_s:
            envelope = (end_s - now_s) / self.ramp_s
        return self.magnitude * envelope


class DiurnalSignal:
    """A daily raised-cosine series between ``low`` and ``high``.

    The same shape the user-facing workloads follow
    (:class:`~repro.workloads.diurnal.DiurnalShape`), re-used for grid
    quantities: ``value`` peaks at ``peak_time_s`` (seconds after
    midnight, day-periodic) and troughs half a day away.  ``low ==
    high`` yields a flat signal that never drives shaping.  Spikes are
    anchored to absolute simulation time, not the daily cycle.
    """

    def __init__(
        self,
        name: str,
        unit: str,
        low: float,
        high: float,
        *,
        peak_time_s: float = hours(18),
        spikes: Sequence[SpikeEvent] = (),
    ) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(
                "need 0 <= low <= high for a diurnal signal"
            )
        self.name = name
        self.unit = unit
        self.low = low
        self.high = high
        self.peak_time_s = peak_time_s
        self.spikes: tuple[SpikeEvent, ...] = tuple(spikes)

    def base_value(self, now_s: float) -> float:
        """The spike-free daily cycle at ``now_s`` (periodic over 24 h)."""
        phase = 2.0 * math.pi * (now_s - self.peak_time_s) / SECONDS_PER_DAY
        blend = (1.0 + math.cos(phase)) / 2.0
        return self.low + (self.high - self.low) * blend

    def value(self, now_s: float) -> float:
        """Daily cycle plus any active spike contributions, floored at 0."""
        value = self.base_value(now_s)
        for spike in self.spikes:
            value += spike.contribution(now_s)
        return max(0.0, value)

    def bounds(self) -> tuple[float, float]:
        """The spike-free daily envelope (low, high).

        Deliberately excludes spikes: normalization measures a moment
        against the *ordinary* day, so a scarcity spike saturates the
        normalized score at 1.0 instead of re-scaling the whole day
        into blandness.
        """
        return (self.low, self.high)

    def __repr__(self) -> str:
        return (
            f"DiurnalSignal({self.name!r}, {self.low}..{self.high} "
            f"{self.unit}, {len(self.spikes)} spikes)"
        )


def seeded_spikes(
    seed: int,
    *,
    count: int = 2,
    magnitude: float = 0.15,
    duration_s: float = hours(2),
    window_s: tuple[float, float] = (hours(6), hours(22)),
    magnitude_jitter: float = 0.3,
    ramp_s: float = 600.0,
) -> tuple[SpikeEvent, ...]:
    """A deterministic spike schedule drawn from a seeded generator.

    Start times are uniform over ``window_s`` and magnitudes jittered
    by up to ``±magnitude_jitter`` (relative), so scenario authors get
    varied but exactly reproducible spike days from an integer seed.
    """
    if count < 0:
        raise ConfigurationError("spike count cannot be negative")
    lo, hi = window_s
    if hi <= lo:
        raise ConfigurationError("spike window must have positive span")
    rng = np.random.default_rng(seed)
    spikes = []
    for _ in range(count):
        start_s = float(rng.uniform(lo, hi))
        jitter = 1.0 + magnitude_jitter * float(rng.uniform(-1.0, 1.0))
        spikes.append(
            SpikeEvent(
                start_s=start_s,
                duration_s=duration_s,
                magnitude=magnitude * jitter,
                ramp_s=ramp_s,
            )
        )
    return tuple(sorted(spikes, key=lambda s: s.start_s))


class ReplaySignal:
    """Replays a recorded (time, value) trace as a signal.

    Linear interpolation between samples; with ``loop=True`` simulation
    time wraps around the trace span, so a one-day trace drives
    arbitrarily long runs with a continuous day boundary whenever the
    trace's first and last values agree.
    """

    def __init__(
        self,
        name: str,
        unit: str,
        times: Sequence[float],
        values: Sequence[float],
        *,
        interpolate: bool = True,
        loop: bool = True,
    ) -> None:
        if len(times) == 0 or len(times) != len(values):
            raise ConfigurationError(
                "replay signal needs matching, non-empty times and values"
            )
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError(
                "replay signal times must be strictly increasing"
            )
        if any(v < 0 for v in values):
            raise ConfigurationError("replay signal values cannot be negative")
        self.name = name
        self.unit = unit
        self._times = [float(t) for t in times]
        self._values = [float(v) for v in values]
        self._interpolate = interpolate
        self._loop = loop
        self._span = self._times[-1] - self._times[0]

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        *,
        name: str | None = None,
        unit: str = "",
        interpolate: bool = True,
        loop: bool = True,
    ) -> "ReplaySignal":
        """Load a two-column ``time_s,value`` CSV (header optional)."""
        csv_path = Path(path)
        times: list[float] = []
        values: list[float] = []
        with csv_path.open(newline="", encoding="utf-8") as handle:
            for row in csv.reader(handle):
                if not row or row[0].strip().startswith("#"):
                    continue
                try:
                    t, v = float(row[0]), float(row[1])
                except (IndexError, ValueError):
                    if not times:
                        continue  # header row
                    raise ConfigurationError(
                        f"malformed trace row in {csv_path}: {row!r}"
                    ) from None
                times.append(t)
                values.append(v)
        if not times:
            raise ConfigurationError(f"no samples in trace file {csv_path}")
        return cls(
            name or csv_path.stem,
            unit,
            times,
            values,
            interpolate=interpolate,
            loop=loop,
        )

    def value(self, now_s: float) -> float:
        """The replayed value at ``now_s``."""
        t = now_s
        start = self._times[0]
        if self._loop and self._span > 0.0:
            t = start + (t - start) % self._span
        times, values = self._times, self._values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        hi = bisect.bisect_right(times, t)
        lo = hi - 1
        if not self._interpolate:
            return values[lo]
        frac = (t - times[lo]) / (times[hi] - times[lo])
        return values[lo] + (values[hi] - values[lo]) * frac

    def bounds(self) -> tuple[float, float]:
        """The trace's observed (min, max)."""
        return (min(self._values), max(self._values))

    def __repr__(self) -> str:
        lo, hi = self.bounds()
        return (
            f"ReplaySignal({self.name!r}, {len(self._times)} samples, "
            f"{lo:.3g}..{hi:.3g} {self.unit})"
        )


def normalized_score(signal: EconomicSignal, now_s: float) -> float:
    """The signal's value mapped onto [0, 1] against its own envelope.

    A flat signal (zero-width envelope) scores 0.0: a quantity that
    never varies gives the governor no reason to shift anything.
    """
    low, high = signal.bounds()
    if high <= low:
        return 0.0
    raw = (signal.value(now_s) - low) / (high - low)
    return min(1.0, max(0.0, raw))


# ---------------------------------------------------------------------------
# The named signal registry
# ---------------------------------------------------------------------------
#
# Prices in $/kWh around typical US day-ahead wholesale levels; carbon
# intensities in gCO2/kWh around a mixed-fuel grid with midday solar.
# Spike days use explicit spike times so scenario assertions (and the CI
# smoke's shortened horizon) know when shaping must engage; authors
# wanting varied days compose ``seeded_spikes`` themselves.

SIGNALS: dict[str, EconomicSignal] = {
    "price-flat": DiurnalSignal("price-flat", "$/kWh", 0.08, 0.08),
    "price-diurnal": DiurnalSignal(
        "price-diurnal", "$/kWh", 0.04, 0.14, peak_time_s=hours(18)
    ),
    "price-spike-day": DiurnalSignal(
        "price-spike-day",
        "$/kWh",
        0.04,
        0.14,
        peak_time_s=hours(18),
        spikes=(
            SpikeEvent(start_s=hours(8), duration_s=hours(2), magnitude=0.15),
            SpikeEvent(
                start_s=hours(17.5), duration_s=hours(2.5), magnitude=0.25
            ),
        ),
    ),
    "price-spike-early": DiurnalSignal(
        # A sharp spike minutes into the run, sized for short chaos
        # horizons (the chaos suite runs half-hour drills, not days).
        "price-spike-early",
        "$/kWh",
        0.04,
        0.14,
        peak_time_s=hours(18),
        spikes=(
            SpikeEvent(
                start_s=300.0, duration_s=900.0, magnitude=0.30, ramp_s=120.0
            ),
        ),
    ),
    "carbon-flat": DiurnalSignal("carbon-flat", "gCO2/kWh", 420.0, 420.0),
    "carbon-diurnal": DiurnalSignal(
        "carbon-diurnal", "gCO2/kWh", 320.0, 520.0, peak_time_s=hours(20)
    ),
    "carbon-spike-day": DiurnalSignal(
        "carbon-spike-day",
        "gCO2/kWh",
        320.0,
        520.0,
        peak_time_s=hours(20),
        spikes=(
            SpikeEvent(
                start_s=hours(7), duration_s=hours(3), magnitude=180.0
            ),
        ),
    ),
}


def get_signal(name: str) -> EconomicSignal:
    """Look up a named signal."""
    try:
        return SIGNALS[name]
    except KeyError:
        known = ", ".join(sorted(SIGNALS))
        raise ConfigurationError(
            f"unknown signal {name!r}; known: {known}"
        ) from None


def all_signal_names() -> list[str]:
    """Every registered signal name, sorted."""
    return sorted(SIGNALS)


# ---------------------------------------------------------------------------
# Summaries (the ``repro signals`` CLI)
# ---------------------------------------------------------------------------


def summarize_signal(
    signal: EconomicSignal,
    *,
    duration_s: float = SECONDS_PER_DAY,
    interval_s: float = 300.0,
    window_s: float = hours(1),
) -> dict:
    """Sample a signal and report extremes plus best/worst windows.

    The "lowest window" is the ``window_s``-long stretch with the
    smallest mean value — the cheapest (or cleanest) time to spend
    deferrable energy; the "highest window" is its mirror.
    """
    if duration_s <= 0 or interval_s <= 0 or window_s <= 0:
        raise ConfigurationError(
            "summary duration, interval, and window must be positive"
        )
    times = []
    values = []
    t = 0.0
    while t <= duration_s:
        times.append(t)
        values.append(signal.value(t))
        t += interval_s
    per_window = max(1, int(round(window_s / interval_s)))
    best_start, best_mean = 0.0, math.inf
    worst_start, worst_mean = 0.0, -math.inf
    for i in range(0, max(1, len(values) - per_window + 1)):
        mean = sum(values[i : i + per_window]) / per_window
        if mean < best_mean:
            best_start, best_mean = times[i], mean
        if mean > worst_mean:
            worst_start, worst_mean = times[i], mean
    return {
        "name": signal.name,
        "unit": signal.unit,
        "duration_s": duration_s,
        "interval_s": interval_s,
        "window_s": window_s,
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "lowest_window_start_s": best_start,
        "lowest_window_mean": best_mean,
        "highest_window_start_s": worst_start,
        "highest_window_mean": worst_mean,
    }


def render_signal_summary(summary: dict) -> str:
    """Render one :func:`summarize_signal` result as a text table."""
    unit = summary["unit"]
    table = Table(
        f"Signal summary: {summary['name']} "
        f"({format_duration(summary['duration_s'])} @ "
        f"{format_duration(summary['interval_s'])})",
        ["metric", "value"],
    )
    table.add_row("min", f"{summary['min']:.4g} {unit}")
    table.add_row("mean", f"{summary['mean']:.4g} {unit}")
    table.add_row("max", f"{summary['max']:.4g} {unit}")
    window = format_duration(summary["window_s"])
    table.add_row(
        f"lowest {window} window",
        f"starts t={format_duration(summary['lowest_window_start_s'])} "
        f"(mean {summary['lowest_window_mean']:.4g} {unit})",
    )
    table.add_row(
        f"highest {window} window",
        f"starts t={format_duration(summary['highest_window_start_s'])} "
        f"(mean {summary['highest_window_mean']:.4g} {unit})",
    )
    return table.render()


def record_signal(
    signal: EconomicSignal,
    duration_s: float,
    *,
    interval_s: float = 300.0,
) -> Iterable[tuple[float, float]]:
    """Sample a signal into (time, value) pairs (CSV export, tests)."""
    if duration_s <= 0 or interval_s <= 0:
        raise ConfigurationError("duration and interval must be positive")
    t = 0.0
    while t <= duration_s:
        yield (t, signal.value(t))
        t += interval_s
