"""The economics subsystem: price/carbon-aware headroom shaping.

Dynamo's controllers decide *how much* power to cut but never *when*
power is worth spending.  This package adds that axis on top of the
capping hierarchy, without ever loosening it:

* :mod:`repro.economics.signals` — deterministic electricity-price and
  grid-carbon-intensity time series (diurnal base + spike events, plus
  a CSV replay reader), registered by name like workloads are.
* :mod:`repro.economics.governor` — the :class:`EconomicGovernor` sits
  above the upper controllers and shapes *deferrable* demand into
  cheap/clean windows: batch workloads are deferred (utilization
  ceiling + Turbo revoked) and leaf controllers receive tightened
  advisory three-band configs, allocated by water-filling over priority
  groups with SLA deadline floors.  Breaker safety, SAFE-mode
  fail-safes, and SENSOR_DEGRADED posture always take precedence.
* :mod:`repro.economics.ledger` — the cost/carbon ledger and scorecard
  ($ and gCO₂ per interval, deferred-energy accounting, SLA-deadline
  misses), parallel to the chaos robustness scorecard.
* :mod:`repro.economics.scenarios` — recipe-built economics worlds
  (``python -m repro econ <scenario>``).
"""

from repro.economics.governor import EconomicGovernor, GroupDemand, water_fill
from repro.economics.ledger import (
    CostCarbonLedger,
    EconScore,
    build_econ_scorecard,
    render_econ_scorecard,
)
from repro.economics.scenarios import (
    ECON_SCENARIOS,
    build_econ_world,
    run_econ_day,
)
from repro.economics.signals import (
    SIGNALS,
    DiurnalSignal,
    ReplaySignal,
    SpikeEvent,
    get_signal,
    normalized_score,
    render_signal_summary,
    seeded_spikes,
    summarize_signal,
)

__all__ = [
    "ECON_SCENARIOS",
    "SIGNALS",
    "CostCarbonLedger",
    "DiurnalSignal",
    "EconScore",
    "EconomicGovernor",
    "GroupDemand",
    "ReplaySignal",
    "SpikeEvent",
    "build_econ_scorecard",
    "build_econ_world",
    "get_signal",
    "normalized_score",
    "render_econ_scorecard",
    "render_signal_summary",
    "run_econ_day",
    "seeded_spikes",
    "summarize_signal",
    "water_fill",
]
