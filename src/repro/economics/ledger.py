"""The cost/carbon ledger and scorecard.

The ledger is the economics subsystem's flight recorder: every governor
tick it books the interval's energy at the prevailing price and carbon
intensity, and tracks what the governor actually did about it (shaped
intervals, deferral windows, band adjustments, SLA-deadline misses).
The scorecard condenses a finished run into one comparable row, the
same way the chaos :class:`~repro.chaos.report.RobustnessScore` does
for fault drills — so a governed day and a price-blind day of the same
seed can sit side by side with their safety counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.analysis.report import Table
from repro.units import format_duration

if TYPE_CHECKING:
    from repro.state.worlds import World


@dataclass(frozen=True)
class LedgerSample:
    """One governor interval's booking."""

    time_s: float
    price_per_kwh: float
    carbon_g_per_kwh: float
    power_w: float
    energy_kwh: float
    cost: float
    carbon_g: float
    score: float
    shaped: bool
    deferring: bool


class CostCarbonLedger:
    """Accumulates per-interval cost/carbon bookings for one run."""

    def __init__(self) -> None:
        self.samples: list[LedgerSample] = []
        self.energy_kwh = 0.0
        self.cost = 0.0
        self.carbon_g = 0.0
        self.deferred_energy_kwh = 0.0
        self.deferral_active_s = 0.0
        self.defer_windows = 0
        self.sla_deadline_misses = 0
        self.band_adjustments = 0
        self.shaped_intervals = 0

    def record(
        self,
        *,
        time_s: float,
        interval_s: float,
        power_w: float,
        price_per_kwh: float,
        carbon_g_per_kwh: float,
        score: float,
        shaped: bool,
        deferring: bool,
    ) -> LedgerSample:
        """Book one interval (rectangle rule at current power/price)."""
        energy_kwh = power_w * interval_s / 3_600_000.0
        sample = LedgerSample(
            time_s=time_s,
            price_per_kwh=price_per_kwh,
            carbon_g_per_kwh=carbon_g_per_kwh,
            power_w=power_w,
            energy_kwh=energy_kwh,
            cost=energy_kwh * price_per_kwh,
            carbon_g=energy_kwh * carbon_g_per_kwh,
            score=score,
            shaped=shaped,
            deferring=deferring,
        )
        self.samples.append(sample)
        self.energy_kwh += sample.energy_kwh
        self.cost += sample.cost
        self.carbon_g += sample.carbon_g
        if shaped:
            self.shaped_intervals += 1
        if deferring:
            self.deferral_active_s += interval_s
        return sample

    @property
    def last_sample(self) -> LedgerSample | None:
        """The most recent booking, if any."""
        return self.samples[-1] if self.samples else None

    def summary(self) -> dict[str, Any]:
        """Totals as a plain dict (health/serve views, CI smoke)."""
        return {
            "samples": len(self.samples),
            "energy_kwh": self.energy_kwh,
            "cost": self.cost,
            "carbon_kg": self.carbon_g / 1000.0,
            "deferred_energy_kwh": self.deferred_energy_kwh,
            "deferral_active_s": self.deferral_active_s,
            "defer_windows": self.defer_windows,
            "sla_deadline_misses": self.sla_deadline_misses,
            "band_adjustments": self.band_adjustments,
            "shaped_intervals": self.shaped_intervals,
        }

    def snapshot_state(self) -> dict[str, Any]:
        """Serialize for bit-exact resume."""
        return {
            "samples": [
                {
                    "time_s": s.time_s,
                    "price_per_kwh": s.price_per_kwh,
                    "carbon_g_per_kwh": s.carbon_g_per_kwh,
                    "power_w": s.power_w,
                    "energy_kwh": s.energy_kwh,
                    "cost": s.cost,
                    "carbon_g": s.carbon_g,
                    "score": s.score,
                    "shaped": s.shaped,
                    "deferring": s.deferring,
                }
                for s in self.samples
            ],
            "energy_kwh": self.energy_kwh,
            "cost": self.cost,
            "carbon_g": self.carbon_g,
            "deferred_energy_kwh": self.deferred_energy_kwh,
            "deferral_active_s": self.deferral_active_s,
            "defer_windows": self.defer_windows,
            "sla_deadline_misses": self.sla_deadline_misses,
            "band_adjustments": self.band_adjustments,
            "shaped_intervals": self.shaped_intervals,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild ledger contents from :meth:`snapshot_state` output."""
        self.samples = [LedgerSample(**s) for s in state["samples"]]
        self.energy_kwh = state["energy_kwh"]
        self.cost = state["cost"]
        self.carbon_g = state["carbon_g"]
        self.deferred_energy_kwh = state["deferred_energy_kwh"]
        self.deferral_active_s = state["deferral_active_s"]
        self.defer_windows = state["defer_windows"]
        self.sla_deadline_misses = state["sla_deadline_misses"]
        self.band_adjustments = state["band_adjustments"]
        self.shaped_intervals = state["shaped_intervals"]


@dataclass(frozen=True)
class EconScore:
    """One run's economics scorecard row (cost, carbon, and safety)."""

    scenario: str
    seed: int
    governed: bool
    duration_s: float
    energy_kwh: float
    cost: float
    carbon_kg: float
    mean_price: float
    deferred_energy_kwh: float
    deferral_active_s: float
    defer_windows: int
    sla_deadline_misses: int
    band_adjustments: int
    shaped_intervals: int
    breaker_trips: int
    cap_events: int
    safe_entries: int


def build_econ_scorecard(world: "World") -> EconScore:
    """Condense a finished economics world into one scorecard row."""
    governor = world.governor
    if governor is None:
        raise ValueError("world has no economic governor to score")
    ledger = governor.ledger
    kwargs = world.recipe.get("kwargs", {})
    duration_s = float(world.now_s)
    mean_price = ledger.cost / ledger.energy_kwh if ledger.energy_kwh else 0.0
    return EconScore(
        scenario=str(world.extras.get("scenario", kwargs.get("scenario", "?"))),
        seed=int(kwargs.get("seed", 0)),
        governed=bool(kwargs.get("governed", governor.shaping)),
        duration_s=duration_s,
        energy_kwh=ledger.energy_kwh,
        cost=ledger.cost,
        carbon_kg=ledger.carbon_g / 1000.0,
        mean_price=mean_price,
        deferred_energy_kwh=ledger.deferred_energy_kwh,
        deferral_active_s=ledger.deferral_active_s,
        defer_windows=ledger.defer_windows,
        sla_deadline_misses=ledger.sla_deadline_misses,
        band_adjustments=ledger.band_adjustments,
        shaped_intervals=ledger.shaped_intervals,
        breaker_trips=len(world.driver.trips),
        cap_events=world.dynamo.total_cap_events(),
        safe_entries=world.dynamo.safe_mode_entries(),
    )


def render_econ_scorecard(*scores: EconScore) -> str:
    """Render one or more scorecards side by side as a text table.

    Passing the governed and price-blind runs of the same seed together
    is the intended use: the cost/carbon rows should diverge while the
    safety rows (trips, SAFE entries, SLA misses) stay identical.
    """
    if not scores:
        raise ValueError("need at least one score to render")
    columns = ["metric"] + [
        f"{s.scenario} ({'governed' if s.governed else 'blind'})"
        for s in scores
    ]
    table = Table("Cost/carbon scorecard", columns)
    table.add_row("seed", *[s.seed for s in scores])
    table.add_row(
        "duration", *[format_duration(s.duration_s) for s in scores]
    )
    table.add_row(
        "energy", *[f"{s.energy_kwh:.1f} kWh" for s in scores]
    )
    table.add_row("cost", *[f"${s.cost:.2f}" for s in scores])
    table.add_row("carbon", *[f"{s.carbon_kg:.1f} kgCO2" for s in scores])
    table.add_row(
        "mean price paid", *[f"${s.mean_price:.4f}/kWh" for s in scores]
    )
    table.add_row(
        "deferred energy",
        *[f"{s.deferred_energy_kwh:.1f} kWh" for s in scores],
    )
    table.add_row(
        "deferral active",
        *[format_duration(s.deferral_active_s) for s in scores],
    )
    table.add_row("defer windows", *[s.defer_windows for s in scores])
    table.add_row(
        "shaped intervals", *[s.shaped_intervals for s in scores]
    )
    table.add_row(
        "band adjustments", *[s.band_adjustments for s in scores]
    )
    table.add_row(
        "SLA deadline misses", *[s.sla_deadline_misses for s in scores]
    )
    table.add_row("breaker trips", *[s.breaker_trips for s in scores])
    table.add_row("cap events", *[s.cap_events for s in scores])
    table.add_row("SAFE entries", *[s.safe_entries for s in scores])
    return table.render()


__all__ = [
    "CostCarbonLedger",
    "EconScore",
    "LedgerSample",
    "build_econ_scorecard",
    "render_econ_scorecard",
]
