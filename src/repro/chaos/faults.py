"""The fault catalogue: composable, revertible injections.

Each fault class knows how to ``inject`` itself into a live deployment
and how to ``recover`` (revert) it.  Faults are described declaratively
by :class:`FaultSpec` — kind, start, duration, targets, parameters — so
scenarios are data, campaigns can be drawn from a seeded RNG, and two
runs of the same schedule are byte-identical.

The catalogue covers the failure modes Sections III-E and V design for:

==================  =====================================================
kind                effect
==================  =====================================================
``sensor-dropout``  on-board sensors vanish; agents fall back to model
                    estimation (the sensor-less Westmere path)
``sensor-stuck``    sensors freeze at their last reading
``agent-crash``     agent daemons die; the watchdog restarts them
``rpc-partition``   endpoints become unreachable (network partition)
``rpc-blackhole``   calls to endpoints time out instead of completing
``rpc-flaky``       per-endpoint failure/timeout probabilities
``rpc-latency``     per-endpoint injected latency spike
``controller-crash`` a leaf/upper controller primary dies; its backup
                    takes over via :class:`FailoverController`
``power-surge``     workload demand surges (site-outage recovery)
``breaker-derate``  a device's rating is temporarily derated
==================  =====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.core.agent import agent_endpoint
from repro.errors import ConfigurationError
from repro.server.sensor import PowerBreakdown, PowerSensor
from repro.workloads.events import (
    TrafficSurgeEvent,
    decode_modifier,
    encode_modifier,
)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one injection.

    Attributes:
        kind: a fault kind from the catalogue (see module docstring).
        start_s: absolute simulation time of the injection.
        duration_s: how long the fault persists; ``None`` means it is
            never auto-reverted (e.g. an agent crash left for the
            watchdog to repair).
        targets: server ids or device names the fault applies to; empty
            means "every applicable target".
        params: fault-specific parameters (multipliers, probabilities).
    """

    kind: str
    start_s: float
    duration_s: float | None = None
    targets: tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("fault start time cannot be negative")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigurationError("fault duration must be positive")
        if self.kind not in FAULT_TYPES:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {fault_kinds()}"
            )

    @property
    def end_s(self) -> float | None:
        """Absolute recovery time, or None for open-ended faults."""
        if self.duration_s is None:
            return None
        return self.start_s + self.duration_s

    def describe(self) -> str:
        """Stable one-line form used in timelines and fingerprints."""
        window = "open" if self.duration_s is None else f"{self.duration_s:g}s"
        targets = ",".join(self.targets) if self.targets else "*"
        params = ",".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.kind}@{self.start_s:g}s/{window} targets={targets} {params}"


class Fault:
    """Base class: one armed instance of a :class:`FaultSpec`."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    @property
    def kind(self) -> str:
        """The catalogue kind."""
        return self.spec.kind

    def inject(self, ctx) -> str:
        """Apply the fault; returns a stable detail string."""
        raise NotImplementedError

    def recover(self, ctx) -> str:
        """Revert the fault; returns a stable detail string."""
        raise NotImplementedError

    # Snapshot support --------------------------------------------------

    def snapshot_state(self, ctx) -> dict:
        """Serializable mid-flight state; stateless faults return ``{}``.

        Faults that swap objects out of the live world (saved sensors,
        surge modifiers, original breaker ratings) must capture enough
        to rebuild their save-lists against a recipe-rebuilt world; the
        world-side effects themselves (injector tables, agent health,
        device ratings) are captured by the owning components.
        """
        return {}

    def restore_state(self, state: dict, ctx) -> None:
        """Rebuild mid-flight state against a recipe-rebuilt world."""

    # Helpers shared by the concrete faults ----------------------------

    def _server_ids(self, ctx) -> list[str]:
        if self.spec.targets:
            return list(self.spec.targets)
        return sorted(ctx.fleet.servers)

    def _param(self, name: str, default):
        return self.spec.params.get(name, default)


class _StuckSensor:
    """Sensor replacement frozen at one reading (a wedged BMC)."""

    def __init__(self, frozen: PowerBreakdown) -> None:
        self._frozen = frozen

    def read(self, true_power_w: float) -> float:
        """The frozen total, regardless of true power."""
        return self._frozen.total_w

    def read_breakdown(self, true_power_w: float) -> PowerBreakdown:
        """The frozen breakdown, regardless of true power."""
        return self._frozen


class SensorDropoutFault(Fault):
    """On-board sensors disappear; agents estimate from utilization."""

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        self._saved: dict[str, PowerSensor | None] = {}

    def inject(self, ctx) -> str:
        dropped = 0
        for server_id in self._server_ids(ctx):
            server = ctx.fleet.servers[server_id]
            if server.sensor is None:
                continue
            self._saved[server_id] = server.sensor
            server.sensor = None
            dropped += 1
        return f"dropped {dropped} sensors"

    def recover(self, ctx) -> str:
        for server_id, sensor in self._saved.items():
            ctx.fleet.servers[server_id].sensor = sensor
        restored = len(self._saved)
        self._saved.clear()
        return f"restored {restored} sensors"

    def snapshot_state(self, ctx) -> dict:
        """Which servers hold a hidden sensor, plus its noise-RNG state.

        The hidden sensor is detached from its server while the fault is
        live, so :class:`~repro.server.server.Server` cannot capture it;
        its RNG state rides here instead.
        """
        return {
            "saved": [
                {
                    "server_id": server_id,
                    "rng": (
                        None
                        if sensor is None
                        else sensor._rng.bit_generator.state
                    ),
                }
                for server_id, sensor in self._saved.items()
            ],
        }

    def restore_state(self, state: dict, ctx) -> None:
        """Re-detach sensors from the rebuilt world's servers."""
        self._saved.clear()
        for entry in state["saved"]:
            server = ctx.fleet.servers[entry["server_id"]]
            sensor = server.sensor
            if sensor is not None and entry["rng"] is not None:
                sensor._rng.bit_generator.state = entry["rng"]
            self._saved[entry["server_id"]] = sensor
            server.sensor = None


class SensorStuckFault(Fault):
    """Sensors freeze at the reading taken at injection time."""

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        self._saved: dict[str, PowerSensor] = {}

    def inject(self, ctx) -> str:
        stuck = 0
        for server_id in self._server_ids(ctx):
            server = ctx.fleet.servers[server_id]
            # Skip sensorless servers and ones a concurrent fault already
            # froze — restoring would re-install the other fault's wrapper.
            if server.sensor is None or isinstance(server.sensor, _StuckSensor):
                continue
            frozen = server.sensor.read_breakdown(server.power_w())
            self._saved[server_id] = server.sensor
            server.sensor = _StuckSensor(frozen)
            stuck += 1
        return f"froze {stuck} sensors"

    def recover(self, ctx) -> str:
        for server_id, sensor in self._saved.items():
            ctx.fleet.servers[server_id].sensor = sensor
        restored = len(self._saved)
        self._saved.clear()
        return f"unfroze {restored} sensors"

    def snapshot_state(self, ctx) -> dict:
        """Frozen readings plus the hidden real sensors' RNG states.

        ``_saved`` holds the real sensors; the frozen breakdowns sit on
        the :class:`_StuckSensor` replacements currently installed on
        the servers, reached through ``ctx``.
        """
        saved = []
        for server_id, sensor in self._saved.items():
            stuck = ctx.fleet.servers[server_id].sensor
            assert isinstance(stuck, _StuckSensor)
            saved.append(
                {
                    "server_id": server_id,
                    "rng": sensor._rng.bit_generator.state,
                    "frozen": asdict(stuck._frozen),
                }
            )
        return {"saved": saved}

    def restore_state(self, state: dict, ctx) -> None:
        """Re-freeze the rebuilt world's sensors at the captured readings."""
        self._saved.clear()
        for entry in state["saved"]:
            server = ctx.fleet.servers[entry["server_id"]]
            sensor = server.sensor
            assert isinstance(sensor, PowerSensor)
            sensor._rng.bit_generator.state = entry["rng"]
            self._saved[entry["server_id"]] = sensor
            server.sensor = _StuckSensor(PowerBreakdown(**entry["frozen"]))


class AgentCrashFault(Fault):
    """Agent daemons die.  With no duration, only the watchdog repairs
    them — which is exactly what the scenario usually wants to measure."""

    def inject(self, ctx) -> str:
        ids = self._server_ids(ctx)
        for server_id in ids:
            ctx.dynamo.agents[server_id].crash()
        return f"crashed {len(ids)} agents"

    def recover(self, ctx) -> str:
        restarted = 0
        for server_id in self._server_ids(ctx):
            agent = ctx.dynamo.agents[server_id]
            if not agent.healthy:
                agent.restart()
                restarted += 1
        return f"manually restarted {restarted} agents"


class RpcPartitionFault(Fault):
    """Agent endpoints become unreachable (a network partition)."""

    def inject(self, ctx) -> str:
        endpoints = [agent_endpoint(s) for s in self._server_ids(ctx)]
        for endpoint in endpoints:
            ctx.injector.take_down(endpoint)
        return f"partitioned {len(endpoints)} endpoints"

    def recover(self, ctx) -> str:
        endpoints = [agent_endpoint(s) for s in self._server_ids(ctx)]
        for endpoint in endpoints:
            ctx.injector.restore(endpoint)
        return f"healed {len(endpoints)} endpoints"


class _EndpointRateFault(Fault):
    """Base for faults that set per-endpoint injector rates.

    The ``scope`` parameter picks the endpoint set when no explicit
    targets are given: ``"agents"`` (default) hits the agent endpoints
    of the targeted servers; ``"fabric"`` hits every endpoint registered
    on the transport — agents and controller endpoints alike — which is
    what a genuinely flaky network looks like.
    """

    _fields: tuple[str, ...] = ()

    def _rates(self) -> dict[str, float]:
        raise NotImplementedError

    def _endpoints(self, ctx) -> list[str]:
        scope = str(self._param("scope", "agents"))
        if scope == "fabric" and not self.spec.targets:
            return sorted(ctx.dynamo.transport.endpoints)
        if scope not in ("agents", "fabric"):
            raise ConfigurationError(
                f"unknown endpoint scope {scope!r}; known: agents, fabric"
            )
        return [agent_endpoint(s) for s in self._server_ids(ctx)]

    def inject(self, ctx) -> str:
        rates = self._rates()
        endpoints = self._endpoints(ctx)
        for endpoint in endpoints:
            ctx.injector.set_endpoint_faults(endpoint, **rates)
        detail = ",".join(f"{k}={v:g}" for k, v in sorted(rates.items()))
        return f"{len(endpoints)} endpoints {detail}"

    def recover(self, ctx) -> str:
        zeroed = {key: 0.0 for key in self._rates()}
        endpoints = self._endpoints(ctx)
        for endpoint in endpoints:
            ctx.injector.set_endpoint_faults(endpoint, **zeroed)
        return f"cleared {len(endpoints)} endpoints"


class RpcBlackholeFault(_EndpointRateFault):
    """Every call to the targets times out instead of completing."""

    def _rates(self) -> dict[str, float]:
        return {"timeout_probability": 1.0}


class RpcFlakyFault(_EndpointRateFault):
    """Per-endpoint probabilistic failures and timeouts."""

    def _rates(self) -> dict[str, float]:
        return {
            "failure_probability": float(self._param("failure_probability", 0.2)),
            "timeout_probability": float(self._param("timeout_probability", 0.0)),
        }


class RpcLatencyFault(_EndpointRateFault):
    """Per-endpoint injected latency spike (exponential extra latency)."""

    def _rates(self) -> dict[str, float]:
        return {"extra_latency_mean_s": float(self._param("mean_s", 0.050))}


class ControllerCrashFault(Fault):
    """A controller primary dies; its backup takes over next tick."""

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        if not spec.targets:
            raise ConfigurationError(
                "controller-crash needs explicit device-name targets"
            )

    def inject(self, ctx) -> str:
        for device_name in self.spec.targets:
            pair = ctx.dynamo.enable_failover(device_name)
            pair.fail_primary()
        return f"crashed primaries: {','.join(self.spec.targets)}"

    def recover(self, ctx) -> str:
        for device_name in self.spec.targets:
            ctx.dynamo.enable_failover(device_name).restore_primary()
        return f"restored primaries: {','.join(self.spec.targets)}"


class PowerSurgeFault(Fault):
    """Workload demand surges (outage-recovery traffic, special events)."""

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        if spec.duration_s is None:
            raise ConfigurationError("power-surge needs a duration")
        self._modifiers: dict[str, TrafficSurgeEvent] = {}

    def inject(self, ctx) -> str:
        multiplier = float(self._param("multiplier", 1.5))
        ramp_s = float(self._param("ramp_s", 60.0))
        surge = TrafficSurgeEvent(
            start_s=self.spec.start_s,
            end_s=self.spec.start_s + float(self.spec.duration_s),
            multiplier=multiplier,
            ramp_s=ramp_s,
        )
        surged = 0
        for server_id in self._server_ids(ctx):
            workload = ctx.fleet.servers[server_id].workload
            if not hasattr(workload, "add_modifier"):
                continue
            workload.add_modifier(surge)
            self._modifiers[server_id] = surge
            surged += 1
        return f"surged {surged} servers x{multiplier:g}"

    def recover(self, ctx) -> str:
        for server_id, surge in self._modifiers.items():
            ctx.fleet.servers[server_id].workload.remove_modifier(surge)
        released = len(self._modifiers)
        self._modifiers.clear()
        return f"released {released} servers"

    def snapshot_state(self, ctx) -> dict:
        """The surge modifiers handed out, by value.

        The workloads capture their own modifier lists; this records
        which instance to ``remove_modifier`` at recovery (frozen
        dataclass equality makes a rebuilt equal instance removable).
        """
        return {
            "modifiers": [
                {"server_id": server_id, "modifier": encode_modifier(surge)}
                for server_id, surge in self._modifiers.items()
            ],
        }

    def restore_state(self, state: dict, ctx) -> None:
        """Rebuild the recovery ledger (workloads restore the effects)."""
        self._modifiers = {
            entry["server_id"]: decode_modifier(entry["modifier"])
            for entry in state["modifiers"]
        }


class BreakerDeratingFault(Fault):
    """A device's rating is temporarily derated (maintenance, heat)."""

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        if not spec.targets:
            raise ConfigurationError(
                "breaker-derate needs explicit device-name targets"
            )
        self._saved: dict[str, float] = {}

    def inject(self, ctx) -> str:
        fraction = float(self._param("fraction", 0.85))
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("derating fraction must be in (0, 1]")
        for device_name in self.spec.targets:
            device = ctx.topology.device(device_name)
            self._saved[device_name] = device.rated_power_w
            device.rated_power_w = device.rated_power_w * fraction
            device.breaker.rated_power_w = device.rated_power_w
        return f"derated {','.join(self.spec.targets)} to {fraction:g}x"

    def recover(self, ctx) -> str:
        for device_name, rating in self._saved.items():
            device = ctx.topology.device(device_name)
            device.rated_power_w = rating
            device.breaker.rated_power_w = rating
        restored = ",".join(sorted(self._saved))
        self._saved.clear()
        return f"restored ratings: {restored}"

    def snapshot_state(self, ctx) -> dict:
        """The pre-derating ratings (current ones live on the devices)."""
        return {"saved": dict(self._saved)}

    def restore_state(self, state: dict, ctx) -> None:
        """Rebuild the original-rating ledger."""
        self._saved = {
            name: float(rating) for name, rating in state["saved"].items()
        }


FAULT_TYPES: dict[str, type[Fault]] = {
    "sensor-dropout": SensorDropoutFault,
    "sensor-stuck": SensorStuckFault,
    "agent-crash": AgentCrashFault,
    "rpc-partition": RpcPartitionFault,
    "rpc-blackhole": RpcBlackholeFault,
    "rpc-flaky": RpcFlakyFault,
    "rpc-latency": RpcLatencyFault,
    "controller-crash": ControllerCrashFault,
    "power-surge": PowerSurgeFault,
    "breaker-derate": BreakerDeratingFault,
}


def fault_kinds() -> list[str]:
    """All known fault kinds, sorted."""
    return sorted(FAULT_TYPES)


def build_fault(spec: FaultSpec) -> Fault:
    """Instantiate the fault class for one spec."""
    return FAULT_TYPES[spec.kind](spec)
