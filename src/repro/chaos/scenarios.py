"""Prebuilt chaos scenarios and seeded random campaigns.

Each scenario wires a small, deliberately fragile deployment (thin SB
headroom over rows of web servers, as in
:func:`repro.analysis.worlds.build_surge_world`), arms a fault schedule
through the :class:`ChaosOrchestrator`, and attaches a health probe so
the scorecard can measure detection and recovery.

Named scenarios map to the paper's fault-tolerance claims:

================== =======================================================
``sb-outage``       Figure 12 ride-through: an outage-recovery power surge
                    drives the SB past its capping threshold; Dynamo caps
                    offender rows and nothing trips.
``watchdog-restart`` a quarter of the agents crash; the watchdog restarts
                    them within one sweep (Section III-E).
``leaf-controller-crash``   a leaf controller primary dies mid-run; its
                    backup takes over on the next tick.
``upper-controller-crash``  same for the SB-level controller.
``rpc-storm``       per-endpoint failures and latency spikes; neighbour
                    estimation keeps aggregation valid.
``flaky-fabric-recovery``   fabric-wide failure rates ramp up to 30% and
                    back down over the fully distributed hierarchy; the
                    resilience layer (retries, breakers) must ride it out
                    with no breaker trips and no stranded limits.
``partition``       >20% of one row's agents partitioned; aggregation
                    aborts with a CRITICAL alert, no false capping.
``sensor-blackout-{30,50,70}``  30/50/70% of one row's agents partitioned
                    *with the disaggregation estimator enabled* during a
                    surge: at 30/50% the leaf keeps capping in
                    SENSOR_DEGRADED against the uncertainty-inflated
                    estimate; at 70% coverage falls below the estimation
                    floor and the controller escalates to SAFE instead
                    of aborting silently.
``price-spike-surge``  a power surge lands while the economic governor
                    is shaping against an early price spike; breaker
                    safety overrides advisory economics and nothing
                    trips.
``breaker-derate``  the SB rating is derated mid-run; capping pulls the
                    load under the new limit.
``campaign``        a seeded random campaign over the whole catalogue.
================== =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.worlds import build_surge_world
from repro.chaos.faults import FaultSpec
from repro.config import (
    ControllerConfig,
    DynamoConfig,
    EconomicsConfig,
    EstimationConfig,
)
from repro.chaos.orchestrator import ChaosContext, ChaosOrchestrator
from repro.core.dynamo import Dynamo
from repro.core.remote import distribute_hierarchy
from repro.errors import ConfigurationError
from repro.fleet import Fleet, FleetDriver
from repro.power.topology import PowerTopology
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams


@dataclass
class ChaosRun:
    """A fully wired chaos experiment ready to run."""

    name: str
    seed: int
    engine: SimulationEngine
    topology: PowerTopology
    fleet: Fleet
    dynamo: Dynamo
    driver: FleetDriver
    rng: RngStreams
    orchestrator: ChaosOrchestrator
    specs: list[FaultSpec]
    monitored_device: str
    end_s: float
    extras: dict = field(default_factory=dict)

    def start(self) -> None:
        """Start the physical world, Dynamo, and any attached governor."""
        self.driver.start()
        self.dynamo.start()
        governor = self.extras.get("governor")
        if governor is not None:
            governor.start()

    def run(self) -> None:
        """Start everything and run the schedule to completion."""
        self.start()
        self.engine.run_until(self.end_s)

    def fingerprint(self) -> str:
        """The injection/recovery timeline fingerprint."""
        return self.orchestrator.timeline_fingerprint()


def default_health_probe(run: ChaosRun) -> Callable[[ChaosContext], bool]:
    """The scenario-agnostic health predicate.

    Healthy means: no breaker has tripped, every agent is up, the
    monitored device's aggregate is at or under its (current) rating,
    and no leaf controller aborted an aggregation since the last sample.
    """
    state = {"invalid": 0}

    def healthy(ctx: ChaosContext) -> bool:
        ok = not run.driver.tripped
        if not all(agent.healthy for agent in ctx.dynamo.agents.values()):
            ok = False
        controller = ctx.dynamo.controller(run.monitored_device)
        device = ctx.topology.device(run.monitored_device)
        aggregate = controller.last_aggregate_power_w
        if aggregate is not None and aggregate > device.rated_power_w:
            ok = False
        invalid = sum(
            leaf.invalid_cycles
            for leaf in ctx.dynamo.hierarchy.leaf_controllers.values()
        )
        if invalid > state["invalid"]:
            ok = False
        state["invalid"] = invalid
        return ok

    # Exposed so a snapshot can capture/restore the probe's memory of
    # the last-seen invalid-cycle count.
    healthy.probe_state = state  # type: ignore[attr-defined]
    return healthy


def build_chaos_run(
    name: str,
    specs: list[FaultSpec],
    *,
    seed: int = 7,
    n_servers: int = 40,
    level: float = 0.6,
    rpp_count: int = 2,
    end_s: float = 1800.0,
    monitored_device: str = "sb0",
    probe_interval_s: float = 3.0,
    physics_backend: str = "scalar", control_backend: str = "scalar",
    config: DynamoConfig | None = None,
) -> ChaosRun:
    """Wire a chaos experiment: world + Dynamo + orchestrator + probe."""
    engine, topology, fleet, rng = build_surge_world(
        n_servers=n_servers, level=level, rpp_count=rpp_count, seed=seed
    )
    dynamo = Dynamo(
        engine, topology, fleet, config=config,
        rng_streams=rng.fork("dynamo"),
    )
    driver = FleetDriver(
        engine,
        topology,
        fleet,
        step_interval_s=1.0,
        physics_backend=physics_backend,
    )
    if control_backend == "vectorized":
        dynamo.enable_vectorized_control(driver)
    ctx = ChaosContext(
        engine=engine,
        dynamo=dynamo,
        topology=topology,
        fleet=fleet,
        driver=driver,
    )
    orchestrator = ChaosOrchestrator(ctx)
    run = ChaosRun(
        name=name,
        seed=seed,
        engine=engine,
        topology=topology,
        fleet=fleet,
        dynamo=dynamo,
        driver=driver,
        rng=rng,
        orchestrator=orchestrator,
        specs=list(specs),
        monitored_device=monitored_device,
        end_s=end_s,
    )
    orchestrator.schedule_all(run.specs)
    orchestrator.attach_probe(
        default_health_probe(run), interval_s=probe_interval_s
    )
    return run


# ---------------------------------------------------------------------------
# Named scenarios
# ---------------------------------------------------------------------------

def sb_outage(seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar") -> ChaosRun:
    """Figure 12 ride-through: outage-recovery surge against the SB."""
    specs = [
        FaultSpec(
            kind="power-surge",
            start_s=300.0,
            duration_s=900.0,
            params={"multiplier": 1.6, "ramp_s": 120.0},
        )
    ]
    return build_chaos_run(
        "sb-outage",
        specs,
        seed=seed,
        end_s=1800.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


def watchdog_restart(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """A quarter of the agents crash; the watchdog repairs them."""
    # Targets are fixed by position so the schedule itself is static;
    # only fault *consequences* vary with the seed.
    engine, topology, fleet, _ = build_surge_world(n_servers=40, seed=seed)
    del engine, topology
    victims = tuple(sorted(fleet.servers)[::4])
    specs = [FaultSpec(kind="agent-crash", start_s=120.0, targets=victims)]
    return build_chaos_run(
        "watchdog-restart",
        specs,
        seed=seed,
        end_s=600.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


def leaf_controller_crash(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """A leaf controller primary dies; its backup takes over."""
    specs = [
        FaultSpec(
            kind="controller-crash",
            start_s=150.0,
            duration_s=300.0,
            targets=("rpp0",),
        )
    ]
    return build_chaos_run(
        "leaf-controller-crash",
        specs,
        seed=seed,
        end_s=900.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


def upper_controller_crash(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """The SB-level controller primary dies; its backup takes over."""
    specs = [
        FaultSpec(
            kind="controller-crash",
            start_s=150.0,
            duration_s=300.0,
            targets=("sb0",),
        )
    ]
    return build_chaos_run(
        "upper-controller-crash",
        specs,
        seed=seed,
        end_s=900.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


def rpc_storm(seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar") -> ChaosRun:
    """Flaky fabric plus a latency spike across every agent endpoint."""
    specs = [
        FaultSpec(
            kind="rpc-flaky",
            start_s=120.0,
            duration_s=300.0,
            params={"failure_probability": 0.15},
        ),
        FaultSpec(
            kind="rpc-latency",
            start_s=120.0,
            duration_s=300.0,
            params={"mean_s": 0.050},
        ),
    ]
    return build_chaos_run(
        "rpc-storm",
        specs,
        seed=seed,
        end_s=900.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


def flaky_fabric_recovery(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """Fabric-wide flakiness ramps up to 30%, peaks, and subsides.

    Runs the fully *distributed* hierarchy (controller endpoints on the
    fabric, parents behind RPC proxies) so contractual pushes travel the
    same lossy network as power pulls.  The resilience layer must ride
    the ramp out: retries keep aggregation live through the peak without
    a single breaker trip, and the clean tail must leave no stranded
    caps or contractual limits.
    """
    windows = [(120.0, 0.10), (240.0, 0.30), (360.0, 0.15)]
    specs = [
        FaultSpec(
            kind="rpc-flaky",
            start_s=start_s,
            duration_s=120.0,
            params={"failure_probability": rate, "scope": "fabric"},
        )
        for start_s, rate in windows
    ]
    run = build_chaos_run(
        "flaky-fabric-recovery",
        specs,
        seed=seed,
        end_s=900.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )
    # Distribute after wiring so the ctrl: endpoints exist on the fabric
    # before the first injection resolves its endpoint set.
    run.extras["endpoints"] = distribute_hierarchy(
        run.dynamo.hierarchy, run.dynamo.controller_transport
    )
    return run


def partition(seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar") -> ChaosRun:
    """Partition >20% of one row's agents: aggregation must abort."""
    engine, topology, fleet, _ = build_surge_world(n_servers=40, seed=seed)
    rpp0_ids = sorted(topology.device("rpp0").load_ids)
    del engine, fleet
    victims = tuple(rpp0_ids[: max(1, int(len(rpp0_ids) * 0.3))])
    specs = [
        FaultSpec(
            kind="rpc-partition",
            start_s=120.0,
            duration_s=240.0,
            targets=victims,
        )
    ]
    return build_chaos_run(
        "partition",
        specs,
        seed=seed,
        end_s=900.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


def _sensor_blackout(
    fraction: float,
    seed: int = 7,
    *,
    physics_backend: str = "scalar",
    control_backend: str = "scalar",
) -> ChaosRun:
    """Partition ``fraction`` of one row's agents with estimation on.

    The same fault shape as ``partition`` — an rpc partition well past
    the 20% invalid-aggregation floor — but the deployment runs with the
    disaggregation estimator enabled, and a concurrent surge forces the
    leaf to actually *cap* while its sensors are dark.  At 30/50% the
    controller rides it out in SENSOR_DEGRADED; at 70% coverage drops
    below ``EstimationConfig.safe_coverage`` and the leaf escalates
    through the invalid-cycle path to SAFE (fail-safe capping) instead
    of aborting silently.
    """
    engine, topology, fleet, _ = build_surge_world(n_servers=40, seed=seed)
    rpp0_ids = sorted(topology.device("rpp0").load_ids)
    del engine, fleet
    victims = tuple(rpp0_ids[: max(1, int(len(rpp0_ids) * fraction))])
    specs = [
        FaultSpec(
            kind="rpc-partition",
            start_s=120.0,
            duration_s=360.0,
            targets=victims,
        ),
        FaultSpec(
            kind="power-surge",
            start_s=180.0,
            duration_s=240.0,
            params={"multiplier": 1.5, "ramp_s": 60.0},
        ),
    ]
    config = DynamoConfig(
        controller=ControllerConfig(
            estimation=EstimationConfig(enabled=True)
        )
    )
    return build_chaos_run(
        f"sensor-blackout-{int(round(fraction * 100))}",
        specs,
        seed=seed,
        end_s=900.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
        config=config,
    )


def sensor_blackout_30(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """30% of one row's sensors go dark; estimation carries the cycle."""
    return _sensor_blackout(
        0.3, seed,
        physics_backend=physics_backend, control_backend=control_backend,
    )


def sensor_blackout_50(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """Half of one row's sensors go dark; estimation carries the cycle."""
    return _sensor_blackout(
        0.5, seed,
        physics_backend=physics_backend, control_backend=control_backend,
    )


def sensor_blackout_70(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """70% dark: below the estimation floor, the leaf must go SAFE."""
    return _sensor_blackout(
        0.7, seed,
        physics_backend=physics_backend, control_backend=control_backend,
    )


def price_spike_surge(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """A power surge lands mid price-spike; breaker safety must win.

    The economic governor is shaping bands against an early price spike
    (minutes 5–20) when an outage-recovery surge hits the same window.
    The drill asserts the precedence contract: advisory economics never
    blocks capping — the hierarchy rides the surge out with zero trips
    while the ledger still books the spike.
    """
    from repro.economics.governor import EconomicGovernor

    specs = [
        FaultSpec(
            kind="power-surge",
            start_s=420.0,
            duration_s=600.0,
            params={"multiplier": 1.6, "ramp_s": 120.0},
        )
    ]
    config = DynamoConfig(
        economics=EconomicsConfig(
            enabled=True,
            price_signal="price-spike-early",
            carbon_signal="carbon-flat",
        )
    )
    run = build_chaos_run(
        "price-spike-surge",
        specs,
        seed=seed,
        end_s=1800.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
        config=config,
    )
    run.extras["governor"] = EconomicGovernor(
        run.engine, run.dynamo, run.fleet
    )
    return run


def breaker_derate(
    seed: int = 7, *, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """The SB rating is derated mid-run; capping pulls load under it."""
    specs = [
        FaultSpec(
            kind="breaker-derate",
            start_s=200.0,
            duration_s=600.0,
            targets=("sb0",),
            params={"fraction": 0.82},
        )
    ]
    return build_chaos_run(
        "breaker-derate",
        specs,
        seed=seed,
        end_s=1200.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


# ---------------------------------------------------------------------------
# Random campaigns
# ---------------------------------------------------------------------------

#: Fault kinds a random campaign draws from, with (min, max) durations.
CAMPAIGN_KINDS: list[tuple[str, float, float]] = [
    ("agent-crash", 0.0, 0.0),  # open-ended: the watchdog repairs it
    ("sensor-dropout", 120.0, 300.0),
    ("sensor-stuck", 120.0, 300.0),
    ("rpc-flaky", 90.0, 240.0),
    ("rpc-latency", 90.0, 240.0),
    ("rpc-partition", 60.0, 180.0),
    ("power-surge", 240.0, 480.0),
]


def random_campaign_specs(
    rng_streams: RngStreams,
    server_ids: list[str],
    *,
    n_faults: int = 6,
    horizon_s: float = 900.0,
    first_start_s: float = 60.0,
) -> list[FaultSpec]:
    """Draw a replayable random fault schedule.

    All randomness comes from the ``"chaos.campaign"`` stream, so the
    same root seed always yields the identical schedule — the campaign
    is as deterministic as a hand-written one.
    """
    if not server_ids:
        raise ConfigurationError("campaign needs at least one server")
    rng = rng_streams.stream("chaos.campaign")
    ordered = sorted(server_ids)
    specs: list[FaultSpec] = []
    for _ in range(n_faults):
        kind, dur_lo, dur_hi = CAMPAIGN_KINDS[
            int(rng.integers(len(CAMPAIGN_KINDS)))
        ]
        start_s = float(rng.uniform(first_start_s, horizon_s))
        duration_s = None
        if dur_hi > 0.0:
            duration_s = float(rng.uniform(dur_lo, dur_hi))
        # Target a contiguous slice of the fleet: cheap to draw, stable
        # to describe, and adjustable in severity via the slice width.
        width = max(1, int(rng.integers(1, max(2, len(ordered) // 4))))
        offset = int(rng.integers(len(ordered)))
        targets = tuple(
            ordered[(offset + i) % len(ordered)] for i in range(width)
        )
        params: dict = {}
        if kind == "power-surge":
            params = {"multiplier": float(rng.uniform(1.2, 1.5))}
            targets = ()  # surges hit every server
        elif kind == "rpc-flaky":
            params = {"failure_probability": float(rng.uniform(0.05, 0.3))}
        elif kind == "rpc-latency":
            params = {"mean_s": float(rng.uniform(0.01, 0.1))}
        specs.append(
            FaultSpec(
                kind=kind,
                start_s=round(start_s, 3),
                duration_s=None if duration_s is None else round(duration_s, 3),
                targets=targets,
                params=params,
            )
        )
    specs.sort(key=lambda s: (s.start_s, s.kind))
    return specs


def campaign(
    seed: int = 7, *, n_faults: int = 6, physics_backend: str = "scalar", control_backend: str = "scalar"
) -> ChaosRun:
    """A seeded random campaign over the fault catalogue."""
    engine, topology, fleet, rng = build_surge_world(n_servers=40, seed=seed)
    del engine, topology
    specs = random_campaign_specs(
        rng, list(fleet.servers), n_faults=n_faults, horizon_s=900.0
    )
    return build_chaos_run(
        "campaign",
        specs,
        seed=seed,
        end_s=1500.0,
        physics_backend=physics_backend,
        control_backend=control_backend,
    )


CHAOS_SCENARIOS: dict[str, Callable[..., ChaosRun]] = {
    "sb-outage": sb_outage,
    "watchdog-restart": watchdog_restart,
    "leaf-controller-crash": leaf_controller_crash,
    "upper-controller-crash": upper_controller_crash,
    "rpc-storm": rpc_storm,
    "flaky-fabric-recovery": flaky_fabric_recovery,
    "partition": partition,
    "sensor-blackout-30": sensor_blackout_30,
    "sensor-blackout-50": sensor_blackout_50,
    "sensor-blackout-70": sensor_blackout_70,
    "price-spike-surge": price_spike_surge,
    "breaker-derate": breaker_derate,
    "campaign": campaign,
}
