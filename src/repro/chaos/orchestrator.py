"""The chaos orchestrator: arms fault schedules as simulation events.

The orchestrator takes declarative :class:`FaultSpec` schedules and turns
them into engine events at ``PRIORITY_CHAOS`` — after the fleet step but
before any controller runs at the same instant, so an injection is
visible to the very next control cycle.  Every injection and recovery is
recorded into a :class:`~repro.telemetry.events.EventLog`, whose
``fingerprint()`` is the replay-determinism contract: same seed, same
schedule ⇒ byte-identical timeline.

A health probe — a scenario-supplied predicate sampled periodically into
a time series — gives the scorecard the signal it needs to measure
time-to-detect and time-to-recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.faults import Fault, FaultSpec, build_fault
from repro.core.coordinator import PRIORITY_CHAOS
from repro.core.dynamo import Dynamo
from repro.fleet import Fleet, FleetDriver
from repro.power.topology import PowerTopology
from repro.rpc.transport import FailureInjector
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess
from repro.telemetry.events import EventLog
from repro.telemetry.timeseries import TimeSeries


@dataclass
class ChaosContext:
    """Everything a fault may touch in a live deployment."""

    engine: SimulationEngine
    dynamo: Dynamo
    topology: PowerTopology
    fleet: Fleet
    driver: FleetDriver | None = None

    @property
    def injector(self) -> FailureInjector:
        """The RPC fabric's failure injector."""
        return self.dynamo.transport.injector


class ChaosOrchestrator:
    """Schedules, applies, reverts, and records fault injections."""

    def __init__(self, ctx: ChaosContext, *, events: EventLog | None = None) -> None:
        self.ctx = ctx
        self.events = events or EventLog()
        self.faults: list[Fault] = []
        self.health_series = TimeSeries("chaos.health")
        self._probe: PeriodicProcess | None = None
        self._healthy_fn: Callable[[ChaosContext], bool] | None = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, spec: FaultSpec) -> Fault:
        """Arm one fault: injection at ``start_s``, recovery at ``end_s``."""
        fault = build_fault(spec)
        self.faults.append(fault)
        self.ctx.engine.schedule_at(
            spec.start_s,
            lambda: self._inject(fault),
            priority=PRIORITY_CHAOS,
            label=f"chaos.inject.{spec.kind}",
        )
        if spec.end_s is not None:
            self.ctx.engine.schedule_at(
                spec.end_s,
                lambda: self._recover(fault),
                priority=PRIORITY_CHAOS,
                label=f"chaos.recover.{spec.kind}",
            )
        return fault

    def schedule_all(self, specs: list[FaultSpec]) -> list[Fault]:
        """Arm a whole scenario schedule."""
        return [self.schedule(spec) for spec in specs]

    def _inject(self, fault: Fault) -> None:
        detail = fault.inject(self.ctx)
        self.events.record(
            self.ctx.engine.clock.now,
            "chaos",
            f"inject.{fault.kind}",
            f"{fault.spec.describe()} -> {detail}",
        )

    def _recover(self, fault: Fault) -> None:
        detail = fault.recover(self.ctx)
        self.events.record(
            self.ctx.engine.clock.now,
            "chaos",
            f"recover.{fault.kind}",
            f"{fault.spec.describe()} -> {detail}",
        )

    # ------------------------------------------------------------------
    # Health probing
    # ------------------------------------------------------------------

    def attach_probe(
        self,
        healthy: Callable[[ChaosContext], bool],
        *,
        interval_s: float = 3.0,
        phase: float = 0.0,
    ) -> None:
        """Sample ``healthy(ctx)`` periodically into ``health_series``.

        The probe runs at sampler priority-adjacent ``PRIORITY_CHAOS + 1``
        so it observes the world after injections land but before it is
        repaired by the same instant's controllers.
        """
        self._healthy_fn = healthy
        self._probe = PeriodicProcess(
            self.ctx.engine,
            interval_s,
            self._sample_health,
            label="chaos.health-probe",
            priority=PRIORITY_CHAOS + 1,
        )
        self._probe.start(phase=phase)

    def _sample_health(self, now_s: float) -> None:
        assert self._healthy_fn is not None
        self.health_series.append(now_s, 1.0 if self._healthy_fn(self.ctx) else 0.0)

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------

    @property
    def injection_count(self) -> int:
        """Injections performed so far."""
        return len(self.events.by_kind_prefix("inject."))

    def first_injection_time_s(self) -> float | None:
        """Time of the first injection, or None before any."""
        injections = self.events.by_kind_prefix("inject.")
        if not injections:
            return None
        return injections[0].time_s

    def timeline_fingerprint(self) -> str:
        """Stable rendering of the full injection/recovery timeline."""
        return self.events.fingerprint()
