"""The chaos orchestrator: arms fault schedules as simulation events.

The orchestrator takes declarative :class:`FaultSpec` schedules and turns
them into engine events at ``PRIORITY_CHAOS`` — after the fleet step but
before any controller runs at the same instant, so an injection is
visible to the very next control cycle.  Every injection and recovery is
recorded into a :class:`~repro.telemetry.events.EventLog`, whose
``fingerprint()`` is the replay-determinism contract: same seed, same
schedule ⇒ byte-identical timeline.

A health probe — a scenario-supplied predicate sampled periodically into
a time series — gives the scorecard the signal it needs to measure
time-to-detect and time-to-recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.faults import Fault, FaultSpec, build_fault
from repro.core.coordinator import PRIORITY_CHAOS
from repro.core.dynamo import Dynamo
from repro.fleet import Fleet, FleetDriver
from repro.power.topology import PowerTopology
from repro.rpc.transport import FailureInjector
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import PeriodicProcess
from repro.telemetry.events import EventLog
from repro.telemetry.timeseries import TimeSeries


@dataclass
class ChaosContext:
    """Everything a fault may touch in a live deployment."""

    engine: SimulationEngine
    dynamo: Dynamo
    topology: PowerTopology
    fleet: Fleet
    driver: FleetDriver | None = None

    @property
    def injector(self) -> FailureInjector:
        """The RPC fabric's failure injector."""
        return self.dynamo.transport.injector


class ChaosOrchestrator:
    """Schedules, applies, reverts, and records fault injections."""

    def __init__(self, ctx: ChaosContext, *, events: EventLog | None = None) -> None:
        self.ctx = ctx
        self.events = events or EventLog()
        self.faults: list[Fault] = []
        self.health_series = TimeSeries("chaos.health")
        self._probe: PeriodicProcess | None = None
        self._healthy_fn: Callable[[ChaosContext], bool] | None = None
        # Parallel to ``faults``: the armed event handles (for snapshot
        # capture of pending times/sequences) and fire status.
        self._inject_events: list = []
        self._recover_events: list = []
        self._injected: list[bool] = []
        self._recovered: list[bool] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, spec: FaultSpec) -> Fault:
        """Arm one fault: injection at ``start_s``, recovery at ``end_s``."""
        fault = build_fault(spec)
        index = len(self.faults)
        self.faults.append(fault)
        self._injected.append(False)
        self._recovered.append(False)
        self._inject_events.append(self._arm(index, "inject", spec.start_s))
        self._recover_events.append(
            None if spec.end_s is None else self._arm(index, "recover", spec.end_s)
        )
        return fault

    def schedule_all(self, specs: list[FaultSpec]) -> list[Fault]:
        """Arm a whole scenario schedule."""
        return [self.schedule(spec) for spec in specs]

    def _arm(self, index: int, kind: str, time_s: float):
        """Schedule one inject/recover event for fault ``index``."""
        fault = self.faults[index]
        action = self._inject if kind == "inject" else self._recover
        return self.ctx.engine.schedule_at(
            time_s,
            lambda: action(index),
            priority=PRIORITY_CHAOS,
            label=f"chaos.{kind}.{fault.kind}",
        )

    def _inject(self, index: int) -> None:
        fault = self.faults[index]
        self._injected[index] = True
        detail = fault.inject(self.ctx)
        self.events.record(
            self.ctx.engine.clock.now,
            "chaos",
            f"inject.{fault.kind}",
            f"{fault.spec.describe()} -> {detail}",
        )

    def _recover(self, index: int) -> None:
        fault = self.faults[index]
        self._recovered[index] = True
        detail = fault.recover(self.ctx)
        self.events.record(
            self.ctx.engine.clock.now,
            "chaos",
            f"recover.{fault.kind}",
            f"{fault.spec.describe()} -> {detail}",
        )

    # ------------------------------------------------------------------
    # Health probing
    # ------------------------------------------------------------------

    def attach_probe(
        self,
        healthy: Callable[[ChaosContext], bool],
        *,
        interval_s: float = 3.0,
        phase: float = 0.0,
    ) -> None:
        """Sample ``healthy(ctx)`` periodically into ``health_series``.

        The probe runs at sampler priority-adjacent ``PRIORITY_CHAOS + 1``
        so it observes the world after injections land but before it is
        repaired by the same instant's controllers.
        """
        self._healthy_fn = healthy
        self._probe = PeriodicProcess(
            self.ctx.engine,
            interval_s,
            self._sample_health,
            label="chaos.health-probe",
            priority=PRIORITY_CHAOS + 1,
        )
        self._probe.start(phase=phase)

    def _sample_health(self, now_s: float) -> None:
        assert self._healthy_fn is not None
        self.health_series.append(now_s, 1.0 if self._healthy_fn(self.ctx) else 0.0)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    @property
    def probe(self) -> PeriodicProcess | None:
        """The health-probe schedule (for snapshot re-arming)."""
        return self._probe

    def pending_events(self) -> list[dict]:
        """Armed inject/recover events that have not fired yet.

        Each entry carries the original event's time and sequence number
        so a restore can re-arm them in globally consistent tie-break
        order.
        """
        pending: list[dict] = []
        for index, fault in enumerate(self.faults):
            if not self._injected[index]:
                event = self._inject_events[index]
                pending.append(
                    {
                        "index": index,
                        "kind": "inject",
                        "time_s": event.time,
                        "sequence": event.sequence,
                    }
                )
            if fault.spec.end_s is not None and not self._recovered[index]:
                event = self._recover_events[index]
                pending.append(
                    {
                        "index": index,
                        "kind": "recover",
                        "time_s": event.time,
                        "sequence": event.sequence,
                    }
                )
        return pending

    def rearm_pending(self, entry: dict) -> None:
        """Re-arm one pending inject/recover event from a snapshot entry.

        Called by the snapshot registry in ascending original-sequence
        order, interleaved with periodic-process re-arms.
        """
        index = int(entry["index"])
        kind = str(entry["kind"])
        handle = self._arm(index, kind, float(entry["time_s"]))
        if kind == "inject":
            self._inject_events[index] = handle
        else:
            self._recover_events[index] = handle

    def snapshot_state(self) -> dict:
        """Serializable campaign state.

        Assumes the restoring side rebuilds the same scenario (same
        specs, in the same order) via the world recipe, so faults are
        identified by index.
        """
        return {
            "events": self.events.snapshot_state(),
            "health_series": self.health_series.snapshot_state(),
            "faults": [
                {
                    "injected": self._injected[index],
                    "recovered": self._recovered[index],
                    "state": fault.snapshot_state(self.ctx),
                }
                for index, fault in enumerate(self.faults)
            ],
            "pending": self.pending_events(),
            "probe": (
                None if self._probe is None else self._probe.snapshot_state()
            ),
            "probe_state": (
                dict(getattr(self._healthy_fn, "probe_state", None) or {})
                or None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore campaign state against a recipe-rebuilt scenario.

        Pending inject/recover events and the probe schedule are NOT
        re-armed here — the registry replays them (via
        :meth:`rearm_pending` and the probe's ``restore_state``) in
        ascending original-sequence order across the whole world.
        """
        faults = state["faults"]
        if len(faults) != len(self.faults):
            raise ValueError(
                f"snapshot has {len(faults)} faults, scenario armed "
                f"{len(self.faults)}; the world recipe does not match"
            )
        self.events.restore_state(state["events"])
        self.health_series.restore_state(state["health_series"])
        for index, entry in enumerate(faults):
            self._injected[index] = bool(entry["injected"])
            self._recovered[index] = bool(entry["recovered"])
            self.faults[index].restore_state(entry["state"], self.ctx)
        probe_state = state.get("probe_state")
        live_state = getattr(self._healthy_fn, "probe_state", None)
        if probe_state is not None and live_state is not None:
            # Mutate in place: the probe closure holds this dict.
            live_state.clear()
            live_state.update(probe_state)

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------

    @property
    def injection_count(self) -> int:
        """Injections performed so far."""
        return len(self.events.by_kind_prefix("inject."))

    def first_injection_time_s(self) -> float | None:
        """Time of the first injection, or None before any."""
        injections = self.events.by_kind_prefix("inject.")
        if not injections:
            return None
        return injections[0].time_s

    def timeline_fingerprint(self) -> str:
        """Stable rendering of the full injection/recovery timeline."""
        return self.events.fingerprint()
