"""Deterministic chaos engineering for the Dynamo reproduction.

The paper's headline is not only capping accuracy but *surviving
failure*: watchdog restarts, aggregation aborts above 20% pull failures,
controller failover, and riding through a site-outage recovery surge
(Sections III-E and V, Figure 12).  This package turns those claims into
replayable experiments:

* :mod:`repro.chaos.faults` — a catalogue of composable fault
  injections described declaratively by :class:`FaultSpec`.
* :mod:`repro.chaos.orchestrator` — arms injections as simulation
  events, applies and reverts them against a live deployment, and logs
  every injection/recovery into a fingerprintable event log.
* :mod:`repro.chaos.scenarios` — prebuilt scenarios (SB-outage
  ride-through, watchdog restart storm, controller crash, RPC storms,
  breaker derating) plus seeded random campaigns.
* :mod:`repro.chaos.report` — the robustness scorecard: time-to-detect,
  time-to-recover, breaker trips, capping SLA violations, and
  aggregation aborts per scenario.

Everything derives its randomness from ``repro.simulation.rng`` streams,
so the same seed always produces a byte-identical injection timeline.
"""

from repro.chaos.faults import FaultSpec, build_fault, fault_kinds
from repro.chaos.orchestrator import ChaosContext, ChaosOrchestrator
from repro.chaos.report import RobustnessScore, build_scorecard, render_scorecard
from repro.chaos.scenarios import (
    CHAOS_SCENARIOS,
    ChaosRun,
    build_chaos_run,
    random_campaign_specs,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosContext",
    "ChaosOrchestrator",
    "ChaosRun",
    "FaultSpec",
    "RobustnessScore",
    "build_chaos_run",
    "build_fault",
    "build_scorecard",
    "fault_kinds",
    "random_campaign_specs",
    "render_scorecard",
]
