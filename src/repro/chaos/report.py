"""The robustness scorecard: did Dynamo survive the chaos?

A scorecard condenses one finished :class:`~repro.chaos.scenarios.ChaosRun`
into the metrics the paper's fault-tolerance story hinges on:

* **time-to-detect** — seconds from the first injection to the first
  unhealthy health-probe sample (``None`` if the fault never became
  visible, i.e. a clean ride-through);
* **time-to-recover** — seconds from the first injection until health
  stays restored (0.0 for a ride-through);
* **breaker trips** — the one number that must be zero;
* **capping SLA violation** — integrated seconds the monitored device's
  aggregate sat above its rated limit;
* **aggregation aborts** — leaf cycles invalidated by >20% pull failures.

Watchdog restart/suppression counters, failover takeovers, and cap/uncap
event totals round out the picture, and the control-cycle trace ring
(:class:`~repro.telemetry.tracing.TraceBuffer`) contributes per-tick
pipeline metrics: ticks traced, invalid-tick counts, estimated pulls,
and how much of the requested power cut the allocators actually placed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.chaos.scenarios import ChaosRun
from repro.core.failover import FailoverController
from repro.telemetry.alerts import Severity


@dataclass(frozen=True)
class RobustnessScore:
    """Robustness metrics for one finished chaos run."""

    scenario: str
    seed: int
    injections: int
    recoveries: int
    time_to_detect_s: float | None
    time_to_recover_s: float
    breaker_trips: int
    sla_violation_s: float
    aggregation_aborts: int
    critical_alerts: int
    watchdog_restarts: int
    watchdog_suppressed: int
    failovers: int
    cap_events: int
    uncap_events: int
    #: Control-cycle pipeline metrics, from the deployment trace ring.
    ticks_traced: int = 0
    invalid_ticks: int = 0
    pulls_estimated: int = 0
    cut_requested_w: float = 0.0
    cut_allocated_w: float = 0.0
    #: RPC resilience metrics, from the deployment health registry.
    rpc_retries: int = 0
    rpc_retry_successes: int = 0
    circuit_breaker_opens: int = 0
    endpoint_quarantines: int = 0
    #: Degraded-posture metrics, from the controller mode machines.
    degraded_mode_entries: int = 0
    safe_mode_entries: int = 0
    pulls_stale: int = 0
    #: Degraded-sensing metrics (disaggregation estimator); all zero for
    #: runs that never carried a cycle on estimated readings.
    sensor_degraded_entries: int = 0
    time_in_sensor_degraded_s: float = 0.0
    pulls_disaggregated: int = 0
    max_estimation_error_w: float = 0.0

    @property
    def survived(self) -> bool:
        """The headline verdict: nothing tripped."""
        return self.breaker_trips == 0

    @property
    def cut_allocation_fraction(self) -> float | None:
        """Fraction of requested power cuts the allocators placed."""
        if self.cut_requested_w <= 0.0:
            return None
        return self.cut_allocated_w / self.cut_requested_w


def _detect_and_recover(
    run: ChaosRun, first_injection_s: float | None
) -> tuple[float | None, float]:
    """Detection and recovery latencies from the health-probe series.

    Detection is the first unhealthy sample at/after the first
    injection.  Recovery is the first healthy sample *after the last
    unhealthy sample* — health must stay restored to the end of the run.
    """
    series = run.orchestrator.health_series
    if first_injection_s is None or len(series) == 0:
        return None, 0.0
    times = series.times
    values = series.values
    unhealthy = [
        t for t, v in zip(times, values) if t >= first_injection_s and v < 0.5
    ]
    if not unhealthy:
        return None, 0.0
    detect_s = unhealthy[0] - first_injection_s
    last_bad = unhealthy[-1]
    recovered_at = [t for t in times if t > last_bad]
    # If no healthy sample follows the last unhealthy one, the run ended
    # degraded: charge recovery through the end of the run.
    recover_s = (recovered_at[0] if recovered_at else run.end_s) - first_injection_s
    return float(detect_s), float(recover_s)


def _sla_violation_s(run: ChaosRun) -> float:
    """Integrated seconds the monitored aggregate exceeded its rating.

    Uses the device rating at scorecard time; for derating scenarios
    whose fault has already recovered this is the original rating.
    """
    controller = run.dynamo.controller(run.monitored_device)
    limit_w = run.topology.device(run.monitored_device).rated_power_w
    series = controller.aggregate_series
    if len(series) < 2:
        return 0.0
    times = series.times
    values = series.values
    violation = 0.0
    for i in range(1, len(times)):
        if values[i] > limit_w:
            violation += times[i] - times[i - 1]
    return float(violation)


def build_scorecard(run: ChaosRun) -> RobustnessScore:
    """Score a finished chaos run."""
    orchestrator = run.orchestrator
    first_injection_s = orchestrator.first_injection_time_s()
    detect_s, recover_s = _detect_and_recover(run, first_injection_s)
    aborts = sum(
        leaf.invalid_cycles
        for leaf in run.dynamo.hierarchy.leaf_controllers.values()
    )
    failovers = sum(
        c.failovers
        for c in run.dynamo.hierarchy.all_controllers
        if isinstance(c, FailoverController)
    )
    trace_metrics = run.dynamo.traces.metrics()
    health = getattr(run.dynamo, "health", None)
    return RobustnessScore(
        scenario=run.name,
        seed=run.seed,
        injections=orchestrator.injection_count,
        recoveries=len(orchestrator.events.by_kind_prefix("recover.")),
        time_to_detect_s=detect_s,
        time_to_recover_s=recover_s,
        breaker_trips=len(run.driver.trips),
        sla_violation_s=_sla_violation_s(run),
        aggregation_aborts=aborts,
        critical_alerts=len(run.dynamo.alerts.by_severity(Severity.CRITICAL)),
        watchdog_restarts=run.dynamo.watchdog.restarts,
        watchdog_suppressed=run.dynamo.watchdog.restarts_suppressed,
        failovers=failovers,
        cap_events=run.dynamo.total_cap_events(),
        uncap_events=sum(
            c.uncap_events for c in run.dynamo.hierarchy.all_controllers
        ),
        ticks_traced=trace_metrics.ticks,
        invalid_ticks=trace_metrics.invalid_ticks,
        pulls_estimated=trace_metrics.pulls_estimated,
        cut_requested_w=trace_metrics.cut_requested_w,
        cut_allocated_w=trace_metrics.cut_allocated_w,
        rpc_retries=health.total_retries if health is not None else 0,
        rpc_retry_successes=(
            health.total_retry_successes if health is not None else 0
        ),
        circuit_breaker_opens=(
            health.total_breaker_opens if health is not None else 0
        ),
        endpoint_quarantines=(
            health.total_quarantines if health is not None else 0
        ),
        degraded_mode_entries=run.dynamo.degraded_mode_entries(),
        safe_mode_entries=run.dynamo.safe_mode_entries(),
        pulls_stale=trace_metrics.pulls_stale,
        sensor_degraded_entries=run.dynamo.sensor_degraded_entries(),
        time_in_sensor_degraded_s=run.dynamo.time_in_sensor_degraded_s(
            run.end_s
        ),
        pulls_disaggregated=trace_metrics.pulls_disaggregated,
        max_estimation_error_w=trace_metrics.max_estimation_error_w,
    )


def render_scorecard(score: RobustnessScore) -> str:
    """Render one scorecard as an aligned text table."""
    table = Table(
        f"Robustness scorecard: {score.scenario} (seed {score.seed})",
        ["metric", "value"],
    )
    detect = (
        "never unhealthy"
        if score.time_to_detect_s is None
        else f"{score.time_to_detect_s:.1f} s"
    )
    table.add_row("faults injected", score.injections)
    table.add_row("faults recovered", score.recoveries)
    table.add_row("time to detect", detect)
    table.add_row("time to recover", f"{score.time_to_recover_s:.1f} s")
    table.add_row("breaker trips", score.breaker_trips)
    table.add_row("capping SLA violation", f"{score.sla_violation_s:.1f} s")
    table.add_row("aggregation aborts", score.aggregation_aborts)
    table.add_row("critical alerts", score.critical_alerts)
    table.add_row("watchdog restarts", score.watchdog_restarts)
    table.add_row("watchdog suppressed", score.watchdog_suppressed)
    table.add_row("failover takeovers", score.failovers)
    table.add_row("cap events", score.cap_events)
    table.add_row("uncap events", score.uncap_events)
    table.add_row("ticks traced", score.ticks_traced)
    table.add_row("invalid ticks", score.invalid_ticks)
    table.add_row("pulls estimated", score.pulls_estimated)
    table.add_row("stale reads served", score.pulls_stale)
    table.add_row("rpc retries", score.rpc_retries)
    table.add_row("rpc retry successes", score.rpc_retry_successes)
    table.add_row("circuit-breaker opens", score.circuit_breaker_opens)
    table.add_row("endpoint quarantines", score.endpoint_quarantines)
    table.add_row("degraded-mode entries", score.degraded_mode_entries)
    table.add_row("safe-mode entries", score.safe_mode_entries)
    table.add_row("sensor-degraded entries", score.sensor_degraded_entries)
    table.add_row(
        "time in sensor-degraded", f"{score.time_in_sensor_degraded_s:.1f} s"
    )
    table.add_row("pulls disaggregated", score.pulls_disaggregated)
    table.add_row(
        "max estimation error",
        "-"
        if score.pulls_disaggregated == 0
        else f"{score.max_estimation_error_w:.1f} W",
    )
    fraction = score.cut_allocation_fraction
    table.add_row(
        "cut allocated / requested",
        "n/a"
        if fraction is None
        else (
            f"{score.cut_allocated_w:.0f} / {score.cut_requested_w:.0f} W"
            f" ({fraction:.0%})"
        ),
    )
    table.add_row("survived", "yes" if score.survived else "NO")
    return table.render()
