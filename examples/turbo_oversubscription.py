#!/usr/bin/env python
"""Dynamic power oversubscription: Turbo Boost on a Hadoop cluster.

The paper's Figure 14 story: the cluster's power plan left no margin for
Turbo Boost, so worst-case peak power with Turbo exceeds the SB limit.
With Dynamo as the safety net the cluster runs Turbo anyway — capping
absorbs the rare correlated peaks — and map-reduce throughput improves by
roughly 13%.

Run:  python examples/turbo_oversubscription.py     (~35 s)
"""

from repro.analysis.scenarios import prineville_hadoop_turbo
from repro.units import hours, to_kilowatts

SERVERS = 100
WINDOW_H = 8


def run(turbo: bool):
    scenario = prineville_hadoop_turbo(server_count=SERVERS, turbo=turbo)
    scenario.start()
    scenario.run_until(hours(WINDOW_H))
    work = sum(s.delivered_work for s in scenario.fleet.servers.values())
    return scenario, work


def main() -> None:
    print(f"Hadoop cluster: {SERVERS} servers, {WINDOW_H} h window\n")

    plain, plain_work = run(turbo=False)
    print("Without Turbo (pre-Dynamo safe configuration):")
    sb = plain.dynamo.controller("sb0")
    print(f"  peak SB power: {to_kilowatts(sb.aggregate_series.max()):6.1f} KW "
          f"/ {to_kilowatts(plain.extras['sb_rating_w']):.1f} KW rating")
    print(f"  cap events:    {plain.dynamo.total_cap_events()}")

    boosted, turbo_work = run(turbo=True)
    sb = boosted.dynamo.controller("sb0")
    worst_case = sum(
        s.turbo.worst_case_power_w for s in boosted.fleet.servers.values()
    )
    print("\nWith Turbo Boost under Dynamo:")
    print(f"  worst-case peak: {to_kilowatts(worst_case):6.1f} KW "
          f"(EXCEEDS the rating - only safe because Dynamo caps)")
    print(f"  actual peak:     {to_kilowatts(sb.aggregate_series.max()):6.1f} KW")
    print(f"  cap events:      {boosted.dynamo.total_cap_events()}")
    print(f"  breaker trips:   {len(boosted.driver.trips)}")

    gain = (turbo_work / plain_work - 1.0) * 100.0
    print(f"\nThroughput gain from Turbo: {gain:.1f}% (paper: up to 13%)")
    assert not boosted.driver.trips
    assert worst_case > boosted.extras["sb_rating_w"]


if __name__ == "__main__":
    main()
