#!/usr/bin/env python
"""Operating Dynamo: the Section VI production machinery.

Walks through the operational lessons the paper shares after three
years in production:

1. **Monitoring is as important as capping** — generate the operator's
   monitoring report over a live deployment.
2. **Service-aware design simplifies capping testing** — run the
   end-to-end capping harness against a non-critical row, then inspect
   service-specific logic in dry-run mode without throttling anything.
3. **Use accurate estimation** — bias the fleet's power estimators and
   watch breaker-reading validation pull them back.
4. **Keep the design simple / staged rollout** — push a bad agent
   change through the four-phase rollout and see the health gate catch
   it at the 1% stage.

Run:  python examples/operations.py     (~10 s)
"""

import numpy as np

from repro.analysis.monitoring import build_report
from repro.core.dryrun import CappingTestHarness, DryRunLeafController
from repro.core.dynamo import Dynamo
from repro.core.rollout import StagedRollout
from repro.core.validation import BreakerReadingSource, BreakerValidator
from repro.fleet import FleetDriver, ServiceAllocation, populate_fleet
from repro.power.builder import DataCenterSpec, build_datacenter
from repro.power.oversubscription import plan_quotas
from repro.server.platform import WESTMERE_2011
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStreams


def main() -> None:
    engine = SimulationEngine()
    topology = build_datacenter(
        DataCenterSpec(
            name="ops-dc", msb_count=1, sbs_per_msb=1, rpps_per_sb=2,
            racks_per_rpp=2,
        )
    )
    plan_quotas(topology)
    rng = RngStreams(7)
    fleet = populate_fleet(
        topology,
        [
            # Legacy web servers without power sensors: their power is
            # estimated from CPU utilization, which part 3 exercises.
            ServiceAllocation("web", 16, platform=WESTMERE_2011),
            ServiceAllocation("hadoop", 8),
        ],
        rng,
    )
    dynamo = Dynamo(engine, topology, fleet, rng_streams=rng.fork("d"))
    FleetDriver(engine, topology, fleet).start()
    dynamo.start()
    engine.run_until(120.0)

    # -- 1. Monitoring -------------------------------------------------
    print("=" * 64)
    print("1. MONITORING REPORT")
    print(build_report(dynamo).render())

    # -- 2a. End-to-end capping test on a non-critical row --------------
    print("\n" + "=" * 64)
    print("2a. END-TO-END CAPPING TEST (non-critical row rpp0.0.0)")
    controller = dynamo.leaf_controller("rpp0.0.0")
    harness = CappingTestHarness(engine, controller)
    report = harness.run()
    print(f"   capped: {report.capped}  settled: {report.settled_below_target}"
          f"  uncapped: {report.uncapped}  latency: {report.cap_latency_s}s")
    print(f"   => harness {'PASSED' if report.passed else 'FAILED'}")

    # -- 2b. Dry-run inspection ----------------------------------------
    print("\n2b. DRY-RUN MODE (decisions logged, nothing throttled)")
    transport = dynamo.transport
    device = topology.device("rpp0.0.1")
    servers = sorted(dynamo.leaf_controller("rpp0.0.1").server_ids)
    dry = DryRunLeafController(device, servers, transport)
    dry.tick(engine.clock.now)
    dry.set_contractual_limit_w(dry.last_aggregate_power_w * 0.92)
    dry.tick(engine.clock.now)
    for entry in dry.recorder.entries:
        print(f"   would {entry.action}: cut {entry.total_cut_w:.0f} W over "
              f"{entry.affected_servers} servers ({entry.detail})")
    print(f"   actually capped servers: "
          f"{sum(1 for s in fleet.servers.values() if s.rapl.capped)}")

    # -- 3. Estimator validation against breaker readings ---------------
    print("\n" + "=" * 64)
    print("3. BREAKER-READING VALIDATION + RECALIBRATION")
    leaf = dynamo.leaf_controller("rpp0.0.0")
    row_servers = {
        sid: fleet.servers[sid] for sid in leaf.server_ids
    }
    for server in row_servers.values():
        server.estimator = server.estimator.recalibrate(1.20)  # drift!
    source = BreakerReadingSource(engine, leaf.device)
    source.start(phase=1.0)
    validator = BreakerValidator(
        engine, leaf, source, servers=row_servers, interval_s=120.0
    )
    validator.start(phase=125.0)
    engine.run_until(engine.clock.now + 600.0)
    print(f"   validations: {validator.validations}, "
          f"recalibrations: {validator.recalibrations}")

    # -- 4. Staged rollout catching a bad change ------------------------
    print("\n" + "=" * 64)
    print("4. FOUR-PHASE STAGED ROLLOUT")

    def bad_change(agent):
        agent.crash()

    def rollback(agent):
        agent.restart()

    rollout = StagedRollout(
        list(dynamo.agents.values()),
        bad_change,
        rollback,
        health_gate=lambda deployed: all(a.healthy for a in deployed),
    )
    state = rollout.run_all()
    print(f"   phases run: {len(rollout.results)}, final state: {state.value}")
    print(f"   agents exposed at failure: {rollout.results[-1].agents_deployed}"
          f" of {len(dynamo.agents)}")
    print(f"   all agents healthy after rollback: "
          f"{all(a.healthy for a in dynamo.agents.values())}")


if __name__ == "__main__":
    main()
