#!/usr/bin/env python
"""Quickstart: build a small datacenter, attach Dynamo, watch it monitor.

Builds an OCP-style power topology (1 MSB, 2 SBs, 4 RPPs, 12 racks),
populates it with a realistic service mix, plans power quotas, starts the
Dynamo controller hierarchy, and runs ten simulated minutes while
printing what every controller observes.

Run:  python examples/quickstart.py
"""

from repro import (
    DataCenterSpec,
    Dynamo,
    FleetDriver,
    RngStreams,
    ServiceAllocation,
    SimulationEngine,
    build_datacenter,
    plan_quotas,
    populate_fleet,
)
from repro.units import format_power


def main() -> None:
    engine = SimulationEngine()
    spec = DataCenterSpec(
        name="quickstart-dc",
        msb_count=1,
        sbs_per_msb=2,
        rpps_per_sb=2,
        racks_per_rpp=3,
    )
    topology = build_datacenter(spec)
    plan_quotas(topology, ratio=1.0)
    print(f"Built {topology}: {topology.device_count} power devices")

    rng = RngStreams(seed=42)
    fleet = populate_fleet(
        topology,
        [
            ServiceAllocation("web", 24),
            ServiceAllocation("cache", 12),
            ServiceAllocation("hadoop", 8),
            ServiceAllocation("database", 4),
        ],
        rng,
    )
    print(f"Populated {len(fleet.servers)} servers across 4 services")

    dynamo = Dynamo(engine, topology, fleet, rng_streams=rng.fork("dynamo"))
    driver = FleetDriver(engine, topology, fleet)
    driver.start()
    dynamo.start()
    print(
        f"Dynamo online: {dynamo.hierarchy.controller_count} controllers "
        f"({len(dynamo.hierarchy.leaf_controllers)} leaf @ 3 s, "
        f"{len(dynamo.hierarchy.upper_controllers)} upper @ 9 s), "
        f"{len(dynamo.agents)} agents"
    )

    engine.run_until(600.0)

    print("\nAfter 10 simulated minutes:")
    print(f"  datacenter power: {format_power(topology.total_power_w())}")
    for name, leaf in sorted(dynamo.hierarchy.leaf_controllers.items()):
        aggregate = leaf.last_aggregate_power_w or 0.0
        print(
            f"  leaf {name}: {format_power(aggregate)} / "
            f"{format_power(leaf.device.rated_power_w)} "
            f"({100 * aggregate / leaf.device.rated_power_w:.0f}% of rating, "
            f"{len(leaf.aggregate_series)} samples at 3 s)"
        )
    for name, upper in sorted(dynamo.hierarchy.upper_controllers.items()):
        aggregate = upper.last_aggregate_power_w or 0.0
        print(
            f"  upper {name}: {format_power(aggregate)} / "
            f"{format_power(upper.device.rated_power_w)}"
        )
    print(f"  cap events: {dynamo.total_cap_events()}")
    print(f"  breaker trips: {len(driver.trips)}")
    print(f"  alerts: {dynamo.alerts.count()}")
    assert not driver.trips


if __name__ == "__main__":
    main()
